"""Shim for editable installs on environments without the wheel package.

``pip install -e .`` needs ``bdist_wheel`` under PEP 517; this offline
environment ships setuptools without wheel, so ``python setup.py develop``
(driven by this file) is the supported editable-install path.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
