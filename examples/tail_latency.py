#!/usr/bin/env python3
"""Tail-latency scenario: what prefetching does to the p99.

Averages hide the queueing story.  Under constrained bandwidth an accurate
prefetcher can *lengthen* the demand-latency tail (its traffic queues ahead
of demands) even when it shortens the mean — and CLIP's filtering shows up
most clearly at the p99.  This example captures per-load latency traces for
no-prefetch / Berti / Berti+CLIP and prints percentile tables and a
histogram.
"""

from repro.api import scaled_config
from repro.cpu.core_model import ServiceLevel
from repro.sim.system import MulticoreSystem
from repro.sim.tracing import format_latency_report
from repro.trace import homogeneous_mix

CORES = 8
CHANNELS = 1
INSTRUCTIONS = 10_000
WORKLOAD = "603.bwaves_s-1740B"


def run(prefetcher: str, clip: bool):
    config = scaled_config(num_cores=CORES, channels=CHANNELS,
                           sim_instructions=INSTRUCTIONS)
    config.l1_prefetcher.name = prefetcher
    config.clip.enabled = clip
    config.capture_request_trace = 500_000
    system = MulticoreSystem(config, homogeneous_mix(WORKLOAD, CORES))
    system.run()
    return system.request_trace


def main() -> None:
    traces = {
        "no prefetch": run("none", clip=False),
        "Berti": run("berti", clip=False),
        "Berti + CLIP": run("berti", clip=True),
    }
    print(f"{WORKLOAD} x{CORES} cores, {CHANNELS} channel(s): demand-load "
          f"latency percentiles (cycles)\n")
    print(f"{'scheme':<14} {'p50':>7} {'p90':>7} {'p99':>7} "
          f"{'p99 DRAM-serviced':>18}")
    for name, trace in traces.items():
        print(f"{name:<14} {trace.percentile(0.5):>7.0f} "
              f"{trace.percentile(0.9):>7.0f} "
              f"{trace.percentile(0.99):>7.0f} "
              f"{trace.percentile(0.99, ServiceLevel.DRAM):>18.0f}")

    print("\nBerti + CLIP trace in detail:")
    print(format_latency_report(traces["Berti + CLIP"]))
    print("\nlatency histogram (200-cycle buckets):")
    for bucket, count in traces["Berti + CLIP"].histogram(
            bucket_cycles=200, max_buckets=12).items():
        print(f"  {bucket:>12}: {'#' * min(60, count // 20 + 1)} {count}")


if __name__ == "__main__":
    main()
