#!/usr/bin/env python3
"""Model your own application and ask whether CLIP would help it.

Builds a custom :class:`WorkloadSpec` -- here an in-memory key-value store:
a hot index (cache-resident), a branch-correlated lookup that either hits a
small hot partition or chases into a cold log, and a background compaction
scan (streaming) -- then measures no-prefetch / Berti / Berti+CLIP on a
bandwidth-constrained part.

This is the intended workflow for adopting the library on workloads the
paper never saw: describe the access patterns, and let the simulator tell
you whether criticality-filtered prefetching pays off.
"""

from repro import api
from repro.trace.synthetic import StreamSpec, SyntheticWorkload, WorkloadSpec
from repro.trace import workloads as registry

CORES = 8
CHANNELS = 1
INSTRUCTIONS = 10_000

KV_STORE = WorkloadSpec(
    name="kvstore-demo",
    streams=[
        # The hash index: small, hammered constantly, L1-resident.
        StreamSpec(kind="random", weight=6.0, footprint_kib=4, dep_alu=1),
        # Lookups: a branch decides hot partition vs cold log chase --
        # the dynamic-critical behaviour CLIP's signature captures.
        StreamSpec(kind="hotcold", weight=0.6, footprint_kib=16_384,
                   hot_footprint_kib=24, hot_probability=0.6),
        # Value fetches: pointer chases into the cold heap.
        StreamSpec(kind="pointer", weight=0.4, footprint_kib=16_384,
                   dep_alu=2),
        # Background compaction: a streaming scan Berti covers perfectly.
        StreamSpec(kind="stride", weight=0.5, footprint_kib=16_384,
                   stride=64, dep_alu=1),
    ],
    alu_filler_weight=6.0,
)


def run(prefetcher: str, clip: bool):
    config = api.scaled_config(num_cores=CORES, channels=CHANNELS,
                           sim_instructions=INSTRUCTIONS)
    config.l1_prefetcher.name = prefetcher
    config.clip.enabled = clip
    # Register the custom spec so every core generates from it.
    registry._REGISTRY[KV_STORE.name] = KV_STORE
    return api.simulate(config, [KV_STORE.name] * CORES)


def main() -> None:
    # Sanity-check the model generates a well-formed stream.
    sample = SyntheticWorkload(KV_STORE).generate(1000)
    loads = sum(record.op == 0 for record in sample)
    print(f"custom workload: {loads}/{len(sample)} instructions are loads\n")

    baseline = run("none", clip=False)
    berti = run("berti", clip=False)
    clip = run("berti", clip=True)

    print(f"{'scheme':<16} {'weighted speedup':>16} {'DRAM reads':>11}")
    print(f"{'no prefetching':<16} {1.0:>16.3f} {baseline.dram.reads:>11}")
    print(f"{'Berti':<16} {api.weighted_speedup(berti, baseline):>16.3f} "
          f"{berti.dram.reads:>11}")
    print(f"{'Berti + CLIP':<16} {api.weighted_speedup(clip, baseline):>16.3f} "
          f"{clip.dram.reads:>11}")
    print("\nInterpretation: if Berti < 1.0 here, your workload's traffic "
          "profile makes naive prefetching a liability on this part; CLIP "
          "recovering toward/above 1.0 means criticality filtering is the "
          "fix rather than disabling prefetch outright.")


if __name__ == "__main__":
    main()
