#!/usr/bin/env python3
"""Capacity-planning scenario: where is the prefetching bandwidth cliff?

An architect sizing a many-core part wants to know at what
cores-per-channel ratio hardware prefetching stops paying for itself, and
whether criticality filtering moves that point.  This sweeps a streaming
HPC workload (bwaves-like) and an irregular one (mcf-like) across channel
counts and prints the weighted-speedup curves of Fig. 1/19.
"""

from repro import api
from repro.trace import homogeneous_mix

CORES = 8
CHANNELS = [1, 2, 4, 8]
INSTRUCTIONS = 8_000
WORKLOADS = ["603.bwaves_s-1740B", "605.mcf_s-1536B"]


def run(workload: str, channels: int, prefetcher: str, clip: bool):
    config = api.scaled_config(num_cores=CORES, channels=channels,
                           sim_instructions=INSTRUCTIONS)
    config.l1_prefetcher.name = prefetcher
    config.clip.enabled = clip
    return api.simulate(config, homogeneous_mix(workload, CORES))


def main() -> None:
    for workload in WORKLOADS:
        print(f"\n=== {workload} ({CORES} cores) ===")
        print(f"{'channels':>8} {'cores/ch':>8} {'Berti':>8} "
              f"{'Berti+CLIP':>11} {'DRAM util':>10}")
        for channels in CHANNELS:
            baseline = run(workload, channels, "none", clip=False)
            berti = run(workload, channels, "berti", clip=False)
            clip = run(workload, channels, "berti", clip=True)
            print(f"{channels:>8} {CORES / channels:>8.1f} "
                  f"{api.weighted_speedup(berti, baseline):>8.3f} "
                  f"{api.weighted_speedup(clip, baseline):>11.3f} "
                  f"{baseline.dram.utilization:>10.2f}")
        print("-> Berti below 1.0 = prefetching is a net loss at that "
              "bandwidth; CLIP should stay at or above it.")


if __name__ == "__main__":
    main()
