#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline claim in one minute.

Runs a bandwidth-constrained many-core system (8 cores sharing one scaled
DDR4 channel = the paper's 8-cores-per-channel pressure) on an mcf-like
workload three ways:

1. no prefetching,
2. the Berti prefetcher,
3. Berti filtered by CLIP,

and prints weighted speedups: Berti *hurts* under constrained bandwidth,
CLIP recovers the loss by prefetching only critical-and-accurate loads.
"""

from repro import api
from repro.trace import homogeneous_mix

CORES = 8
CHANNELS = 1          # ~ paper's 8 channels for 64 cores
INSTRUCTIONS = 10_000
WORKLOAD = "605.mcf_s-1536B"


def make_config(prefetcher: str, clip: bool):
    config = api.scaled_config(num_cores=CORES, channels=CHANNELS,
                           sim_instructions=INSTRUCTIONS)
    config.l1_prefetcher.name = prefetcher
    config.clip.enabled = clip
    return config


def main() -> None:
    mix = homogeneous_mix(WORKLOAD, CORES)
    print(f"workload: {WORKLOAD} x{CORES} cores, {CHANNELS} scaled DDR4 "
          f"channel(s)\n")

    baseline = api.simulate(make_config("none", clip=False), mix,
                          label="no-prefetch")
    berti = api.simulate(make_config("berti", clip=False), mix, label="berti")
    clip = api.simulate(make_config("berti", clip=True), mix,
                      label="berti+clip")

    rows = [
        ("no prefetching", baseline, 1.0),
        ("Berti", berti, api.weighted_speedup(berti, baseline)),
        ("Berti + CLIP", clip, api.weighted_speedup(clip, baseline)),
    ]
    print(f"{'scheme':<16} {'weighted speedup':>16} {'L1 miss lat':>12} "
          f"{'prefetches':>11} {'pf accuracy':>12}")
    for name, result, speedup in rows:
        print(f"{name:<16} {speedup:>16.3f} "
              f"{result.average_l1_miss_latency():>12.0f} "
              f"{result.prefetch.issued:>11d} "
              f"{result.prefetch.accuracy:>12.2f}")

    assert clip.clip is not None
    print(f"\nCLIP criticality prediction accuracy: "
          f"{clip.clip.prediction_accuracy:.2f}")
    print(f"CLIP dropped {1 - clip.prefetch.issued / max(1, berti.prefetch.issued):.0%} "
          f"of Berti's prefetch traffic")


if __name__ == "__main__":
    main()
