#!/usr/bin/env python3
"""Microscope on load criticality: who stalls the ROB, and who gets caught?

Runs one constrained-bandwidth simulation with CLIP attached and dissects
its internal state: the criticality filter's per-IP verdicts (critical?
accurate?), the static/dynamic critical-IP census of Fig. 15, and a
side-by-side of CLIP's instance-level prediction quality against two
IP-granularity baselines (FVP, CBP) on the same workload -- the Fig. 4 vs
Fig. 13 contrast in miniature.
"""

import dataclasses

from repro.api import scaled_config
from repro.sim.system import MulticoreSystem
from repro.trace import homogeneous_mix

CORES = 8
CHANNELS = 1
INSTRUCTIONS = 12_000
WORKLOAD = "605.mcf_s-1536B"


def base_config():
    config = scaled_config(num_cores=CORES, channels=CHANNELS,
                           sim_instructions=INSTRUCTIONS)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="berti")
    return config


def main() -> None:
    # --- CLIP run: dissect the filter ---------------------------------
    config = base_config()
    config.clip.enabled = True
    system = MulticoreSystem(config, homogeneous_mix(WORKLOAD, CORES))
    result = system.run()
    clip = system.nodes[0].clip
    assert clip is not None and result.clip is not None

    print(f"=== CLIP internals, core 0, {WORKLOAD} ===")
    print(f"{'IP tag':>7} {'crit count':>10} {'hit/issue':>10} "
          f"{'hit rate':>9} {'certified':>9}")
    for bucket in clip.filter._sets:
        for tag, entry in bucket.items():
            rate = entry.hit_rate()
            print(f"{tag:>7} {entry.crit_count:>10} "
                  f"{entry.hit_count:>4}/{entry.issue_count:<5} "
                  f"{'-' if rate is None else f'{rate:9.2f}'} "
                  f"{'yes' if entry.is_crit_accurate else 'no':>9}")

    static, dynamic = clip.critical_ip_census()
    print(f"\ncritical IPs on core 0: {static} static-critical, "
          f"{dynamic} dynamic-critical (Fig. 15)")
    print(f"CLIP prediction accuracy {result.clip.prediction_accuracy:.2f}, "
          f"coverage {result.clip.prediction_coverage:.2f}")
    print(f"prefetches: {result.prefetch.issued} issued / "
          f"{result.prefetch.candidates} generated "
          f"({1 - result.prefetch.issued / max(1, result.prefetch.candidates):.0%} dropped)")

    # --- Baseline predictors on the identical workload ----------------
    print("\n=== IP-granularity baselines on the same run ===")
    for name in ("fvp", "cbp"):
        config = base_config()
        config.criticality.name = name
        config.criticality.gate = False  # measure, do not filter
        system = MulticoreSystem(config, homogeneous_mix(WORKLOAD, CORES))
        baseline_result = system.run()
        assert baseline_result.criticality is not None
        print(f"{name:>6}: accuracy "
              f"{baseline_result.criticality.accuracy:.2f}, coverage "
              f"{baseline_result.criticality.coverage:.2f}  "
              f"(over-prediction: high coverage, low accuracy)")


if __name__ == "__main__":
    main()
