#!/usr/bin/env python3
"""Datacenter-consolidation scenario: heterogeneous workload mixes.

A scheduler packs unrelated jobs (SPEC-like + graph analytics) onto one
bandwidth-constrained socket.  The paper's heterogeneous evaluation (Figs.
2, 9b, 20) asks: does hardware prefetching help or hurt the *mix*, and does
CLIP protect the latency-sensitive tenants from their neighbours' prefetch
traffic?

This example runs a few randomly generated mixes, reports the mix-level
weighted speedup, and shows the per-core picture of the worst mix -- the
cores whose IPC collapses under a neighbour's prefetch traffic are exactly
the ones CLIP protects.
"""

from repro import api
from repro.experiments.ascii_chart import bar_chart
from repro.trace import heterogeneous_mixes

CORES = 8
CHANNELS = 1
INSTRUCTIONS = 8_000
MIXES = 4


def run(mix, prefetcher: str, clip: bool):
    config = api.scaled_config(num_cores=CORES, channels=CHANNELS,
                           sim_instructions=INSTRUCTIONS)
    config.l1_prefetcher.name = prefetcher
    config.clip.enabled = clip
    return api.simulate(config, mix)


def main() -> None:
    mixes = heterogeneous_mixes(MIXES, CORES, seed=2023)
    print(f"{MIXES} random heterogeneous mixes, {CORES} cores, "
          f"{CHANNELS} scaled channel(s)\n")
    worst = None
    rows = {}
    for index, mix in enumerate(mixes):
        baseline = run(mix, "none", clip=False)
        berti = run(mix, "berti", clip=False)
        clip = run(mix, "berti", clip=True)
        ws_berti = api.weighted_speedup(berti, baseline)
        ws_clip = api.weighted_speedup(clip, baseline)
        rows[f"mix{index} berti"] = ws_berti
        rows[f"mix{index} +clip"] = ws_clip
        if worst is None or ws_berti < worst[1]:
            worst = (index, ws_berti, mix, baseline, berti, clip)
    print(bar_chart(rows, title="weighted speedup vs no prefetching "
                                "(| marks 1.0)", reference=1.0))

    index, ws, mix, baseline, berti, clip = worst
    print(f"\nworst mix for Berti: mix{index} (WS {ws:.3f}); per-core view:")
    print(f"{'core':>4} {'workload':<24} {'base IPC':>9} {'berti':>7} "
          f"{'+clip':>7}")
    for core_id in range(CORES):
        print(f"{core_id:>4} {mix[core_id]:<24} "
              f"{baseline.cores[core_id].ipc:>9.3f} "
              f"{berti.cores[core_id].ipc:>7.3f} "
              f"{clip.cores[core_id].ipc:>7.3f}")


if __name__ == "__main__":
    main()
