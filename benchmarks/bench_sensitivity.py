"""Section 5.2 sensitivity studies: LLC capacity and core count."""

from __future__ import annotations

from _harness import run_once

from repro.experiments import core_count_sensitivity, llc_sensitivity


def test_llc_sensitivity(benchmark, runner):
    result = run_once(benchmark, llc_sensitivity, runner)
    sizes = sorted(result)
    # Paper: Berti's slowdown deepens as the LLC shrinks (29% at 512 KB
    # vs 16% at 2 MB per core), and CLIP always keeps prefetching at least
    # as good as Berti alone.
    for size in sizes:
        assert result[size]["berti+clip"] > result[size]["berti"] - 0.03
    assert result[sizes[0]]["berti"] <= result[sizes[-1]]["berti"] + 0.10


def test_core_count_sensitivity(benchmark, runner):
    result = run_once(benchmark, core_count_sensitivity, runner)
    # Paper: CLIP's effectiveness holds across core counts while the
    # cores-per-channel pressure stays; with one channel per 2-4 cores the
    # effect wanes.
    pressured = result["8c/1ch"]
    relaxed = result["8c/2ch"]
    gain_pressured = pressured["berti+clip"] - pressured["berti"]
    gain_relaxed = relaxed["berti+clip"] - relaxed["berti"]
    assert gain_pressured > -0.02
    assert gain_pressured >= gain_relaxed - 0.05
