"""Figure 6: prefetch throttlers on Berti.

Paper shape: FDP/HPAC/SPAC/NST help at most marginally -- Berti's epoch
accuracy is high, so accuracy-driven throttling rarely triggers and the
constrained-bandwidth slowdown remains.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure6


def test_figure6_throttlers_marginal(benchmark, runner):
    result = run_once(benchmark, figure6, runner)
    homog = result["homogeneous"]
    berti = homog["berti"][0]
    for scheme, curve in homog.items():
        if scheme == "berti":
            continue
        # Throttling may help or hurt a little, but it does not transform
        # the constrained point the way CLIP does (paper: "performance
        # slowdown is still huge").
        assert abs(curve[0] - berti) < 0.15, (scheme, curve[0], berti)
