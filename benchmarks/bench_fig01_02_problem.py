"""Figures 1-2: prefetcher effectiveness vs DRAM channel count.

Regenerates the paper's motivating result: state-of-the-art prefetchers
lose against no-prefetching when DRAM bandwidth is constrained and win when
it is ample.  The benchmark asserts the *shape* -- a rising weighted-speedup
curve for the L1 prefetchers whose traffic creates the problem -- not the
absolute numbers (the substrate is a scaled simulator, not the authors'
testbed).
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure1, figure2


def test_figure1_homogeneous(benchmark, runner):
    result = run_once(benchmark, figure1, runner)
    series = result["series"]
    for scheme in ("berti", "ipcp"):
        curve = series[scheme]
        # Constrained end hurts...
        assert curve[0] < 1.0, f"{scheme} should lose at 1 channel: {curve}"
        # ...and bandwidth monotonically rehabilitates the prefetcher.
        assert curve[-1] > curve[0]
    assert series["berti"][-1] > 1.0


def test_figure2_heterogeneous(benchmark, runner):
    result = run_once(benchmark, figure2, runner)
    series = result["series"]
    # Heterogeneous mixes soften the slowdown (paper section 5: mixes with
    # cache-friendly halves do not collapse), but the gradient remains.
    for scheme in ("berti", "ipcp"):
        curve = series[scheme]
        assert curve[-1] >= curve[0] - 0.05
