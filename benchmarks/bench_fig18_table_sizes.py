"""Figure 18: sensitivity to CLIP's table sizes.

Paper: growing the tables to 2x/4x buys almost nothing; shrinking to
0.5x/0.25x costs more than 7%.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure18


def test_figure18_table_size_sensitivity(benchmark, runner):
    result = run_once(benchmark, figure18, runner)
    tables = result["tables"]
    for which in ("filter", "predictor"):
        curve = tables[which]
        # Bigger tables: no collapse (paper: marginal change).
        assert curve[4.0] > 0.9
        # Quarter-size tables never *help*.
        assert curve[0.25] <= curve[4.0] + 0.05
