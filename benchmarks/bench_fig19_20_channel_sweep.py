"""Figures 19-20: CLIP across channel counts for all prefetchers.

Paper: CLIP is highly effective at 4-8 channels and marginal at 16 -- its
value is specifically bandwidth-constrained operation.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure19, figure20


def test_figure19_homogeneous(benchmark, runner):
    result = run_once(benchmark, figure19, runner)
    series = result["series"]
    constrained, ample = 0, -1
    gain_constrained = (series["berti+clip"][constrained]
                        - series["berti"][constrained])
    gain_ample = series["berti+clip"][ample] - series["berti"][ample]
    # The gain shrinks as bandwidth grows (the paper's whole point).
    assert gain_constrained > gain_ample - 0.02
    assert gain_constrained > 0


def test_figure20_heterogeneous(benchmark, runner):
    result = run_once(benchmark, figure20, runner)
    series = result["series"]
    # CLIP must not damage any prefetcher at any point of the sweep by
    # more than noise.
    for scheme in ("berti", "ipcp", "bingo", "spp_ppf"):
        for base_value, clip_value in zip(series[scheme],
                                          series[scheme + "+clip"]):
            assert clip_value > base_value - 0.08
