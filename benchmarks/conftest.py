"""Shared fixtures for the benchmark suite."""

from __future__ import annotations

import os

import pytest

from _harness import BENCH_SCALE
from repro.experiments import ExperimentRunner, ResultStore


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One cached runner for the whole benchmark session: figures reuse
    each other's baseline simulations, and — unless ``REPRO_NO_CACHE`` is
    set — results persist under ``.repro-cache/`` so a rerun of any
    figure benchmark skips simulation entirely.  Set ``REPRO_JOBS=N`` to
    fan cold sweep points across N processes (default: serial, so the
    benchmark timings stay comparable)."""
    store = None if os.environ.get("REPRO_NO_CACHE") else ResultStore()
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    return ExperimentRunner(BENCH_SCALE, store=store, jobs=jobs)
