"""Shared fixtures for the benchmark suite."""

from __future__ import annotations

import pytest

from _harness import BENCH_SCALE
from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One cached runner for the whole benchmark session: figures reuse
    each other's baseline simulations."""
    return ExperimentRunner(BENCH_SCALE)
