"""Ablation of CLIP's design choices (DESIGN.md section 6).

Checks the paper's contribution split: most of CLIP's benefit comes from
criticality filtering and prediction; the accuracy filter and the
NoC/DRAM priority add the rest (priority alone: 2.8% of 24%).
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import ablation_study


def test_ablation_design_choices(benchmark, runner):
    result = run_once(benchmark, ablation_study, runner)
    full = result["full"]
    berti = result["berti (no CLIP)"]
    # CLIP as proposed beats plain Berti at the constrained point.
    assert full > berti
    # Removing the NoC/DRAM priority costs little (paper: 2.8% share).
    assert result["no-priority"] > full - 0.06
    # Every single-knob ablation still beats plain Berti: the mechanism is
    # not carried by one component alone.
    assert result["no-accuracy"] > berti - 0.02
    assert result["no-branch-history"] > berti - 0.02
