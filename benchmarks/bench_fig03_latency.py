"""Figure 3: demand miss latency inflation caused by Berti.

Paper shape: with constrained bandwidth Berti inflates average L2/LLC
demand miss latencies (>=1.9x at 4-8 channels in the paper); the inflation
shrinks as channels are added.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure3


def test_figure3_latency_inflation(benchmark, runner):
    result = run_once(benchmark, figure3, runner)
    inflation = result["inflation"]
    # The L1-level inflation must relax as bandwidth grows.
    l1_curve = inflation["L1D"]
    assert min(l1_curve) > 0
    # Inflation at the constrained end is no better than at the ample end
    # (allowing simulator noise).
    assert l1_curve[0] >= l1_curve[-1] - 0.25
