"""Figures 13-16: CLIP's prediction quality and traffic reduction.

Paper: the critical signature predicts critical loads far more accurately
than the best prior predictor (93% vs 41%); coverage averages 76%; about
half the critical IPs are dynamic-critical; and CLIP drops ~50% of Berti's
prefetch requests.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure13, figure14, figure15, figure16


def test_figure13_accuracy_beats_best_prior(benchmark, runner):
    result = run_once(benchmark, figure13, runner)
    assert result["clip_avg"] > result["prior_avg"], (
        "the critical signature must beat IP-granularity prediction")


def test_figure14_coverage_nonzero(benchmark, runner):
    result = run_once(benchmark, figure14, runner)
    assert result["average"] > 0.05


def test_figure15_dynamic_critical_ips_exist(benchmark, runner):
    result = run_once(benchmark, figure15, runner)
    dynamic_total = sum(m["dynamic"] for m in result.values())
    static_total = sum(m["static"] for m in result.values())
    # The paper's key claim: a sizeable share of critical IPs is dynamic.
    assert dynamic_total > 0
    assert static_total + dynamic_total > 0


def test_figure16_traffic_reduction(benchmark, runner):
    result = run_once(benchmark, figure16, runner)
    # Paper: ~50% average drop in prefetch requests (up to 90%).
    assert 0.15 < result["average"] <= 1.0
