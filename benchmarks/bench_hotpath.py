"""Hot-path microbenchmarks: engine drain, cache access, end-to-end.

Unlike the figure benchmarks (which time cached *experiments*), these
time the simulator itself and maintain the repo's performance baseline,
``BENCH_PR7.json``:

* on a checkout without the baseline (or with ``REPRO_BENCH_WRITE=1``)
  the suite writes a fresh one, ready to be reviewed and committed;
* otherwise the end-to-end points of *both* simulation backends (event
  and batch) are compared against the committed numbers and the suite
  fails on a regression past ``REPRO_BENCH_TOLERANCE`` (default 25%) --
  the CI perf-smoke job runs exactly this.

``repro bench`` is the CLI face of the same suite
(:mod:`repro.experiments.hotpath`).
"""

from __future__ import annotations

from _harness import hotpath_baseline, hotpath_tolerance, run_once

from repro.experiments.hotpath import (bench_cache_access,
                                       bench_end_to_end,
                                       bench_engine_drain, run_suite)


def test_engine_drain(benchmark):
    result = run_once(benchmark, bench_engine_drain)
    assert result["events_per_sec"] > 0
    assert result["events"] == 200_000


def test_cache_access(benchmark):
    result = run_once(benchmark, bench_cache_access)
    assert result["accesses_per_sec"] > 0
    # The pattern must exercise both the hit fast path and evictions.
    assert 0.25 < result["hit_rate"] < 0.99


def test_end_to_end_point(benchmark):
    result = run_once(benchmark, bench_end_to_end)
    assert result["instructions"] == 40_000
    assert result["total_cycles"] > 0


def test_end_to_end_point_batch(benchmark):
    """The batch backend runs the same point and lands on the same
    cycle count (full bit-identity is pinned by the equivalence suite)."""
    event = bench_end_to_end(repeats=1)
    result = run_once(benchmark, bench_end_to_end, backend="batch")
    assert result["instructions"] == 40_000
    assert result["total_cycles"] == event["total_cycles"]


def test_against_committed_baseline(benchmark):
    """The perf-smoke gate: end-to-end within tolerance of the baseline."""
    from repro.experiments.hotpath import compare_to_baseline

    payload = run_once(benchmark, run_suite, repeats=3, quiet=True)
    baseline = hotpath_baseline(payload)
    failures = compare_to_baseline(payload, baseline, hotpath_tolerance())
    assert not failures, "; ".join(failures)
