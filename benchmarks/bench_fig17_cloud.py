"""Figure 17: CloudSuite and CVP client/server workloads.

Paper: these traces are hard to prefetch (under 10% gains even with 64
channels), so neither Berti nor CLIP moves performance much -- the figure's
point is the *absence* of large effects.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure17


def test_figure17_cloud_cvp_flat(benchmark, runner):
    result = run_once(benchmark, figure17, runner)
    series = result["series"]
    for scheme, curve in series.items():
        for value in curve:
            # Everything stays within a modest band around 1.0.
            assert 0.8 < value < 1.25, (scheme, curve)
    # CLIP never causes a meaningful loss on these workloads.
    for clip_value, berti_value in zip(series["berti+clip"],
                                       series["berti"]):
        assert clip_value > berti_value - 0.08
