"""Figures 9-10: CLIP's headline result.

Paper: at the constrained point CLIP improves Berti by 24% (homogeneous)
and 9% (heterogeneous); per-mix, most Berti slowdowns flip to gains.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure9, figure10


def test_figure9_clip_with_all_prefetchers(benchmark, runner):
    result = run_once(benchmark, figure9, runner)
    homog = result["homogeneous"]
    heterog = result["heterogeneous"]
    # CLIP must rescue the L1 prefetchers whose traffic causes the problem.
    assert homog["berti+clip"] > homog["berti"] + 0.03
    assert homog["ipcp+clip"] > homog["ipcp"]
    assert heterog["berti+clip"] >= heterog["berti"]
    # And CLIP must never make any prefetcher substantially worse.
    for scheme in ("berti", "ipcp", "bingo", "spp_ppf"):
        assert homog[scheme + "+clip"] > homog[scheme] - 0.05


def test_figure10_per_mix(benchmark, runner):
    result = run_once(benchmark, figure10, runner)
    per_mix = result["per_mix"]
    assert result["clip_avg"] > result["berti_avg"]
    # Paper: with CLIP only a few mixes still slow down, far fewer than
    # with Berti alone.
    berti_slowdowns = sum(1 for m in per_mix.values()
                          if m["berti_ws"] < 0.98)
    clip_slowdowns = sum(1 for m in per_mix.values()
                         if m["clip_ws"] < 0.98)
    assert clip_slowdowns <= berti_slowdowns
