"""Figures 11-12: the latency/coverage trade CLIP makes.

Paper: CLIP cuts the average L1 miss latency (168 -> 132 cycles) while
giving up a few points of miss coverage -- trading coverage for latency is
the whole point under constrained bandwidth.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure11, figure12


def test_figure11_l1_latency_drops(benchmark, runner):
    result = run_once(benchmark, figure11, runner)
    assert result["clip_avg"] < result["berti_avg"]


def test_figure12_coverage_tradeoff(benchmark, runner):
    result = run_once(benchmark, figure12, runner)
    # CLIP drops prefetches, so its coverage cannot exceed Berti's by much;
    # some loss at one or more levels is the expected cost.
    total_berti = sum(result["berti"].values())
    total_clip = sum(result["berti+clip"].values())
    assert total_clip <= total_berti + 0.05
