"""Table 2, Table 3, and the section-5.1 energy claim."""

from __future__ import annotations

import pytest

from _harness import run_once

from repro.experiments import energy_study, table2, table3


def test_table2_storage_overhead(benchmark):
    result = run_once(benchmark, table2)
    # Paper: 1.56 KB per core.
    assert result["total_kb"] == pytest.approx(1.564, abs=0.01)
    assert result["rows"]["Criticality filter"] == 336
    assert result["rows"]["Criticality predictor"] == 640
    assert result["rows"]["Utility buffer"] == 512


def test_table3_baseline_configuration(benchmark):
    result = run_once(benchmark, table3)
    assert result["cores"] == 64
    assert result["rob_entries"] == 512
    assert result["dram_channels"] == 8
    assert result["mesh_dim"] == 8
    assert result["llc_replacement"] == "mockingjay"


def test_energy_saving(benchmark, runner):
    result = run_once(benchmark, energy_study, runner)
    # Paper: -18.21% dynamic energy for homogeneous mixes.  The shape
    # requirement: CLIP's traffic cut shows up as an energy saving.
    assert result["saving"] > 0.0
