"""Figures 4-5: prior load-criticality predictors.

Fig. 4 (paper): existing predictors over-predict -- high coverage, low
instance-level accuracy (best: 41%).  Fig. 5: gating Berti with them does
not rescue performance under constrained bandwidth.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure4, figure5


def test_figure4_accuracy_coverage(benchmark, runner):
    result = run_once(benchmark, figure4, runner)
    accuracy = result["accuracy"]
    coverage = result["coverage"]
    # The sticky IP-granularity predictors must show the paper's
    # over-prediction signature: coverage far above accuracy.
    for name in ("fvp", "cbp", "robo"):
        assert coverage[name] > 0.5, f"{name} coverage collapsed"
        assert accuracy[name] < 0.6, f"{name} accuracy suspiciously high"
        assert coverage[name] > accuracy[name]


def test_figure5_gating_does_not_rescue_berti(benchmark, runner):
    result = run_once(benchmark, figure5, runner)
    homog = result["homogeneous"]
    constrained = 0  # Index of the most constrained channel count.
    berti = homog["berti"][constrained]
    # No prior predictor turns the constrained slowdown into a clear win
    # (paper Fig. 5: all variants hover at or below no-prefetching).
    for scheme, curve in homog.items():
        if scheme == "berti":
            continue
        assert curve[constrained] < 1.10
