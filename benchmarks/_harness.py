"""Benchmark-suite scale and helpers.

All figure benchmarks share one :class:`ExperimentRunner` (see conftest)
so the hundreds of simulations behind the paper's figures are executed
once per session — and at most once per *machine*: the runner persists
results in the ``.repro-cache/`` store, so re-invoking any benchmark
re-simulates nothing (``REPRO_NO_CACHE=1`` opts out, ``REPRO_JOBS=N``
parallelises cold runs).  The scale is deliberately small (DESIGN.md
section 2); pass a larger :class:`BenchScale` to the drivers for
higher-fidelity runs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

from repro.experiments import BenchScale
from repro.experiments import hotpath

#: Committed hot-path performance baseline (see docs/performance.md).
#: PR7 and later payloads carry both backends' end-to-end points
#: (``end_to_end`` = event engine, ``end_to_end_batch`` = batch engine).
BENCH_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

#: The scale every benchmark runs at.  8 cores with 1 scaled channel carry
#: the paper's constrained 8-cores-per-channel pressure.
BENCH_SCALE = BenchScale(
    num_cores=8,
    sim_instructions=8_000,
    channel_sweep=(1, 2, 4, 8, 16),
    constrained_channels=1,
    homogeneous_sample=6,
    heterogeneous_mixes=4,
)


def run_once(benchmark, func, *args, **kwargs):
    """Run a driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def hotpath_baseline(payload: Dict) -> Dict:
    """The committed hot-path baseline to compare ``payload`` against.

    When no baseline exists yet (first run on a fresh checkout), or when
    ``REPRO_BENCH_WRITE=1`` requests a re-pin, the fresh payload is
    written to :data:`BENCH_BASELINE` and also returned -- the
    comparison then trivially passes, and the new file is ready to be
    reviewed and committed.
    """
    if os.environ.get("REPRO_BENCH_WRITE") or not BENCH_BASELINE.exists():
        hotpath.write_payload(payload, BENCH_BASELINE)
        return payload
    baseline = hotpath.load_baseline(BENCH_BASELINE)
    assert baseline is not None
    return baseline


def hotpath_tolerance() -> float:
    """Allowed end-to-end slowdown vs the committed baseline (the CI
    perf-smoke job widens this for noisy shared runners)."""
    return float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25"))
