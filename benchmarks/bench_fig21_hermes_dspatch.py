"""Figure 21: CLIP vs Hermes vs DSPatch.

Paper: CLIP beats both at 4-8 channels; Hermes overtakes CLIP at 16
channels (it hides latency without reducing traffic); DSPatch trails under
constrained bandwidth because its myopic per-controller signal steers it to
the coverage bitmap.
"""

from __future__ import annotations

from _harness import run_once

from repro.experiments import figure21


def test_figure21_related_work(benchmark, runner):
    result = run_once(benchmark, figure21, runner)
    homog = result["homogeneous"]
    constrained = 0
    # At the constrained point CLIP leads the comparison.
    assert homog["berti+clip"][constrained] >= \
        homog["berti+dspatch"][constrained] - 0.02
    assert homog["berti+clip"][constrained] >= \
        homog["berti"][constrained]
    # Hermes helps relative to plain Berti somewhere in the sweep, or at
    # least never collapses (it adds no traffic savings, only latency
    # hiding).
    assert max(homog["berti+hermes"]) > 0.8
