#!/usr/bin/env python3
"""Regenerate the hierarchy-refactor equivalence goldens.

Runs every point in ``tests/equivalence_points.py`` and rewrites the
golden ``SimulationResult.to_dict()`` JSON under
``tests/data/equivalence/``.  Only run this when a simulator behaviour
change is intended and reviewed -- the whole value of the goldens is
that refactors which are supposed to be behaviour-preserving cannot
silently drift.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

from equivalence_points import GOLDEN_DIR, POINTS  # noqa: E402

from repro.sim.system import run_system  # noqa: E402


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, build in POINTS.items():
        config, mix = build()
        result = run_system(config, mix)
        payload = {"point": name, "workloads": mix,
                   "result": result.to_dict()}
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                        + "\n")
        print(f"wrote {path} (total_cycles={result.total_cycles})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
