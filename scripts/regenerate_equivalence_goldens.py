#!/usr/bin/env python3
"""Regenerate the hierarchy-refactor equivalence goldens.

Runs every point in ``tests/equivalence_points.py`` and rewrites the
golden ``SimulationResult.to_dict()`` JSON under
``tests/data/equivalence/``.  Only run this when a simulator behaviour
change is intended and reviewed -- the whole value of the goldens is
that refactors which are supposed to be behaviour-preserving cannot
silently drift.

``--additive`` is the safe mode for result-schema *extensions* (new
counters, new derived columns): it refuses to write unless every leaf
already present in the old golden is bit-identical in the new result,
so only genuinely new fields can land.  A pinned value that moved is an
error, not a rewrite.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

from equivalence_points import GOLDEN_DIR, POINTS  # noqa: E402

from repro.sim.system import run_system  # noqa: E402


def pinned_leaf_changes(old, new, path=""):
    """Leaves present in ``old`` that are missing or different in ``new``.

    New keys in ``new`` are allowed anywhere (that is the point of an
    additive regeneration); anything the old golden pinned must survive
    bit-identically, including list lengths and elements.
    """
    out = []
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(old):
            if key not in new:
                out.append(f"  {path}.{key}: pinned leaf disappeared"
                           if path else f"  {key}: pinned leaf disappeared")
            else:
                out.extend(pinned_leaf_changes(
                    old[key], new[key],
                    f"{path}.{key}" if path else str(key)))
    elif isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            out.append(f"  {path}: list length {len(old)} -> {len(new)}")
        else:
            for i, (o, n) in enumerate(zip(old, new)):
                out.extend(pinned_leaf_changes(o, n, f"{path}[{i}]"))
    elif old != new:
        out.append(f"  {path}: pinned={old!r} new={new!r}")
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--additive", action="store_true",
        help="only allow new result fields: every leaf present in the "
             "existing golden must match the fresh run bit-identically, "
             "otherwise nothing is written and the diff is reported")
    args = parser.parse_args(argv)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    failures = 0
    for name, build in POINTS.items():
        config, mix = build()
        result = run_system(config, mix)
        payload = {"point": name, "workloads": mix,
                   "result": result.to_dict()}
        path = GOLDEN_DIR / f"{name}.json"
        if args.additive and path.exists():
            old = json.loads(path.read_text())
            changes = pinned_leaf_changes(old, payload)
            if changes:
                failures += 1
                print(f"REFUSING {path}: pinned values changed "
                      f"(not additive):")
                print("\n".join(changes[:40]))
                continue
        path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                        + "\n")
        print(f"wrote {path} (total_cycles={result.total_cycles})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
