#!/usr/bin/env python
"""Self-test for the lint suite: seed one violation per rule, catch all.

CI runs this after the repo gate.  The repo gate proves ``src/repro`` is
clean; this proves the rules still *fire* -- a refactor that silently
disabled a pass would otherwise keep CI green while the gate checks
nothing.  Each fixture is written into a scratch project tree (some
rules are path-sensitive: SIM008 only polices ``sim/hierarchy``, SIM010
exempts ``trace/``) and the full default rule set is run over it; every
rule must report a violation inside its own fixture file.
"""

from __future__ import annotations

import sys
import tempfile
import textwrap
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.lint import run_lint  # noqa: E402

#: rule id -> (project-relative path, violating source).
FIXTURES = {
    "SIM001": ("src/repro/fix_unseeded.py", """
        import random

        def jitter():
            return random.randrange(16)
        """),
    "SIM002": ("src/repro/fix_floatcycle.py", """
        def advance(self, cycle):
            self.ready_at = cycle * 1.5
        """),
    "SIM003": ("src/repro/fix_mutabledefault.py", """
        def collect(item, acc=[]):
            acc.append(item)
            return acc
        """),
    "SIM004": ("src/repro/fix_capture.py", """
        def drain(engine, requests):
            for req in requests:
                engine.schedule(10, lambda: req.complete())
        """),
    "SIM005": ("src/repro/fix_counter.py", """
        class SelftestStats:
            def __init__(self):
                self.packets = 0

        class Router:
            def __init__(self):
                self.stats = SelftestStats()

            def on_packet(self):
                self.stats.packtes += 1
        """),
    "SIM006": ("src/repro/fix_assert.py", """
        def release(entries, line):
            assert line in entries
            return entries.pop(line)
        """),
    "SIM007": ("src/repro/fix_wallclock.py", """
        import time

        def stamp(record):
            record.at = time.time()
        """),
    "SIM008": ("src/repro/sim/hierarchy/fix_bypass.py", """
        class Node:
            def request(self, req, cycle):
                self.engine.schedule(cycle + self.latency, self._done)
        """),
    "SIM009": ("src/repro/fix_nondetiter.py", """
        def drain(engine, requests):
            pending = set(requests)
            for req in pending:
                engine.schedule(1, req)
        """),
    "SIM010": ("src/repro/fix_rng.py", """
        import random

        def inject(engine, seed):
            rng = random.Random(seed)
            engine.schedule(rng.randrange(8), None)
        """),
    "SIM011": ("src/repro/fix_entropy.py", """
        class Tracker:
            def index(self, engine, req):
                self.table[id(req)] = req
                engine.schedule(1, None)
        """),
    "SIM012": ("src/repro/fix_reduction.py", """
        def total(values):
            pool = set(values)
            return sum(pool)
        """),
    "SIM013": ("src/repro/fix_compile.py", """
        class Cache:
            def __init__(self):
                self.lines = {}

            def warm(self):
                self.ready = True
        """),
}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="lint-selftest-") as scratch:
        root = Path(scratch)
        for rule_id, (rel_path, source) in FIXTURES.items():
            target = root / rel_path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source).lstrip())
        report = run_lint([root / "src"], root=root)
        hits = {}
        for violation in report.violations:
            hits.setdefault(violation.rule_id, set()).add(violation.path)
        failures = []
        for rule_id, (rel_path, _source) in sorted(FIXTURES.items()):
            if rel_path in hits.get(rule_id, ()):
                print(f"ok   {rule_id} fired in {rel_path}")
            else:
                failures.append(rule_id)
                print(f"FAIL {rule_id} did not fire in {rel_path}")
        if failures:
            print(f"\nself-test FAILED: {', '.join(failures)} never "
                  f"fired -- a lint pass has gone silent")
            return 1
        print(f"\nself-test OK: all {len(FIXTURES)} rules fired on "
              f"their fixtures")
        return 0


if __name__ == "__main__":
    sys.exit(main())
