#!/usr/bin/env python3
"""Full-scale (Table 3) runs: 64 cores, 8x8 mesh, eight DDR4-3200 channels.

The benchmark suite runs a scaled system; this script runs the paper's
actual configuration for one mix and one scheme comparison, submitted as
one sweep so the three schemes fan out across processes (``--jobs``) and
a repeated invocation is served from the on-disk cache.  Pure-Python
cost: a 64-core x 50k-instruction run takes tens of minutes on one core --
budget accordingly (the paper's 200M-instruction windows are out of reach
without a compiled simulator, see DESIGN.md section 2).

Usage:
    python scripts/run_full_scale.py [workload] [instructions-per-core]
        [--jobs N] [--no-cache]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments.sweep import (ResultStore, RunSpec, Scheme, Sweep,
                                     run_sweep)
from repro.sim.stats import weighted_speedup
from repro.trace import homogeneous_mix

#: The paper's Table-3 system is the RunSpec default at 64 cores; the
#: figure-9 headline comparison is three points of one sweep.
SCHEMES = {
    "no-prefetch": Scheme(),
    "berti": Scheme(l1="berti"),
    "berti+clip": Scheme(l1="berti", clip=True),
}


def build_spec(scheme: Scheme, workload: str,
               instructions: int) -> RunSpec:
    # Full scale: Scheme carries the structural knobs so the paper's
    # Table-3 geometry (not the benchmark scaling) is what simulates.
    full = dataclasses.replace(scheme, num_cores=64,
                               sim_instructions=instructions)
    spec = RunSpec(scheme=full, mix=tuple(homogeneous_mix(workload, 64)),
                   channels=8, num_cores=64,
                   sim_instructions=instructions)
    spec.config().validate()
    return spec


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="605.mcf_s-1536B")
    parser.add_argument("instructions", nargs="?", type=int,
                        default=20_000)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    specs = {label: build_spec(scheme, args.workload, args.instructions)
             for label, scheme in SCHEMES.items()}
    print(f"full-scale run: {args.workload} x64 cores, 8 channels, "
          f"{args.instructions} instructions/core, jobs={args.jobs}")
    store = None if args.no_cache else ResultStore()
    started = time.time()
    outcome = run_sweep(Sweep(specs.values()), jobs=args.jobs,
                        store=store)
    print(f"  {outcome.simulated} simulated, {outcome.cache_hits} from "
          f"cache in {time.time() - started:7.1f}s")
    for label, spec in specs.items():
        print(f"  {label:<12} aggregate IPC "
              f"{sum(outcome[spec].ipc_per_core):7.2f}")
    baseline = outcome[specs["no-prefetch"]]
    for label in ("berti", "berti+clip"):
        print(f"{label:<12} weighted speedup "
              f"{weighted_speedup(outcome[specs[label]], baseline):.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
