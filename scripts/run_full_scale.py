#!/usr/bin/env python3
"""Full-scale (Table 3) runs: 64 cores, 8x8 mesh, eight DDR4-3200 channels.

The benchmark suite runs a scaled system; this script runs the paper's
actual configuration for one mix and one scheme comparison.  Pure-Python
cost: a 64-core x 50k-instruction run takes tens of minutes on one core --
budget accordingly (the paper's 200M-instruction windows are out of reach
without a compiled simulator, see DESIGN.md section 2).

Usage:
    python scripts/run_full_scale.py [workload] [instructions-per-core]
"""

from __future__ import annotations

import dataclasses
import sys
import time

from repro.config import SystemConfig
from repro.sim.stats import weighted_speedup
from repro.sim.system import run_system
from repro.trace import homogeneous_mix


def build_config(prefetcher: str, clip: bool,
                 instructions: int) -> SystemConfig:
    config = SystemConfig()          # Table 3, unmodified.
    config.sim_instructions = instructions
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name=prefetcher)
    config.clip = dataclasses.replace(config.clip, enabled=clip)
    config.validate()
    return config


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "605.mcf_s-1536B"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    mix = homogeneous_mix(workload, 64)
    print(f"full-scale run: {workload} x64 cores, 8 channels, "
          f"{instructions} instructions/core")
    results = {}
    for label, prefetcher, clip in (("no-prefetch", "none", False),
                                    ("berti", "berti", False),
                                    ("berti+clip", "berti", True)):
        started = time.time()
        results[label] = run_system(
            build_config(prefetcher, clip, instructions), mix, label=label)
        print(f"  {label:<12} done in {time.time() - started:7.1f}s, "
              f"aggregate IPC "
              f"{sum(results[label].ipc_per_core):7.2f}")
    baseline = results["no-prefetch"]
    for label in ("berti", "berti+clip"):
        print(f"{label:<12} weighted speedup "
              f"{weighted_speedup(results[label], baseline):.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
