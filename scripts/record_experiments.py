#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs every experiment driver with one shared (cached) runner at the
benchmark scale and writes the comparison document.  Takes ~30-60 minutes.

Usage: python scripts/record_experiments.py [output-path]
"""

from __future__ import annotations

import io
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path

from repro import experiments
from repro.experiments import BenchScale, ExperimentRunner

SCALE = BenchScale(num_cores=8, sim_instructions=8_000,
                   channel_sweep=(1, 2, 4, 8, 16), constrained_channels=1,
                   homogeneous_sample=6, heterogeneous_mixes=4)

#: (driver, paper claim, how to read the scaled result)
ITEMS = [
    ("Figure 1", experiments.figure1,
     "Prefetchers slow 64-core/8ch systems (Berti: -16%) and gain +35% at "
     "64 channels.",
     "Berti/IPCP weighted speedup < 1.0 at 1 scaled channel, rising "
     "monotonically to > 1.0 at 16."),
    ("Figure 2", experiments.figure2,
     "Heterogeneous mixes show the same gradient, softened.",
     "Same shape; smaller swings than Figure 1."),
    ("Figure 3", experiments.figure3,
     "Berti inflates L2/L3 demand miss latency by >= 1.9x at 4-8 channels.",
     "Latency ratios above 1.0 at the constrained end, relaxing with "
     "channels."),
    ("Figure 4", experiments.figure4,
     "Prior criticality predictors: high coverage, low accuracy "
     "(best 41%).",
     "FVP/CBP/ROBO coverage >> accuracy; instance accuracy low."),
    ("Figure 5", experiments.figure5,
     "No prior predictor rescues Berti at low bandwidth.",
     "All berti+<predictor> rows stay near or below 1.0 at 1 channel."),
    ("Figure 6", experiments.figure6,
     "Throttlers (FDP/HPAC/SPAC/NST) help marginally at best.",
     "berti+<throttler> within a few points of plain Berti."),
    ("Figure 9", experiments.figure9,
     "CLIP improves Berti by 24% (homog) / 9% (heterog) at 8 channels; "
     "works for all four prefetchers.",
     "X+clip >= X for every prefetcher at the constrained point."),
    ("Figure 10", experiments.figure10,
     "Per-mix: 16% slowdown becomes 8% gain; slowdown mixes drop from 26 "
     "to 3 of 45.",
     "clip_ws > berti_ws for most mixes; geomean gap positive."),
    ("Figure 11", experiments.figure11,
     "Average L1 miss latency falls from 168 to 132 cycles.",
     "clip latency < berti latency (absolute values are scale-specific)."),
    ("Figure 12", experiments.figure12,
     "CLIP gives up ~7% L1 / 2-3% L2-LLC miss coverage.",
     "Coverage with CLIP <= Berti at L1."),
    ("Figure 13", experiments.figure13,
     "Critical signature: 93% avg accuracy vs 41% for the best prior.",
     "clip_avg > prior_avg."),
    ("Figure 14", experiments.figure14,
     "CLIP covers 76% of critical loads on average.",
     "Nonzero coverage; lower than the paper at this scale (synthetic "
     "irregular streams have larger signature working sets)."),
    ("Figure 15", experiments.figure15,
     "Few critical IPs per mix; ~50% dynamic-critical.",
     "Small static+dynamic counts; dynamic > 0."),
    ("Figure 16", experiments.figure16,
     "CLIP drops ~50% of Berti's prefetch requests (up to 90%).",
     "Mean reduction well above zero."),
    ("Figure 17", experiments.figure17,
     "CloudSuite/CVP: prefetchers gain <10% even unconstrained.",
     "All curves in a narrow band around 1.0."),
    ("Figure 18", experiments.figure18,
     "2x/4x tables: marginal gain; 0.25-0.5x: >7% loss.",
     "Larger tables do not collapse; smaller never help."),
    ("Figure 19", experiments.figure19,
     "CLIP's gain shrinks as channels grow (homogeneous).",
     "clip-vs-base gap largest at 1 scaled channel."),
    ("Figure 20", experiments.figure20,
     "Same across prefetchers, heterogeneous.",
     "clip never substantially below base."),
    ("Figure 21", experiments.figure21,
     "CLIP beats Hermes/DSPatch at 4-8 channels; Hermes wins at 16.",
     "berti+clip leads at the constrained point."),
    ("Energy (5.1)", experiments.energy_study,
     "CLIP cuts dynamic memory-hierarchy energy by 18.21% (homog).",
     "Positive saving."),
    ("LLC sweep (5.2)", experiments.llc_sensitivity,
     "Smaller LLC -> bigger Berti slowdown -> bigger CLIP edge.",
     "clip >= berti at every size."),
    ("Cores sweep (5.2)", experiments.core_count_sensitivity,
     "CLIP matters while there is <1 channel per 2-4 cores.",
     "Gain at 8c/1ch >= gain at 8c/2ch."),
    ("Ablation (4.2/5.1)", experiments.ablation_study,
     "77.5% of benefit from criticality filtering/prediction; NoC/DRAM "
     "priority only 2.8%; short histories hurt.",
     "no-priority close to full; every ablation above plain Berti."),
    ("Table 2", experiments.table2,
     "1.56 KB/core storage.",
     "Exact recomputation: 1.564 KB."),
    ("Table 3", experiments.table3,
     "Baseline system parameters.",
     "SystemConfig() defaults printed verbatim."),
]

HEADER = """# EXPERIMENTS — paper vs measured

Generated by `python scripts/record_experiments.py` at benchmark scale
({cores} cores, {instr} instructions/core, channel sweep {sweep};
1 scaled channel = the paper's 8-cores-per-channel constrained point).

Absolute numbers are not comparable with the authors' cycle-accurate
C++ testbed; the reproduction target is each figure's *shape* (see
README "Scope notes" and DESIGN.md section 2). Every claim below is also
asserted mechanically by `pytest benchmarks/ --benchmark-only`.

Total driver runtime: {minutes:.1f} minutes, {runs} simulations
(cached across figures).
"""


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    runner = ExperimentRunner(SCALE)
    sections = []
    start = time.time()
    for title, driver, paper_claim, scaled_reading in ITEMS:
        buffer = io.StringIO()
        t0 = time.time()
        with redirect_stdout(buffer):
            if driver in (experiments.table2, experiments.table3):
                driver()
            else:
                driver(runner)
        elapsed = time.time() - t0
        print(f"{title}: {elapsed:.1f}s", flush=True)
        body = buffer.getvalue().strip()
        sections.append(
            f"## {title}\n\n"
            f"**Paper:** {paper_claim}\n\n"
            f"**Scaled reading:** {scaled_reading}\n\n"
            f"**Measured:**\n\n```text\n{body}\n```\n")
    minutes = (time.time() - start) / 60
    header = HEADER.format(cores=SCALE.num_cores,
                           instr=SCALE.sim_instructions,
                           sweep=list(SCALE.channel_sweep),
                           minutes=minutes, runs=runner.runs)
    out_path.write_text(header + "\n" + "\n".join(sections))
    print(f"wrote {out_path} ({minutes:.1f} min, {runner.runs} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
