"""Mesh network-on-chip with XY routing and two priority classes.

Table 3 describes an 8x8 mesh of 2-stage wormhole routers, six virtual
channels, eight flits per data packet and one per address packet.  A
flit-accurate wormhole simulation is unnecessary for the paper's effect --
what matters is (i) hop latency, (ii) per-link serialisation (one flit per
cycle), and (iii) that demand and *criticality-flagged* prefetch packets are
prioritised over plain prefetch packets (section 4.2, "Load Criticality
conscious NOC and DRAM").

We model each directed link with reservation timestamps: a packet walks its
XY path reserving link time.  High-priority packets queue only behind other
high-priority traffic (idealised priority); low-priority packets queue
behind everything.  DESIGN.md section 2 records this approximation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.invariants import SimulationInvariantError
from repro.config import NocConfig


class NocStats:
    """Aggregate NoC statistics."""

    def __init__(self) -> None:
        self.packets = 0
        self.flits = 0
        self.total_latency = 0
        self.total_hops = 0
        #: Exact flit-hop count (each packet's flits x its XY route
        #: length) -- the quantity the energy model charges per link
        #: traversal; local (src == dst) deliveries contribute none.
        self.flit_hops = 0
        self.high_priority_packets = 0

    @property
    def average_latency(self) -> float:
        if not self.packets:
            return 0.0
        return self.total_latency / self.packets


class MeshNoc:
    """An N x N mesh; nodes are numbered row-major."""

    def __init__(self, dim: int, config: NocConfig | None = None) -> None:
        if dim < 1:
            raise ValueError("mesh dimension must be positive")
        self.dim = dim
        self.config = config or NocConfig()
        # (from_node, to_node) -> [high-priority reserved-until,
        #                          any-priority reserved-until]
        self._links: Dict[Tuple[int, int], List[int]] = {}
        # XY routes are static, so (src, dst) -> link list is memoised;
        # a dim x dim mesh has at most dim^4 pairs and send() is hot.
        self._routes: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.stats = NocStats()

    # ------------------------------------------------------------------

    def coordinates(self, node: int) -> Tuple[int, int]:
        return node % self.dim, node // self.dim

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """XY route: walk X first, then Y; returns directed link list."""
        if not (0 <= src < self.dim ** 2 and 0 <= dst < self.dim ** 2):
            raise ValueError("node out of range")
        links: List[Tuple[int, int]] = []
        x, y = self.coordinates(src)
        dst_x, dst_y = self.coordinates(dst)
        node = src
        while x != dst_x:
            x += 1 if dst_x > x else -1
            nxt = y * self.dim + x
            links.append((node, nxt))
            node = nxt
        while y != dst_y:
            y += 1 if dst_y > y else -1
            nxt = y * self.dim + x
            links.append((node, nxt))
            node = nxt
        return links

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, now: int, flits: int,
             high_priority: bool) -> int:
        """Reserve the path for one packet; returns its arrival cycle."""
        config = self.config
        if flits < 1:
            raise SimulationInvariantError(
                f"packet with {flits} flits cannot traverse the mesh")
        per_hop = config.router_latency + config.link_latency
        time = now
        if src == dst:
            # Local slice access: one router traversal, no links.
            return now + config.router_latency
        pair = (src, dst)
        path = self._routes.get(pair)
        if path is None:
            path = self.route(src, dst)
            self._routes[pair] = path
        links = self._links
        data_packet_flits = config.data_packet_flits
        for link in path:
            reserved = links.get(link)
            if reserved is None:
                reserved = [0, 0]
                links[link] = reserved
            if high_priority:
                # Priority VCs jump the queue but cannot preempt a packet
                # already on the wire: wait out up to one data packet of
                # the low-priority backlog.
                earliest = max(reserved[0],
                               reserved[1] - data_packet_flits)
            else:
                earliest = reserved[1]
            start = max(time, earliest)
            finish = start + per_hop + flits - 1
            if high_priority:
                reserved[0] = max(reserved[0], finish)
            reserved[1] = max(reserved[1], finish)
            # Wormhole pipelining: the head flit moves on after the hop
            # latency; serialisation tails overlap across hops.
            time = start + per_hop
        arrival = time + flits - 1
        stats = self.stats
        stats.packets += 1
        stats.flits += flits
        stats.total_latency += arrival - now
        # One XY link per hop, so the memoised path doubles as the count.
        stats.total_hops += len(path)
        stats.flit_hops += flits * len(path)
        if high_priority:
            stats.high_priority_packets += 1
        return arrival

    def send_request(self, src: int, dst: int, now: int,
                     high_priority: bool = True) -> int:
        """Address packet (1 flit)."""
        return self.send(src, dst, now, self.config.address_packet_flits,
                         high_priority)

    def send_data(self, src: int, dst: int, now: int,
                  high_priority: bool = True) -> int:
        """Data packet (8 flits for one 64B line)."""
        return self.send(src, dst, now, self.config.data_packet_flits,
                         high_priority)
