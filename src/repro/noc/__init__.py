"""Network-on-chip substrate: mesh topology and priority-aware link timing."""

from repro.noc.mesh import MeshNoc, NocStats

__all__ = ["MeshNoc", "NocStats"]
