"""System configuration dataclasses.

The defaults reproduce Table 3 of the paper ("Simulation parameters of the
baseline system"): a 64-core out-of-order system at 4 GHz with a three-level
non-inclusive cache hierarchy, an 8x8 mesh network-on-chip with sliced LLC,
and eight DDR4-3200 channels scheduled by a prefetch-aware (PADC-style)
controller.

Every experiment driver accepts a :class:`SystemConfig`; the benchmark suite
scales it down (fewer cores, proportionally fewer channels, shorter traces)
so that a pure-Python simulation finishes in seconds while keeping the
paper's pivot ratio -- cores per DRAM channel -- intact.
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass, field

#: Simulation backends selectable through :attr:`SystemConfig.backend`.
#: ``event`` is the pure-Python event/callback engine (the oracle);
#: ``batch`` is the batch-stepped struct-of-arrays backend
#: (:mod:`repro.sim.batch`), required to be bit-identical on
#: ``SimulationResult.to_dict()``.
BACKENDS = ("event", "batch")


def resolve_backend(configured: str) -> str:
    """The backend a run should use: ``REPRO_BACKEND`` wins over config.

    The environment override lets sweeps, benchmarks, and CI select the
    backend without editing configs; it is consulted once per system
    construction.  Raises ``ValueError`` on unknown values either way.
    """
    name = os.environ.get("REPRO_BACKEND") or configured
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {name!r}: expected one of "
            f"{', '.join(BACKENDS)} (set via SystemConfig.backend or the "
            f"REPRO_BACKEND environment variable)")
    return name


@dataclass
class CoreConfig:
    """Out-of-order core parameters (Table 3, row "Core")."""

    frequency_ghz: float = 4.0
    issue_width: int = 6
    retire_width: int = 4
    rob_entries: int = 512
    load_queue_entries: int = 128
    store_queue_entries: int = 72
    #: Fixed pipeline refill penalty after a branch mispredict, in cycles.
    mispredict_penalty: int = 15
    #: Execution latency of non-memory instructions, in cycles.
    alu_latency: int = 1


def little_core(frequency_ghz: float = 4.0) -> CoreConfig:
    """An efficiency ("little") core: half-width issue, quarter ROB.

    The big/little mixes pair Table 3's reference core with these for
    the heterogeneous-system axis (does criticality-filtered prefetching
    help more when cores are asymmetric?).
    """
    return CoreConfig(frequency_ghz=frequency_ghz, issue_width=3,
                      retire_width=2, rob_entries=128,
                      load_queue_entries=64, store_queue_entries=36)


def big_little_overrides(num_cores: int, big_cores: int,
                         little: CoreConfig | None = None,
                         ) -> "dict[int, CoreConfig]":
    """Per-core override map: the first ``big_cores`` keep the base
    (big) core, the rest become ``little`` cores."""
    if not 0 <= big_cores <= num_cores:
        raise ValueError(
            f"big_cores must be within [0, {num_cores}], got {big_cores}")
    little = little or little_core()
    return {core_id: dataclasses.replace(little)
            for core_id in range(big_cores, num_cores)}


@dataclass
class BranchPredictorConfig:
    """Hashed perceptron branch predictor (Table 3 cites Jimenez & Lin)."""

    history_bits: int = 24
    num_tables: int = 8
    table_entries: int = 1024
    weight_bits: int = 8
    threshold: int = 18


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str = "L1D"
    size_kib: int = 48
    ways: int = 12
    line_size: int = 64
    latency: int = 5
    mshr_entries: int = 16
    replacement: str = "lru"

    @property
    def num_sets(self) -> int:
        total_lines = self.size_kib * 1024 // self.line_size
        return total_lines // self.ways

    @property
    def num_lines(self) -> int:
        return self.size_kib * 1024 // self.line_size

    def __post_init__(self) -> None:
        total_lines = self.size_kib * 1024 // self.line_size
        if total_lines % self.ways:
            raise ValueError(
                f"{self.name}: {total_lines} lines not divisible by "
                f"{self.ways} ways"
            )


def _default_l1i() -> CacheConfig:
    return CacheConfig(name="L1I", size_kib=32, ways=8, latency=4,
                       mshr_entries=8, replacement="lru")


def _default_l1d() -> CacheConfig:
    return CacheConfig(name="L1D", size_kib=48, ways=12, latency=5,
                       mshr_entries=16, replacement="lru")


def _default_l2() -> CacheConfig:
    return CacheConfig(name="L2", size_kib=512, ways=8, latency=10,
                       mshr_entries=32, replacement="srrip")


def _default_llc_slice() -> CacheConfig:
    # 2 MB per core, organised as one slice per mesh node.
    return CacheConfig(name="LLC", size_kib=2048, ways=16, latency=20,
                       mshr_entries=64, replacement="mockingjay")


@dataclass
class TlbConfig:
    """TLB hierarchy (Table 3, row "TLBs").  Disabled by default at
    benchmark scale; see ``repro.mmu.tlb`` for the rationale."""

    enabled: bool = False
    dtlb_entries: int = 64
    dtlb_ways: int = 4
    stlb_entries: int = 2048
    stlb_ways: int = 16
    #: STLB lookup latency in cycles (Table 3: 8 cycles).
    stlb_latency: int = 8
    #: Charge for a full page walk on an STLB miss.
    page_walk_latency: int = 100
    page_shift: int = 12


@dataclass
class NocConfig:
    """8x8 mesh wormhole NoC (Table 3, rows "Network Router"/"Topology")."""

    #: Router pipeline depth in cycles (2-stage wormhole router).
    router_latency: int = 2
    #: Link traversal latency in cycles.
    link_latency: int = 1
    #: Flits per data packet (64B line over 8-byte flits).
    data_packet_flits: int = 8
    #: Flits per address/request packet.
    address_packet_flits: int = 1
    virtual_channels: int = 6
    flit_buffer_depth: int = 5


@dataclass
class DramConfig:
    """DDR4-3200 channel timing (Table 3, rows "DRAM controller"/"chip").

    All latencies are expressed in CPU cycles at ``CoreConfig.frequency_ghz``.
    DDR4-3200 moves 25.6 GB/s per channel; one 64-byte line therefore
    occupies the data bus for 2.5 ns = 10 CPU cycles at 4 GHz.
    """

    channels: int = 8
    banks_per_channel: int = 16
    row_buffer_bytes: int = 4096
    #: tRP = tRCD = CAS = 12.5 ns (Table 3) = 50 cycles at 4 GHz.
    trp_cycles: int = 50
    trcd_cycles: int = 50
    cas_cycles: int = 50
    #: Data-bus occupancy of one 64B burst (burst length 16).
    burst_cycles: int = 10
    read_queue_entries: int = 64
    write_queue_entries: int = 64
    #: Writes drain once the write queue passes this fill fraction (7/8).
    write_watermark: float = 7.0 / 8.0
    #: Number of writes drained per drain episode.
    write_drain_batch: int = 16
    #: PADC-style prefetch-aware scheduling (demand-first).
    prefetch_aware: bool = True
    page_policy: str = "open"


@dataclass
class PrefetcherConfig:
    """Which prefetcher runs at which level, plus shared knobs."""

    #: One of "none", "berti", "ipcp", "spp_ppf", "bingo", "stride",
    #: "streamer".
    name: str = "berti"
    degree: int = 4
    #: Max in-flight prefetches queued at the issuing cache level.
    queue_entries: int = 32


@dataclass
class ClipConfig:
    """CLIP structures (Section 4.3, Table 2)."""

    enabled: bool = False
    # Criticality filter: 32 sets x 4 ways = 128 entries.
    filter_sets: int = 32
    filter_ways: int = 4
    ip_tag_bits: int = 6
    criticality_count_bits: int = 2
    hit_count_bits: int = 6
    issue_count_bits: int = 6
    #: ROB-stall occurrences before an IP is considered critical.
    criticality_count_threshold: int = 4
    # Criticality predictor: 128 sets x 4 ways = 512 entries.
    predictor_sets: int = 128
    predictor_ways: int = 4
    predictor_tag_bits: int = 6
    saturating_counter_bits: int = 3
    # Utility buffer CAM.
    utility_buffer_entries: int = 64
    # Global histories feeding the critical signature.
    branch_history_bits: int = 32
    criticality_history_bits: int = 32
    #: Exploration window, in L1D misses (just above 768 L1D lines).
    exploration_window_misses: int = 1024
    #: Per-IP prefetch hit rate needed to keep prefetching for an IP.
    accuracy_threshold: float = 0.90
    #: APC deviation that signals an application phase change.
    phase_change_threshold: float = 0.15
    #: Number of past windows averaged for the APC baseline.
    apc_history_windows: int = 16
    #: Send the criticality flag to the NoC and DRAM scheduler.
    criticality_conscious_noc_dram: bool = True
    #: Stage-II per-IP accuracy filter (ablation knob).
    use_accuracy_filter: bool = True
    #: Dynamic CLIP (paper section 5.3, future work): bypass all filtering
    #: while the measured DRAM utilisation says bandwidth is ample.
    dynamic: bool = False
    #: Utilisation above which dynamic CLIP engages filtering...
    dynamic_on_utilization: float = 0.45
    #: ...and below which it disengages (hysteresis).
    dynamic_off_utilization: float = 0.30
    #: Track criticality/accuracy by 4 KiB page instead of trigger IP --
    #: the paper's variant for non-IP-based L2 prefetchers (section 4.2).
    index_by_page: bool = False
    #: Stage-I criticality filter/predictor (ablation knob).
    use_criticality_filter: bool = True
    #: Signature composition toggles (ablation knobs; paper section 4.2).
    signature_use_address: bool = True
    signature_use_branch_history: bool = True
    signature_use_criticality_history: bool = True

    def scaled(self, factor: float) -> "ClipConfig":
        """Return a copy with both tables scaled by ``factor`` (Fig. 18)."""
        clone = dataclasses.replace(self)
        clone.filter_sets = max(1, int(self.filter_sets * factor))
        clone.predictor_sets = max(1, int(self.predictor_sets * factor))
        return clone


@dataclass
class CriticalityConfig:
    """Baseline criticality predictor selection (Figs. 4-5)."""

    #: One of "none", "catch", "fvp", "fp", "cbp", "robo", "crisp".
    name: str = "none"
    #: When False the predictor only *measures* (Fig. 4) and does not gate
    #: prefetch requests (Fig. 5 uses gating).
    gate: bool = True


@dataclass
class ThrottleConfig:
    """Prefetch throttler selection (Fig. 6)."""

    #: One of "none", "fdp", "hpac", "spac", "nst".
    name: str = "none"


@dataclass
class RelatedConfig:
    """Hermes / DSPatch comparators (Fig. 21)."""

    hermes: bool = False
    dspatch: bool = False


#: Prefetchers the bandit selector may hold as arms ("none" plus the
#: L1-training zoo).  Mirrors ``repro.prefetch.base.make_prefetcher``;
#: kept literal here to avoid a config -> prefetch import cycle.
LEARNED_ARM_CHOICES = ("none", "berti", "ipcp", "stride", "streamer")


@dataclass
class LearnedConfig:
    """Online learned prefetch control (the ROADMAP scheme family).

    ``policy`` picks the learner each core's prefetch filter chain
    drives (see :mod:`repro.prefetch.learned`):

    * ``"bandit"`` -- contextual-bandit *selection* of the L1
      prefetcher from :attr:`arms`, re-decided every
      :attr:`epoch_accesses` demand L1D accesses (arxiv 2307.08635
      idiom).  Requires ``l1_prefetcher`` to be ``"none"``: the
      selector owns that slot.
    * ``"perceptron"`` -- hashed-perceptron prefetch *filtering* with
      a bandwidth-adaptive admission threshold (arxiv 2403.15181 /
      PPF idiom), a learned alternative to CLIP's utility CAM.

    Learner state is explicit integers and the only randomness is the
    per-core xorshift stream derived from :attr:`seed`, so seeded runs
    are bit-identical across repeats, process pools, and backends.
    """

    #: One of "none", "bandit", "perceptron".
    policy: str = "none"
    #: Root of the per-core deterministic exploration streams.
    seed: int = 0xC11F
    #: Demand L1D accesses per policy epoch (observe cadence).
    epoch_accesses: int = 128
    #: Bandit arms (L1 prefetcher names; "none" keeps the no-prefetch
    #: option competitive under bandwidth pressure).
    arms: tuple[str, ...] = ("none", "berti", "stride", "streamer")
    #: Epsilon-greedy exploration rate, in permille.
    epsilon_permille: int = 125
    #: Use the UCB rule instead of epsilon-greedy exploration.
    ucb: bool = False
    #: Perceptron geometry (branch.py-style lanes).
    tables: int = 4
    table_entries: int = 256
    weight_bits: int = 6
    #: Base admission threshold (idle bus).
    threshold: int = 0
    #: Raise the admission bar with DRAM bus pressure.
    adaptive_threshold: bool = True
    #: Admit every Nth below-threshold candidate as an exploration
    #: probe, so the filter keeps a training signal even when the
    #: adaptive bar exceeds the cold-start weights (CLIP's
    #: exploration-window idea, counter-deterministic).
    probe_interval: int = 8
    #: Bound on in-flight admissions awaiting fate feedback.
    pending_entries: int = 512


@dataclass
class SystemConfig:
    """Complete multi-core system configuration (Table 3 defaults)."""

    num_cores: int = 64
    core: CoreConfig = field(default_factory=CoreConfig)
    #: Per-core deviations from :attr:`core` (big/little mixes): maps a
    #: core id to the full :class:`CoreConfig` that core runs with.
    #: Cores absent from the map use :attr:`core` unchanged.
    core_overrides: dict[int, CoreConfig] = field(default_factory=dict)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    l1i: CacheConfig = field(default_factory=_default_l1i)
    l1d: CacheConfig = field(default_factory=_default_l1d)
    l2: CacheConfig = field(default_factory=_default_l2)
    llc_slice: CacheConfig = field(default_factory=_default_llc_slice)
    noc: NocConfig = field(default_factory=NocConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    l1_prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    l2_prefetcher: PrefetcherConfig = field(
        default_factory=lambda: PrefetcherConfig(name="none"))
    clip: ClipConfig = field(default_factory=ClipConfig)
    criticality: CriticalityConfig = field(default_factory=CriticalityConfig)
    throttle: ThrottleConfig = field(default_factory=ThrottleConfig)
    related: RelatedConfig = field(default_factory=RelatedConfig)
    learned: LearnedConfig = field(default_factory=LearnedConfig)
    #: Instructions simulated per core before statistics are collected.
    warmup_instructions: int = 0
    #: When > 0, record up to this many per-demand-load latency records
    #: (see ``repro.sim.tracing``); 0 disables tracing.
    capture_request_trace: int = 0
    #: Install the runtime invariant sanitizer
    #: (``repro.analysis.sanitizer``).  Also enabled by the
    #: ``REPRO_SANITIZE=1`` environment variable; the flag is consulted
    #: once at system construction, so a disabled run pays nothing.
    sanitize: bool = False
    #: Instructions simulated per core with statistics on.
    sim_instructions: int = 20_000
    #: Simulation backend: ``"event"`` (pure-Python event engine, the
    #: oracle) or ``"batch"`` (batch-stepped struct-of-arrays fast path,
    #: bit-identical results).  ``REPRO_BACKEND`` overrides at run time.
    backend: str = "event"

    @property
    def mesh_dim(self) -> int:
        """Mesh is the smallest square that seats every core (8x8 at 64)."""
        root = math.isqrt(self.num_cores)
        if root * root < self.num_cores:
            root += 1
        return root

    def core_for(self, core_id: int) -> CoreConfig:
        """The :class:`CoreConfig` a given core runs with (override or
        the shared base)."""
        return self.core_overrides.get(core_id, self.core)

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        if self.dram.channels < 1:
            raise ValueError("at least one DRAM channel is required")
        if self.core.retire_width > self.core.issue_width:
            raise ValueError("retire width wider than issue width")
        for core_id, override in self.core_overrides.items():
            if not 0 <= core_id < self.num_cores:
                raise ValueError(
                    f"core override for core {core_id} outside "
                    f"[0, {self.num_cores})")
            if override.retire_width > override.issue_width:
                raise ValueError(
                    f"core {core_id}: retire width wider than issue width")
            if override.frequency_ghz != self.core.frequency_ghz:
                # Uncore latencies are expressed in core cycles, so the
                # model supports one clock domain for all cores.
                raise ValueError(
                    f"core {core_id}: per-core frequencies must match the "
                    f"base core ({override.frequency_ghz} != "
                    f"{self.core.frequency_ghz})")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown simulation backend {self.backend!r}: expected "
                f"one of {', '.join(BACKENDS)}")
        learned = self.learned
        if learned.policy not in ("none", "bandit", "perceptron"):
            raise ValueError(
                f"unknown learned policy {learned.policy!r}: expected "
                f"'none', 'bandit' or 'perceptron'")
        if learned.policy != "none" and learned.epoch_accesses < 1:
            raise ValueError("learned.epoch_accesses must be positive")
        if learned.policy == "bandit":
            if self.l1_prefetcher.name != "none":
                raise ValueError(
                    "the bandit selector owns the L1 prefetcher slot: "
                    "set l1_prefetcher to 'none' (the selector's arms "
                    "name the candidate prefetchers)")
            if not learned.arms:
                raise ValueError("learned.arms must name at least one arm")
            for arm in learned.arms:
                if arm not in LEARNED_ARM_CHOICES:
                    raise ValueError(
                        f"unknown bandit arm {arm!r}: choose from "
                        f"{LEARNED_ARM_CHOICES}")
        if learned.policy == "perceptron":
            if learned.tables < 1 or learned.table_entries < 1:
                raise ValueError(
                    "perceptron needs at least one table and entry")
            if learned.weight_bits < 2:
                raise ValueError("perceptron weights need >= 2 bits")
            if learned.probe_interval < 1:
                raise ValueError(
                    "perceptron probe_interval must be positive")

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a shallow-copied config with top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def at_frequency(self, frequency_ghz: float) -> "SystemConfig":
        """A copy of this config DVFS-scaled to ``frequency_ghz``.

        All uncore latencies (DRAM timing, NoC router/link) are stored in
        *core* cycles, so re-clocking the cores rescales them by the
        frequency ratio: a fixed-nanosecond DRAM CAS costs fewer core
        cycles when the cores run slower.  Latencies never drop below
        one cycle.
        """
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        ratio = frequency_ghz / self.core.frequency_ghz

        def cycles(value: int) -> int:
            return max(1, round(value * ratio))

        clone = dataclasses.replace(
            self,
            core=dataclasses.replace(self.core,
                                     frequency_ghz=frequency_ghz),
            core_overrides={
                core_id: dataclasses.replace(override,
                                             frequency_ghz=frequency_ghz)
                for core_id, override in self.core_overrides.items()},
            dram=dataclasses.replace(
                self.dram,
                trp_cycles=cycles(self.dram.trp_cycles),
                trcd_cycles=cycles(self.dram.trcd_cycles),
                cas_cycles=cycles(self.dram.cas_cycles),
                burst_cycles=cycles(self.dram.burst_cycles)),
            noc=dataclasses.replace(
                self.noc,
                router_latency=cycles(self.noc.router_latency),
                link_latency=cycles(self.noc.link_latency)),
        )
        return clone


def scaled_config(num_cores: int = 16,
                  channels: int = 2,
                  sim_instructions: int = 12_000,
                  warmup_instructions: int = 0) -> SystemConfig:
    """A benchmark-scale configuration preserving cores-per-channel ratios.

    The paper's headline point is the ratio of cores to DDR4-3200 channels
    (64 cores / 8 channels = 8 cores per channel).  ``scaled_config(16, 2)``
    keeps that ratio while shrinking the simulation by 4x.

    Caches shrink with the trace length so capacity behaviour (evictions,
    pollution, reuse) appears within a 10^4-instruction run just as it does
    within the paper's 200M-instruction windows; this lands the scaled
    system near the paper's 512 KB-LLC/core sensitivity point (section
    5.2), where the constrained-bandwidth effects are most visible.  CLIP's
    exploration window shrinks in proportion to the L1D size, following the
    paper's rule (window just above the number of L1D lines).
    """
    config = SystemConfig(num_cores=num_cores,
                          sim_instructions=sim_instructions,
                          warmup_instructions=warmup_instructions)
    config.dram = dataclasses.replace(config.dram, channels=channels)
    config.l1i = dataclasses.replace(config.l1i, size_kib=8, ways=8)
    config.l1d = dataclasses.replace(config.l1d, size_kib=12, ways=12)
    config.l2 = dataclasses.replace(config.l2, size_kib=64, ways=8)
    config.llc_slice = dataclasses.replace(config.llc_slice,
                                           size_kib=128, ways=16)
    config.clip = dataclasses.replace(
        config.clip,
        exploration_window_misses=128,
        apc_history_windows=6,
        utility_buffer_entries=256)
    config.validate()
    return config
