"""Out-of-order core substrate: ROB dataflow model and branch prediction."""

from repro.cpu.branch import HashedPerceptronPredictor
from repro.cpu.core_model import Core, RobEntry, ServiceLevel

__all__ = ["HashedPerceptronPredictor", "Core", "RobEntry", "ServiceLevel"]
