"""Trace-driven out-of-order core model.

The model keeps the microarchitectural state the paper's mechanisms read:

* a reorder buffer with in-order retirement and a retire-width limit, so
  *ROB-head stalls* (the paper's criticality ground truth) are measured
  directly as the time an instruction keeps the head of the ROB waiting for
  its completion;
* register dataflow: an instruction executes only after its producers
  complete, so pointer-chasing loads serialise (low MLP) and dependent
  branches resolve late;
* per-entry *miss-level* flags (paper section 4.1): the level of the memory
  hierarchy that serviced each load;
* branch mispredict bubbles using the hashed perceptron predictor.

Timing is driven by a cooperative engine: ``tick(cycle)`` performs retire
and dispatch for one cycle and publishes ``next_wake`` so the engine can
skip cycles in which the core can make no progress (memory events wake it).
"""

from __future__ import annotations

from collections import deque
from enum import IntEnum
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.config import CoreConfig
from repro.cpu.branch import HashedPerceptronPredictor
from repro.trace.record import Op, TraceRecord

INFINITY = float("inf")

# Enum member access goes through EnumType.__getattr__; these run once per
# dispatched instruction, so bind them as module constants.
_OP_LOAD = Op.LOAD
_OP_STORE = Op.STORE
_OP_BRANCH = Op.BRANCH


class ServiceLevel(IntEnum):
    """Which level of the hierarchy serviced a load (miss-level flag)."""

    UNKNOWN = 0
    L1 = 1
    L2 = 2
    LLC = 3
    DRAM = 4


_LEVEL_L2 = ServiceLevel.L2


class RobEntry:
    """One in-flight instruction."""

    __slots__ = ("seq", "ip", "op", "address", "dst", "deps", "ready_at",
                 "done_at", "dependents", "became_head_at", "service_level",
                 "issued_at", "dispatched_at", "mlp_at_issue", "producers",
                 "is_mispredict", "taken", "consumer_count",
                 "history_snapshot")

    def __init__(self, seq: int, record: TraceRecord, cycle: int) -> None:
        self.seq = seq
        self.ip = record.ip
        self.op = record.op
        self.address = record.address
        self.dst = record.dst
        self.taken = record.taken
        self.deps = 0
        self.ready_at = cycle
        self.done_at: Optional[int] = None
        #: Waiting consumers; ``None`` until the first one registers, so
        #: the (majority) producer-less entries never allocate a list.
        self.dependents: Optional[List["RobEntry"]] = None
        self.became_head_at: Optional[int] = None
        self.service_level = ServiceLevel.UNKNOWN
        self.issued_at: Optional[int] = None
        self.dispatched_at = cycle
        self.mlp_at_issue = 0
        self.producers: tuple = ()
        self.is_mispredict = False
        self.consumer_count = 0
        #: (branch history, criticality history) captured at dispatch by
        #: CLIP so predictor training sees the trigger-time context.
        self.history_snapshot = None


class CoreStats:
    """Retirement-side statistics for one core."""

    def __init__(self) -> None:
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.mispredicts = 0
        self.finish_cycle = 0
        self.head_stall_cycles = 0
        #: Head-stall cycles attributed to loads serviced beyond L1.
        self.head_stall_cycles_miss = 0
        self.critical_load_instances = 0
        self.load_instances_beyond_l1 = 0

    @property
    def ipc(self) -> float:
        if not self.finish_cycle:
            return 0.0
        return self.instructions / self.finish_cycle


class Core:
    """A single out-of-order core consuming one trace."""

    def __init__(self, core_id: int, config: CoreConfig,
                 trace: Sequence[TraceRecord], memory, engine,
                 branch_predictor: Optional[HashedPerceptronPredictor] = None,
                 warmup_instructions: int = 0) -> None:
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self._trace_len = len(trace)
        self.memory = memory
        self.engine = engine
        #: Instructions retired before statistics start counting.
        self.warmup_instructions = warmup_instructions
        self._warmup_cycle = 0
        self.branch_predictor = branch_predictor or HashedPerceptronPredictor()
        self.rob: Deque[RobEntry] = deque()
        self.reg_producer: Dict[int, RobEntry] = {}
        self.pc = 0
        self.seq = 0
        self.retired = 0
        self.fetch_stall_until = 0
        self.outstanding_loads = 0
        self.done = False
        self.next_wake: float = 0
        self.stats = CoreStats()
        # Event hooks (registered by CLIP, criticality predictors, ...).
        self.retire_hooks: List[Callable] = []
        self.dispatch_hooks: List[Callable] = []
        self.branch_hooks: List[Callable] = []
        self.load_response_hooks: List[Callable] = []
        self.load_issue_hooks: List[Callable] = []

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Retire then dispatch for one cycle; update ``next_wake``."""
        if self.done:
            self.next_wake = INFINITY
            return
        self._retire(cycle)
        if not self.done:
            self._dispatch(cycle)
        self._update_next_wake(cycle)

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------

    def _retire(self, cycle: int) -> None:
        retired_now = 0
        rob = self.rob
        retire_width = self.config.retire_width
        # ``self._account_retire`` resolves dynamically on purpose: the
        # sanitizer wraps it as an instance attribute.  One lookup per
        # tick (not per retirement) still goes through the shim.
        account_retire = self._account_retire
        while (rob and retired_now < retire_width):
            head = rob[0]
            if head.done_at is None or head.done_at > cycle:
                break
            rob.popleft()
            retired_now += 1
            account_retire(head, cycle)
            if rob and rob[0].became_head_at is None:
                rob[0].became_head_at = cycle
        if self.retired >= self._trace_len and not rob:
            self.done = True
            self.stats.finish_cycle = cycle - self._warmup_cycle

    def _account_retire(self, entry: RobEntry, cycle: int) -> None:
        self.retired += 1
        if self.warmup_instructions:
            if self.retired <= self.warmup_instructions:
                if self.retired == self.warmup_instructions:
                    # Warm-up ends: restart the statistics window.
                    self.stats = CoreStats()
                    self._warmup_cycle = cycle
                return
        stats = self.stats
        stats.instructions += 1
        became_head = entry.became_head_at
        if became_head is None:
            became_head = entry.dispatched_at
        head_wait = 0
        if entry.done_at is not None and entry.done_at > became_head:
            head_wait = entry.done_at - became_head
        stats.head_stall_cycles += head_wait
        op = entry.op
        if op == _OP_LOAD:
            stats.loads += 1
            if entry.service_level >= _LEVEL_L2:
                stats.load_instances_beyond_l1 += 1
                if head_wait > 0:
                    stats.head_stall_cycles_miss += head_wait
                    stats.critical_load_instances += 1
        elif op == _OP_STORE:
            stats.stores += 1
        elif op == _OP_BRANCH:
            stats.branches += 1
        for hook in self.retire_hooks:
            hook(self, entry, cycle, head_wait)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        if self.fetch_stall_until > cycle:
            return
        dispatched = 0
        config = self.config
        issue_width = config.issue_width
        rob_entries = config.rob_entries
        trace = self.trace
        trace_len = len(trace)
        rob = self.rob
        reg_producer = self.reg_producer
        dispatch_hooks = self.dispatch_hooks
        branch_hooks = self.branch_hooks
        predict_and_train = self.branch_predictor.predict_and_train
        pc = self.pc
        seq = self.seq
        next_cycle = cycle + 1
        while (dispatched < issue_width
               and len(rob) < rob_entries
               and pc < trace_len):
            record = trace[pc]
            pc += 1
            dispatched += 1
            entry = RobEntry(seq, record, cycle)
            seq += 1
            if not rob:
                entry.became_head_at = cycle
            rob.append(entry)
            if record.srcs:
                self._wire_dependencies(entry, record, cycle)
            op = record.op
            if op == _OP_LOAD:
                for hook in dispatch_hooks:
                    hook(self, entry, cycle)
            if record.dst >= 0:
                reg_producer[record.dst] = entry
            stop_fetch = False
            if op == _OP_BRANCH:
                correct = predict_and_train(record.ip, record.taken)
                if not correct:
                    self.stats.mispredicts += 1
                    entry.is_mispredict = True
                    stop_fetch = True
                for hook in branch_hooks:
                    hook(self, record.ip, record.taken, not correct, cycle)
            if entry.deps == 0:
                ready_at = entry.ready_at
                self._begin_execution(
                    entry, next_cycle if next_cycle > ready_at else ready_at)
            if stop_fetch:
                if entry.done_at is not None:
                    self.fetch_stall_until = (entry.done_at
                                              + config.mispredict_penalty)
                else:
                    self.fetch_stall_until = 1 << 62
                break
        self.pc = pc
        self.seq = seq

    def _wire_dependencies(self, entry: RobEntry, record: TraceRecord,
                           cycle: int) -> None:
        producers = []
        for src in record.srcs:
            producer = self.reg_producer.get(src)
            if producer is None:
                continue
            producers.append((producer.ip, producer.op))
            producer.consumer_count += 1
            if producer.done_at is None:
                waiting = producer.dependents
                if waiting is None:
                    producer.dependents = [entry]
                else:
                    waiting.append(entry)
                entry.deps += 1
            else:
                entry.ready_at = max(entry.ready_at, producer.done_at)
        entry.producers = tuple(producers)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _begin_execution(self, entry: RobEntry, start: int) -> None:
        op = entry.op
        if op == _OP_LOAD:
            if start > self.engine.now:
                self.engine.schedule(start, self._issue_load, entry)
            else:
                self._issue_load(entry)
        elif op == _OP_STORE:
            # Stores commit through the store buffer; the write itself is
            # fire-and-forget into the hierarchy.
            self._set_done(entry, start + 1)
            self.memory.issue_store(self.core_id, entry.address, entry.ip,
                                    start)
        elif op == _OP_BRANCH:
            self._set_done(entry, start + 1)
        else:
            self._set_done(entry, start + self.config.alu_latency)

    def _issue_load(self, entry: RobEntry) -> None:
        cycle = self.engine.now
        entry.issued_at = cycle
        self.outstanding_loads += 1
        entry.mlp_at_issue = self.outstanding_loads
        for hook in self.load_issue_hooks:
            hook(self, entry, cycle)
        self.memory.issue_load(
            self.core_id, entry.address, entry.ip, cycle,
            partial(self._on_load_response, entry))

    def _on_load_response(self, entry: RobEntry, cycle: int,
                          level: ServiceLevel) -> None:
        self.outstanding_loads -= 1
        entry.service_level = (level if level.__class__ is ServiceLevel
                               else ServiceLevel(level))
        # Two stall signals: the paper's hardware mechanism checks the
        # *global* ROB-stall flag when a response returns (section 4.1);
        # ground truth for criticality is whether *this* load is the
        # blocked ROB head (it stalled retirement itself).
        rob_stalled = self._rob_stalled(cycle)
        self_stalled = bool(
            self.rob and self.rob[0] is entry
            and entry.became_head_at is not None
            and entry.became_head_at < cycle)
        for hook in self.load_response_hooks:
            hook(self, entry, cycle, rob_stalled, self_stalled)
        self._set_done(entry, cycle)

    def _rob_stalled(self, cycle: int) -> bool:
        """Paper's ROB-stall flag: retirement is currently blocked."""
        if not self.rob:
            return False
        head = self.rob[0]
        if head.done_at is not None and head.done_at <= cycle:
            return False
        became_head = head.became_head_at
        return became_head is not None and became_head < cycle

    def _set_done(self, entry: RobEntry, cycle: int) -> None:
        entry.done_at = cycle
        dependents = entry.dependents
        if dependents is not None:
            entry.dependents = None
            for dependent in dependents:
                dependent.ready_at = max(dependent.ready_at, cycle)
                dependent.deps -= 1
                if dependent.deps == 0:
                    self._begin_execution(dependent, dependent.ready_at)
        if entry.is_mispredict:
            self.fetch_stall_until = cycle + self.config.mispredict_penalty
            self.next_wake = min(self.next_wake, self.fetch_stall_until)
        if self.rob and self.rob[0] is entry:
            self.next_wake = min(self.next_wake, cycle)

    # ------------------------------------------------------------------
    # Wake computation
    # ------------------------------------------------------------------

    def _update_next_wake(self, cycle: int) -> None:
        if self.done:
            self.next_wake = INFINITY
            return
        wake = INFINITY
        if self.rob:
            head = self.rob[0]
            if head.done_at is not None:
                wake = max(head.done_at, cycle + 1)
            # A pending head wakes us through its completion event.
        can_fetch = (self.pc < self._trace_len
                     and len(self.rob) < self.config.rob_entries)
        if can_fetch:
            if self.fetch_stall_until <= cycle:
                wake = min(wake, cycle + 1)
            elif self.fetch_stall_until < (1 << 61):
                wake = min(wake, self.fetch_stall_until)
        self.next_wake = wake

    @property
    def rob_occupancy(self) -> int:
        return len(self.rob)
