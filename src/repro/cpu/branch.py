"""Hashed perceptron branch predictor (Table 3, "hashed perceptron").

A faithful-in-spirit implementation of Jimenez-style hashed perceptron
prediction: several weight tables, each indexed by a hash of the branch IP
and a different-length slice of global history.  The prediction is the sign
of the summed weights; training bumps weights when the prediction was wrong
or the confidence was below threshold.

The simulator is trace-driven (outcomes come from the trace), so the
predictor's only architectural effect is whether a mispredict bubble is
charged -- but its accuracy still shapes which loads become critical, which
is exactly the dynamic the paper's ``hotcold`` loads exercise.
"""

from __future__ import annotations

from typing import List

from repro.config import BranchPredictorConfig


class HashedPerceptronPredictor:
    """Multi-table hashed perceptron predictor with global history."""

    def __init__(self, config: BranchPredictorConfig | None = None) -> None:
        self.config = config or BranchPredictorConfig()
        c = self.config
        self._tables: List[List[int]] = [
            [0] * c.table_entries for _ in range(c.num_tables)
        ]
        self._history = 0
        self._history_mask = (1 << c.history_bits) - 1
        self._weight_max = (1 << (c.weight_bits - 1)) - 1
        self._weight_min = -(1 << (c.weight_bits - 1))
        # Each table sees a progressively longer history slice.
        self._segment_bits = [
            max(1, (i * c.history_bits) // max(1, c.num_tables - 1))
            for i in range(c.num_tables)
        ]
        # Per-table (weights, history mask, hash salt) lanes plus a
        # preallocated index scratch list: predict_and_train runs once per
        # branch and must not build lists or re-derive constants.
        self._lanes = [
            (self._tables[i], (1 << bits) - 1, i * 0x85EBCA6B)
            for i, bits in enumerate(self._segment_bits)
        ]
        self._scratch = [0] * c.num_tables
        self._entries = c.table_entries
        self._threshold = c.threshold
        self.predictions = 0
        self.mispredictions = 0

    def _indices(self, ip: int) -> List[int]:
        entries = self.config.table_entries
        indices = []
        for table, bits in enumerate(self._segment_bits):
            segment = self._history & ((1 << bits) - 1)
            mixed = (ip >> 2) ^ (segment * 0x9E3779B1) ^ (table * 0x85EBCA6B)
            indices.append((mixed ^ (mixed >> 13)) % entries)
        return indices

    def predict(self, ip: int) -> bool:
        """Predict taken/not-taken for the branch at ``ip``."""
        total = 0
        for table, index in enumerate(self._indices(ip)):
            total += self._tables[table][index]
        return total >= 0

    def predict_and_train(self, ip: int, taken: bool) -> bool:
        """Predict, then train with the trace outcome.

        Returns ``True`` when the prediction was correct.
        """
        # Fused index/sum loop over the precomputed lanes -- arithmetic is
        # exactly :meth:`_indices` followed by the weight summation.
        ip_hash = ip >> 2
        history = self._history
        entries = self._entries
        scratch = self._scratch
        total = 0
        lane = 0
        for weights, segment_mask, salt in self._lanes:
            mixed = ip_hash ^ ((history & segment_mask) * 0x9E3779B1) ^ salt
            index = (mixed ^ (mixed >> 13)) % entries
            scratch[lane] = index
            lane += 1
            total += weights[index]
        prediction = total >= 0
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if not correct or abs(total) <= self._threshold:
            delta = 1 if taken else -1
            weight_max = self._weight_max
            weight_min = self._weight_min
            lane = 0
            for weights, _segment_mask, _salt in self._lanes:
                weight = weights[scratch[lane]] + delta
                if weight > weight_max:
                    weight = weight_max
                elif weight < weight_min:
                    weight = weight_min
                weights[scratch[lane]] = weight
                lane += 1
        self._history = ((history << 1) | int(taken)) \
            & self._history_mask
        return correct

    @property
    def accuracy(self) -> float:
        """Fraction of correctly predicted branches so far."""
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
