"""repro: reproduction of CLIP (MICRO 2023).

CLIP: Load Criticality based Data Prefetching for Bandwidth-constrained
Many-core Systems (Biswabandan Panda, MICRO 2023).

Public API tour:

>>> from repro import scaled_config, run_system
>>> from repro.trace import homogeneous_mix
>>> config = scaled_config(num_cores=4, channels=1, sim_instructions=2000)
>>> config.clip.enabled = True
>>> result = run_system(config, homogeneous_mix("605.mcf_s-1536B", 4))
>>> result.total_instructions
8000

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (ClipConfig, CoreConfig, DramConfig,
                          PrefetcherConfig, SystemConfig, scaled_config)
from repro.sim.stats import SimulationResult, weighted_speedup
from repro.sim.system import MulticoreSystem, run_system

__version__ = "1.0.0"

__all__ = [
    "ClipConfig", "CoreConfig", "DramConfig", "PrefetcherConfig",
    "SystemConfig", "scaled_config", "SimulationResult", "weighted_speedup",
    "MulticoreSystem", "run_system", "__version__",
]
