"""repro: reproduction of CLIP (MICRO 2023).

CLIP: Load Criticality based Data Prefetching for Bandwidth-constrained
Many-core Systems (Biswabandan Panda, MICRO 2023).

The documented public surface is :mod:`repro.api` (see ``docs/api.md``):

>>> from repro import api
>>> config = api.scaled_config(num_cores=4, channels=1,
...                            sim_instructions=2000)
>>> config.clip.enabled = True
>>> result = api.simulate(config, ["605.mcf_s-1536B"] * 4)
>>> result.total_instructions
8000

``api.sweep`` runs scheme/workload/channel grids with disk caching, and
both entrypoints accept ``backend="batch"`` for the fast simulation
engine (bit-identical results; see ``docs/performance.md``).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro import api
from repro.api import SweepResult, simulate, sweep
from repro.config import (ClipConfig, CoreConfig, DramConfig,
                          PrefetcherConfig, SystemConfig, scaled_config)
from repro.sim.stats import SimulationResult, weighted_speedup
from repro.sim.system import MulticoreSystem, run_system

__version__ = "1.1.0"

__all__ = [
    "api", "simulate", "sweep", "SweepResult",
    "ClipConfig", "CoreConfig", "DramConfig", "PrefetcherConfig",
    "SystemConfig", "scaled_config", "SimulationResult", "weighted_speedup",
    "MulticoreSystem", "run_system", "__version__",
]
