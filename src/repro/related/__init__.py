"""Related-work comparators: Hermes and DSPatch (paper section 5.3)."""

from repro.related.hermes import HermesPredictor
from repro.related.dspatch import DspatchModulator

__all__ = ["HermesPredictor", "DspatchModulator"]
