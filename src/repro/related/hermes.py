"""Hermes: perceptron-based off-chip load prediction (MICRO 2022).

Hermes predicts, at load issue, whether a load will be serviced by DRAM and
-- if so -- launches the DRAM access immediately, in parallel with the cache
walk, hiding the on-chip lookup latency.  Crucially it does *not* reduce
DRAM traffic (the early request *is* the DRAM request, and mispredictions
add requests), which is why the paper finds CLIP ahead of Hermes at low
bandwidth and behind it at 16 channels.
"""

from __future__ import annotations

from typing import List

_PAGE_SHIFT = 12
_LINE_SHIFT = 6


class HermesPredictor:
    """POPET-style perceptron off-chip predictor."""

    TABLE = 512
    WEIGHT_MAX = 31
    #: Perceptron sum needed to launch a speculative DRAM access.
    ACTIVATION = 2

    def __init__(self) -> None:
        self._tables: List[List[int]] = [[0] * self.TABLE for _ in range(4)]
        self.predictions = 0
        self.predicted_offchip = 0
        self.correct = 0

    def _indices(self, ip: int, address: int) -> List[int]:
        page = address >> _PAGE_SHIFT
        offset = (address >> _LINE_SHIFT) & 0x3F
        return [
            (ip >> 2) % self.TABLE,
            ((ip >> 2) ^ page) % self.TABLE,
            ((ip << 6) | offset) % self.TABLE,
            (page ^ (page >> 9)) % self.TABLE,
        ]

    def _score(self, ip: int, address: int) -> int:
        return sum(self._tables[t][i]
                   for t, i in enumerate(self._indices(ip, address)))

    def predict_offchip(self, ip: int, address: int) -> bool:
        """Should an early DRAM access be launched for this load?"""
        self.predictions += 1
        predicted = self._score(ip, address) >= self.ACTIVATION
        if predicted:
            self.predicted_offchip += 1
        return predicted

    def train(self, ip: int, address: int, went_offchip: bool) -> None:
        """Learn the resolved outcome of a load."""
        score = self._score(ip, address)
        predicted = score >= self.ACTIVATION
        if predicted == went_offchip:
            self.correct += 1
            if abs(score) > 2 * self.ACTIVATION:
                return  # Confident and correct: no update.
        step = 1 if went_offchip else -1
        for table, index in enumerate(self._indices(ip, address)):
            weight = self._tables[table][index] + step
            self._tables[table][index] = max(-self.WEIGHT_MAX,
                                             min(self.WEIGHT_MAX, weight))

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return self.correct / self.predictions
