"""DSPatch: Dual Spatial Pattern prefetching (MICRO 2019).

DSPatch keeps *two* spatial bitmaps per program/page signature: CovP, the
OR of recent page footprints (coverage-biased), and AccP, the AND
(accuracy-biased), and picks between them using measured DRAM bandwidth
utilisation.  The paper's critique (section 5.3): the bandwidth signal is
read per DRAM controller -- a myopic view -- and in constrained-bandwidth
many-core scenarios it frequently reads "underutilised", steering DSPatch
to the coverage bitmap and *adding* traffic exactly when traffic is the
problem.

This implementation keeps both the dual bitmaps and the per-channel
(myopic) utilisation check, and acts as an add-on candidate source plus a
mode-dependent filter over the underlying prefetcher's candidates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List

from repro.prefetch.base import PrefetchRequest

_LINE_SHIFT = 6
_PAGE_SHIFT = 12
_LINES_PER_PAGE = 1 << (_PAGE_SHIFT - _LINE_SHIFT)


class _PagePatterns:
    __slots__ = ("covp", "accp", "trained")

    def __init__(self) -> None:
        self.covp = 0
        self.accp = 0
        self.trained = False


#: Observations without a touch after which an active page is considered
#: finished and its footprint retires into the pattern store.
_IDLE_RETIRE = 256


class DspatchModulator:
    """Dual-bitmap spatial prefetching with bandwidth-mode switching."""

    MAX_PAGES = 128
    MAX_SIGNATURES = 2048
    #: Per-channel utilisation above which the accuracy bitmap is used.
    HIGH_BANDWIDTH = 0.75
    #: Candidate-confidence floor applied in accuracy mode.
    ACCURACY_CONFIDENCE_FLOOR = 0.60

    def __init__(self) -> None:
        #: page -> [trigger ip, footprint bitmap, last-touch tick]
        self._active: "OrderedDict[int, List[int]]" = OrderedDict()
        #: signature (trigger ip) -> patterns
        self._patterns: "OrderedDict[int, _PagePatterns]" = OrderedDict()
        self.coverage_mode_uses = 0
        self.accuracy_mode_uses = 0
        self._tick = 0

    # ------------------------------------------------------------------

    def observe(self, ip: int, address: int,
                utilization_of: Callable[[int], float],
                ) -> List[PrefetchRequest]:
        """Track the access; on a page trigger, emit bitmap prefetches.

        ``utilization_of(address)`` must return the utilisation of the DRAM
        channel that owns ``address`` -- the deliberately myopic signal.
        """
        page = address >> _PAGE_SHIFT
        offset = (address >> _LINE_SHIFT) & (_LINES_PER_PAGE - 1)
        self._tick += 1
        state = self._active.get(page)
        if state is not None:
            state[1] |= 1 << offset
            state[2] = self._tick
            self._active.move_to_end(page)
            return []
        if len(self._active) >= self.MAX_PAGES:
            _, old = self._active.popitem(last=False)
            self._retire(old[0], old[1])
        # Pages the stream has left retire too (a generation "ends" when
        # its page goes quiet, not only on buffer pressure).
        for stale_page in [p for p, s in self._active.items()
                           if self._tick - s[2] > _IDLE_RETIRE]:
            stale = self._active.pop(stale_page)
            self._retire(stale[0], stale[1])
        self._active[page] = [ip, 1 << offset, self._tick]
        patterns = self._patterns.get(ip)
        if patterns is None or not patterns.trained:
            return []
        self._patterns.move_to_end(ip)
        if utilization_of(address) >= self.HIGH_BANDWIDTH:
            bitmap = patterns.accp
            self.accuracy_mode_uses += 1
            confidence = 0.9
        else:
            bitmap = patterns.covp
            self.coverage_mode_uses += 1
            confidence = 0.5
        requests = []
        for line_offset in range(_LINES_PER_PAGE):
            if line_offset != offset and bitmap & (1 << line_offset):
                target = (page << _PAGE_SHIFT) | (line_offset << _LINE_SHIFT)
                requests.append(PrefetchRequest(
                    address=target, fill_level=2, trigger_ip=ip,
                    confidence=confidence))
        return requests

    def _retire(self, ip: int, footprint: int) -> None:
        patterns = self._patterns.get(ip)
        if patterns is None:
            if len(self._patterns) >= self.MAX_SIGNATURES:
                self._patterns.popitem(last=False)
            patterns = _PagePatterns()
            patterns.covp = footprint
            patterns.accp = footprint
            self._patterns[ip] = patterns
        else:
            patterns.covp |= footprint       # OR: coverage-biased.
            patterns.accp &= footprint       # AND: accuracy-biased.
            patterns.trained = True

    # ------------------------------------------------------------------

    def filter_candidates(self, candidates: List[PrefetchRequest],
                          utilization_of: Callable[[int], float],
                          ) -> List[PrefetchRequest]:
        """Mode-dependent treatment of the underlying prefetcher's output:
        accuracy mode drops low-confidence candidates; coverage mode keeps
        everything (and the bitmap candidates add more)."""
        kept: List[PrefetchRequest] = []
        for candidate in candidates:
            if utilization_of(candidate.address) >= self.HIGH_BANDWIDTH:
                if candidate.confidence >= self.ACCURACY_CONFIDENCE_FLOOR:
                    kept.append(candidate)
            else:
                kept.append(candidate)
        return kept
