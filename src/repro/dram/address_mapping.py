"""Physical address to DRAM coordinate mapping.

Cache lines interleave across channels at line granularity (maximising
channel-level parallelism, the common many-core choice), then across banks
at row granularity, so streaming accesses enjoy row-buffer hits while
spreading over every channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig


@dataclass(frozen=True)
class DramCoordinates:
    channel: int
    bank: int
    row: int


class AddressMapping:
    """line address -> (channel, bank, row)."""

    def __init__(self, config: DramConfig, line_size: int = 64) -> None:
        self.config = config
        self.lines_per_row = config.row_buffer_bytes // line_size
        if self.lines_per_row < 1:
            raise ValueError("row buffer smaller than a cache line")

    def locate(self, line: int) -> DramCoordinates:
        channels = self.config.channels
        channel = line % channels
        in_channel = line // channels
        row_chunk = in_channel // self.lines_per_row
        banks = self.config.banks_per_channel
        row = row_chunk // banks
        # XOR bank hashing (all row bits folded into the bank index in
        # 4-bit groups): spreads power-of-two-strided and base-aligned
        # streams across banks, as every modern controller does to avoid
        # bank camping.
        bank = row_chunk
        folded = row
        while folded:
            bank ^= folded
            folded >>= 4
        return DramCoordinates(channel=channel, bank=bank % banks, row=row)
