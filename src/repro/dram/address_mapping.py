"""Physical address to DRAM coordinate mapping.

Cache lines interleave across channels at line granularity (maximising
channel-level parallelism, the common many-core choice), then across banks
at row granularity, so streaming accesses enjoy row-buffer hits while
spreading over every channel.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config import DramConfig


class DramCoordinates(NamedTuple):
    # A NamedTuple, not a frozen dataclass: locate() runs once per DRAM
    # transaction and tuple construction skips the per-field
    # object.__setattr__ a frozen dataclass pays.
    channel: int
    bank: int
    row: int


class AddressMapping:
    """line address -> (channel, bank, row)."""

    def __init__(self, config: DramConfig, line_size: int = 64) -> None:
        self.config = config
        self.lines_per_row = config.row_buffer_bytes // line_size
        if self.lines_per_row < 1:
            raise ValueError("row buffer smaller than a cache line")
        # Geometry is fixed at construction; locate() reads locals, not
        # two levels of attribute indirection.
        self.channels = config.channels
        self.banks = config.banks_per_channel

    def locate(self, line: int) -> DramCoordinates:
        channels = self.channels
        channel = line % channels
        row_chunk = (line // channels) // self.lines_per_row
        row = row_chunk // self.banks
        # XOR bank hashing (all row bits folded into the bank index in
        # 4-bit groups): spreads power-of-two-strided and base-aligned
        # streams across banks, as every modern controller does to avoid
        # bank camping.
        bank = row_chunk
        folded = row
        while folded:
            bank ^= folded
            folded >>= 4
        return DramCoordinates(channel, bank % self.banks, row)
