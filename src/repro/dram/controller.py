"""DDR4 channel model with PADC-style prefetch-aware scheduling.

Each channel owns a set of banks (open-page row buffers with tRP/tRCD/CAS
timing) and a shared data bus whose burst occupancy caps bandwidth at one
64-byte line per ``burst_cycles`` -- the constraint the whole paper is
about.  The scheduler is FR-FCFS within a priority class:

* class 0: demand reads and criticality-flagged prefetches (CLIP);
* class 1: ordinary prefetch reads (only when ``prefetch_aware``, which is
  the baseline PADC behaviour from Table 3);
* writes drain in batches once the write queue passes its watermark
  (7/8ths full, reads prioritised over writes).

The model is event-driven with bounded lookahead: requests are issued while
the bus reservation horizon stays within a few bursts, letting bank
preparation overlap data transfers like a real pipelined controller.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.analysis.invariants import SimulationInvariantError
from repro.config import DramConfig
from repro.dram.address_mapping import AddressMapping


class DramRequest:
    """One read request (writes are tracked as bare line addresses)."""

    __slots__ = ("line", "bank", "row", "is_prefetch", "crit",
                 "enqueued_at", "callback", "high_priority")

    def __init__(self, line: int, bank: int, row: int, is_prefetch: bool,
                 crit: bool, enqueued_at: int,
                 callback: Callable[[int], None]) -> None:
        self.line = line
        self.bank = bank
        self.row = row
        self.is_prefetch = is_prefetch
        self.crit = crit
        self.enqueued_at = enqueued_at
        self.callback = callback
        #: Demand reads and criticality-flagged prefetches outrank plain
        #: prefetches under PADC scheduling (precomputed: hot path).
        self.high_priority = not is_prefetch or crit


class _Bank:
    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at = 0


class DramChannelStats:
    """Per-channel accounting."""

    def __init__(self, banks: int = 0) -> None:
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.busy_cycles = 0
        self.total_read_latency = 0
        self.prefetch_reads = 0
        #: ACT commands per bank (a row miss opens a row exactly once,
        #: so the list sums to ``row_misses``) -- the per-bank activate
        #: counts the DRAM power model consumes.
        self.bank_activates = [0] * banks

    @property
    def average_read_latency(self) -> float:
        if not self.reads:
            return 0.0
        return self.total_read_latency / self.reads

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)


class DramChannel:
    """One DDR4 channel: banks, a data bus, and the request scheduler."""

    #: Requests concurrently in flight per channel (bank-level parallelism
    #: cap; array latencies overlap, the data bus serialises transfers).
    MAX_IN_FLIGHT = 16

    def __init__(self, channel_id: int, config: DramConfig, engine) -> None:
        # Timing sanity once at construction: negative array timings or a
        # zero-cycle burst would silently break the tRP/tRCD/tCAS spacing
        # and bus-serialisation invariants the sanitizer checks per event.
        if config.burst_cycles < 1:
            raise SimulationInvariantError(
                f"burst_cycles must be >= 1, got {config.burst_cycles}")
        if min(config.trp_cycles, config.trcd_cycles,
               config.cas_cycles) < 0:
            raise SimulationInvariantError(
                "tRP/tRCD/tCAS timings must be non-negative")
        self.channel_id = channel_id
        self.config = config
        self.engine = engine
        self.banks = [_Bank() for _ in range(config.banks_per_channel)]
        self.read_queue: List[DramRequest] = []
        self.write_queue: List[DramRequest] = []
        self.bus_busy_until = 0
        self.in_flight = 0
        self.stats = DramChannelStats(banks=config.banks_per_channel)
        self._draining_writes = False
        self._writes_left_in_batch = config.write_drain_batch
        #: Write-drain trigger depth, fixed at construction (recomputing
        #: it per pick showed up in profiles).
        self._write_watermark = int(config.write_queue_entries
                                    * config.write_watermark)

    # ------------------------------------------------------------------

    def enqueue_read(self, request: DramRequest) -> None:
        self.read_queue.append(request)
        self._pump(self.engine.now)

    def enqueue_write(self, line: int, bank: int, row: int, now: int) -> None:
        request = DramRequest(line, bank, row, is_prefetch=False, crit=False,
                              enqueued_at=now, callback=_ignore_completion)
        self.write_queue.append(request)
        self._pump(now)

    # ------------------------------------------------------------------

    def _pump(self, now: int) -> None:
        while ((self.read_queue or self.write_queue)
               and self.in_flight < self.MAX_IN_FLIGHT):
            request = self._pick(now)
            if request is None:
                return
            self._service(request, now)

    def _pick(self, now: int) -> Optional[DramRequest]:
        config = self.config
        if self._draining_writes:
            request = self._pop_write(now)
            if request is not None:
                return request
            self._draining_writes = False
        if len(self.write_queue) >= self._write_watermark:
            self._draining_writes = True
            self._writes_left_in_batch = config.write_drain_batch
            request = self._pop_write(now)
            if request is not None:
                return request
        if self.read_queue:
            request = self._pop_read(now)
            if request is not None:
                return request
        if self.write_queue:
            # No serviceable reads: drain writes opportunistically.
            return self._pop_best(self.write_queue, None, now)
        return None

    def _pop_write(self, now: int) -> Optional[DramRequest]:
        if not self.write_queue:
            return None
        request = self._pop_best(self.write_queue, None, now)
        if request is None:
            return None
        self._writes_left_in_batch -= 1
        if self._writes_left_in_batch <= 0 or not self.write_queue:
            self._draining_writes = False
        return request

    def _pop_read(self, now: int) -> Optional[DramRequest]:
        if self.config.prefetch_aware:
            request = self._pop_best(self.read_queue, True, now)
            if request is not None:
                return request
        return self._pop_best(self.read_queue, None, now)

    def _pop_best(self, queue: List[DramRequest],
                  require_priority: Optional[bool],
                  now: int) -> Optional[DramRequest]:
        """FR-FCFS among *ready banks*: oldest row-hit first, else oldest.

        Requests whose bank is still busy are skipped so one hot bank never
        head-of-line-blocks the channel (each bank effectively has its own
        queue, as in a real controller).
        """
        best_index = -1
        best_hit = False
        horizon = now + self.config.burst_cycles
        banks = self.banks
        # Real schedulers only see the register file's worth of requests;
        # bounding the scan also keeps the pick O(queue capacity).
        window = self.config.read_queue_entries
        for index, request in enumerate(queue):
            if index >= window:
                break
            if require_priority and not request.high_priority:
                continue
            bank = banks[request.bank]
            if bank.ready_at > horizon:
                continue
            row_hit = bank.open_row == request.row
            if best_index == -1 or (row_hit and not best_hit):
                best_index = index
                best_hit = row_hit
                if row_hit:
                    break
        if best_index == -1:
            return None
        return queue.pop(best_index)

    def _service(self, request: DramRequest, now: int) -> None:
        config = self.config
        bank = self.banks[request.bank]
        start = max(now, bank.ready_at)
        if bank.open_row == request.row:
            # Column accesses to an open row pipeline at burst rate
            # (tCCD-class spacing); CAS latency overlaps across requests.
            array_latency = config.cas_cycles
            bank_busy = config.burst_cycles
            self.stats.row_hits += 1
        elif bank.open_row is None:
            array_latency = config.trcd_cycles + config.cas_cycles
            bank_busy = config.trcd_cycles + config.burst_cycles
            self.stats.row_misses += 1
            self.stats.bank_activates[request.bank] += 1
        else:
            array_latency = (config.trp_cycles + config.trcd_cycles
                             + config.cas_cycles)
            bank_busy = (config.trp_cycles + config.trcd_cycles
                         + config.burst_cycles)
            self.stats.row_misses += 1
            self.stats.bank_activates[request.bank] += 1
        data_ready = start + array_latency
        bus_start = max(data_ready, self.bus_busy_until)
        done = bus_start + config.burst_cycles
        bank.open_row = request.row
        bank.ready_at = start + bank_busy
        self.bus_busy_until = done
        self.stats.busy_cycles += config.burst_cycles
        self.in_flight += 1
        if request.callback is _ignore_completion:
            self.stats.writes += 1
            self.engine.schedule(done, self._finish, None, done)
        else:
            self.stats.reads += 1
            self.stats.total_read_latency += done - request.enqueued_at
            if request.is_prefetch:
                self.stats.prefetch_reads += 1
            self.engine.schedule(done, self._finish, request.callback, done)

    def _finish(self, callback: Optional[Callable[[int], None]],
                done: int) -> None:
        self.in_flight -= 1
        if callback is not None:
            callback(done)
        self._pump(self.engine.now)

    @property
    def queue_depth(self) -> int:
        return len(self.read_queue) + len(self.write_queue)


def _ignore_completion(done_cycle: int) -> None:
    """Sentinel callback marking write requests."""


class DramSystem:
    """All channels plus the address mapping."""

    def __init__(self, config: DramConfig, engine,
                 line_size: int = 64) -> None:
        self.config = config
        self.mapping = AddressMapping(config, line_size)
        self.channels = [DramChannel(i, config, engine)
                         for i in range(config.channels)]

    def read(self, line: int, now: int, callback: Callable[[int], None],
             is_prefetch: bool = False, crit: bool = False) -> None:
        where = self.mapping.locate(line)
        request = DramRequest(line, where.bank, where.row, is_prefetch, crit,
                              now, callback)
        self.channels[where.channel].enqueue_read(request)

    def write(self, line: int, now: int) -> None:
        where = self.mapping.locate(line)
        self.channels[where.channel].enqueue_write(
            line, where.bank, where.row, now)

    @property
    def total_reads(self) -> int:
        return sum(c.stats.reads for c in self.channels)

    @property
    def total_writes(self) -> int:
        return sum(c.stats.writes for c in self.channels)

    def average_read_latency(self) -> float:
        reads = self.total_reads
        if not reads:
            return 0.0
        total = sum(c.stats.total_read_latency for c in self.channels)
        return total / reads

    def utilization(self, elapsed_cycles: int) -> float:
        """Mean data-bus utilisation across channels (DSPatch's signal --
        though DSPatch famously reads it per controller, not globally)."""
        if not self.channels:
            return 0.0
        return sum(c.stats.utilization(elapsed_cycles)
                   for c in self.channels) / len(self.channels)
