"""DRAM substrate: DDR4 channel timing and PADC-style scheduling."""

from repro.dram.address_mapping import AddressMapping
from repro.dram.controller import DramChannel, DramRequest, DramSystem

__all__ = ["AddressMapping", "DramChannel", "DramRequest", "DramSystem"]
