"""Address-translation substrate: TLBs and page-walk latency."""

from repro.mmu.tlb import Mmu, Tlb, TlbStats

__all__ = ["Mmu", "Tlb", "TlbStats"]
