"""TLB hierarchy (Table 3, row "TLBs").

The baseline system carries 64-entry 4-way L1 I/D TLBs (1 cycle) and a
2048-entry 16-way shared STLB (8 cycles); ChampSim's "detailed memory
hierarchy support for address translation" is one of the paper's simulator
extensions.  Here the data-side hierarchy is modelled: a demand access pays

* nothing extra on a DTLB hit,
* the STLB latency on a DTLB miss that hits the STLB,
* the STLB latency plus a page-walk charge on a full miss.

Translation is identity (addresses are already core-private physical
frames); only the *latency* and reach effects matter to the paper's
phenomena.  Disabled by default at benchmark scale -- footprints are
engineered against cache reach, so enabling TLBs shifts absolute latency
without changing any figure's shape; turn it on via
``SystemConfig.tlb.enabled`` for full-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class TlbStats:
    accesses: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class Tlb:
    """A set-associative TLB over virtual page numbers (true-LRU)."""

    def __init__(self, entries: int, ways: int,
                 page_shift: int = 12) -> None:
        if entries < 1 or ways < 1 or entries % ways:
            raise ValueError("entries must be a positive multiple of ways")
        self.num_sets = entries // ways
        self.ways = ways
        self.page_shift = page_shift
        self._sets: List[Dict[int, int]] = [dict()
                                            for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = TlbStats()

    def lookup(self, address: int) -> bool:
        """True on a TLB hit; updates recency."""
        page = address >> self.page_shift
        bucket = self._sets[page % self.num_sets]
        self.stats.accesses += 1
        self._clock += 1
        if page in bucket:
            bucket[page] = self._clock
            self.stats.hits += 1
            return True
        return False

    def fill(self, address: int) -> None:
        page = address >> self.page_shift
        bucket = self._sets[page % self.num_sets]
        if page in bucket:
            return
        if len(bucket) >= self.ways:
            victim = min(bucket, key=bucket.get)
            del bucket[victim]
        self._clock += 1
        bucket[page] = self._clock

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)


class Mmu:
    """Per-core data-side translation: DTLB -> STLB -> page walk."""

    def __init__(self, dtlb_entries: int = 64, dtlb_ways: int = 4,
                 stlb_entries: int = 2048, stlb_ways: int = 16,
                 stlb_latency: int = 8, page_walk_latency: int = 100,
                 page_shift: int = 12) -> None:
        self.dtlb = Tlb(dtlb_entries, dtlb_ways, page_shift)
        self.stlb = Tlb(stlb_entries, stlb_ways, page_shift)
        self.stlb_latency = stlb_latency
        self.page_walk_latency = page_walk_latency
        self.page_walks = 0

    def translate(self, address: int) -> int:
        """Extra cycles this access pays for address translation."""
        if self.dtlb.lookup(address):
            return 0
        if self.stlb.lookup(address):
            self.dtlb.fill(address)
            return self.stlb_latency
        self.page_walks += 1
        self.stlb.fill(address)
        self.dtlb.fill(address)
        return self.stlb_latency + self.page_walk_latency
