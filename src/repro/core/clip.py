"""The CLIP controller: wiring of filter, predictor, tracker, histories.

One :class:`Clip` instance attaches to one core.  It observes:

* branch dispatches        -> global branch history;
* load responses           -> predictor training, criticality filter
                              population, criticality history, and the
                              accuracy/coverage bookkeeping behind
                              Figs. 13-15;
* L1D accesses and misses  -> utility-buffer CAM matching, exploration
                              windows, APC phase detection;
* prefetch candidates      -> the two-stage drop/issue decision
                              (``filter_request``), the paper's Fig. 8 flow.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import ClipConfig
from repro.core.criticality_filter import CriticalityFilter
from repro.core.criticality_predictor import CriticalityPredictor
from repro.core.history import ShiftRegister
from repro.core.phase import ApcPhaseDetector
from repro.core.signature import critical_signature
from repro.core.utility_buffer import UtilityBuffer
from repro.cpu.core_model import Core, RobEntry, ServiceLevel

_LINE_SHIFT = 6


class ClipStats:
    """Prediction-quality and filtering statistics for one core."""

    def __init__(self) -> None:
        self.prefetches_seen = 0
        self.prefetches_allowed = 0
        self.dropped_not_critical = 0
        self.dropped_low_accuracy = 0
        self.dropped_predictor = 0
        self.dropped_phase_pause = 0
        # Criticality prediction quality (measured on L1-miss loads).
        self.predicted_critical = 0
        self.predicted_critical_correct = 0
        self.actual_critical = 0
        self.covered_critical = 0
        self.windows = 0
        self.phase_changes = 0
        # Structure activity (energy-model inputs): every lookup/update
        # of the criticality filter, the critical-signature predictor,
        # and the utility-buffer CAM.
        self.filter_accesses = 0
        self.predictor_accesses = 0
        self.utility_cam_accesses = 0

    @property
    def prediction_accuracy(self) -> float:
        if not self.predicted_critical:
            return 0.0
        return self.predicted_critical_correct / self.predicted_critical

    @property
    def prediction_coverage(self) -> float:
        if not self.actual_critical:
            return 0.0
        return self.covered_critical / self.actual_critical

    @property
    def drop_rate(self) -> float:
        if not self.prefetches_seen:
            return 0.0
        return 1.0 - self.prefetches_allowed / self.prefetches_seen


class Clip:
    """Per-core CLIP instance."""

    def __init__(self, config: ClipConfig, core: Optional[Core] = None,
                 ) -> None:
        self.config = config
        self.filter = CriticalityFilter(
            sets=config.filter_sets, ways=config.filter_ways,
            tag_bits=config.ip_tag_bits,
            crit_count_bits=config.criticality_count_bits,
            hit_count_bits=config.hit_count_bits,
            issue_count_bits=config.issue_count_bits,
            crit_threshold=config.criticality_count_threshold,
            accuracy_threshold=config.accuracy_threshold)
        self.predictor = CriticalityPredictor(
            sets=config.predictor_sets, ways=config.predictor_ways,
            tag_bits=config.predictor_tag_bits,
            counter_bits=config.saturating_counter_bits)
        self.utility_buffer = UtilityBuffer(config.utility_buffer_entries)
        self.branch_history = ShiftRegister(config.branch_history_bits)
        self.criticality_history = ShiftRegister(
            config.criticality_history_bits)
        self.phase_detector = ApcPhaseDetector(
            history_windows=config.apc_history_windows,
            threshold=config.phase_change_threshold)
        # Config fields read on every load response / prefetch candidate,
        # hoisted once (attribute chains through ``config`` showed up in
        # profiles).
        self._index_by_page = config.index_by_page
        self._sig_use_address = config.signature_use_address
        self._sig_use_branch = config.signature_use_branch_history
        self._sig_use_crit = config.signature_use_criticality_history
        #: (key, 16KiB region) -> signature.  The signature is a pure
        #: function of those two plus the global histories, so the memo
        #: is cleared whenever either history shifts; a multi-candidate
        #: prefetch batch then hashes each trigger/region once.
        self._sig_cache: Dict[Tuple[int, int], int] = {}
        self.stats = ClipStats()
        self._window_misses = 0
        self._paused_for_window = False
        #: Dynamic CLIP (section 5.3): when the system reports ample
        #: bandwidth, filtering is bypassed.  The memory system installs
        #: ``bandwidth_probe`` (a zero-arg callable returning the current
        #: DRAM data-bus utilisation); it is polled at window boundaries.
        self.bandwidth_probe = None
        self._dynamic_bypassed = False
        #: per-IP (critical instances, non-critical L1-miss instances),
        #: for the static/dynamic critical IP census (Fig. 15).
        self.ip_census: Dict[int, list] = {}
        if core is not None:
            self.attach(core)

    # ------------------------------------------------------------------
    # Core-side events
    # ------------------------------------------------------------------

    def attach(self, core: Core) -> None:
        core.branch_hooks.append(self._on_branch)
        core.dispatch_hooks.append(self._on_load_dispatch)
        core.load_response_hooks.append(self._on_load_response)

    def _on_load_dispatch(self, core: Core, entry: RobEntry,
                          cycle: int) -> None:
        entry.history_snapshot = (self.branch_history.value,
                                  self.criticality_history.value)

    def _on_branch(self, core: Core, ip: int, taken: bool,
                   mispredicted: bool, cycle: int) -> None:
        self.branch_history.push(taken)
        self._sig_cache.clear()

    def _signature(self, ip: int, line: int,
                   histories: Optional[tuple] = None) -> int:
        if histories is None:
            histories = (self.branch_history.value,
                         self.criticality_history.value)
        return critical_signature(
            ip, line, histories[0], histories[1],
            self._sig_use_address, self._sig_use_branch,
            self._sig_use_crit)

    def _on_load_response(self, core: Core, entry: RobEntry, cycle: int,
                          rob_stalled: bool, self_stalled: bool) -> None:
        line = entry.address >> _LINE_SHIFT
        beyond_l1 = entry.service_level >= ServiceLevel.L2
        # Ground truth: this load itself blocked the ROB head.
        critical = self_stalled and beyond_l1
        key = (entry.address >> 12 if self._index_by_page else entry.ip)
        # Train with the histories captured at the load's dispatch: that is
        # the context a future prefetch trigger for the same code will see.
        signature = self._signature(key, line, entry.history_snapshot)
        # --- measurement (Figs. 13-15): what would CLIP have predicted? --
        if beyond_l1:
            predicted = self._predict_critical(key, signature)
            if predicted:
                self.stats.predicted_critical += 1
                if critical:
                    self.stats.predicted_critical_correct += 1
            if critical:
                self.stats.actual_critical += 1
                if predicted:
                    self.stats.covered_critical += 1
            census = self.ip_census.get(entry.ip)
            if census is None:
                census = [0, 0]
                self.ip_census[entry.ip] = census
            census[0 if critical else 1] += 1
        # --- training ----------------------------------------------------
        self.stats.predictor_accesses += 1
        self.predictor.train(signature, critical)
        # Filter insertion follows the paper's hardware flow: the global
        # ROB-stall flag checked on a beyond-L1 response (section 4.1).
        if beyond_l1 and (critical or rob_stalled):
            self.stats.filter_accesses += 1
            self.filter.record_critical(key)
        self.criticality_history.push(critical)
        self._sig_cache.clear()

    def _key(self, ip: int, address: int) -> int:
        """Tracking key: the trigger IP, or the 4 KiB page for the paper's
        non-IP-based L2 prefetcher variant (section 4.2)."""
        if self._index_by_page:
            return address >> 12
        return ip

    def _predict_critical(self, ip: int, signature: int) -> bool:
        self.stats.filter_accesses += 1
        entry = self.filter.get(ip)
        if entry is None or entry.crit_count < self.filter.effective_threshold:
            return False
        self.stats.predictor_accesses += 1
        prediction = self.predictor.predict(signature)
        return bool(prediction)

    # ------------------------------------------------------------------
    # Memory-side events
    # ------------------------------------------------------------------

    def on_l1d_access(self, line: int, cycle: int) -> None:
        """Every demand L1D access: APC count + utility CAM check."""
        self.phase_detector.note_access()
        self.stats.utility_cam_accesses += 1
        trigger_ip = self.utility_buffer.match(line)
        if trigger_ip is not None:
            self.stats.filter_accesses += 1
            self.filter.note_hit(trigger_ip)

    def on_l1d_miss(self, cycle: int) -> None:
        """Demand L1D miss: advances the exploration window."""
        self._window_misses += 1
        if self._window_misses >= self.config.exploration_window_misses:
            self._window_misses = 0
            self._end_window(cycle)

    def _end_window(self, cycle: int) -> None:
        self.stats.windows += 1
        self._paused_for_window = False
        if self.config.dynamic and self.bandwidth_probe is not None:
            utilization = self.bandwidth_probe()
            if self._dynamic_bypassed:
                if utilization >= self.config.dynamic_on_utilization:
                    self._dynamic_bypassed = False
            elif utilization <= self.config.dynamic_off_utilization:
                self._dynamic_bypassed = True
        phase_change = self.phase_detector.end_window(cycle)
        if phase_change:
            self.stats.phase_changes += 1
            self.filter.reset()
            self.predictor.reset()
            self.utility_buffer.clear()
            self._paused_for_window = True
        else:
            self.filter.end_window()

    # ------------------------------------------------------------------
    # The two-stage filtering decision (Fig. 8, steps 3-4)
    # ------------------------------------------------------------------

    def filter_request(self, trigger_ip: int, address: int,
                       cycle: int) -> Tuple[bool, bool]:
        """Decide one prefetch candidate; returns (allow, criticality flag).

        Drops when: prefetching is paused after a phase change; the trigger
        IP is not shortlisted as critical (stage I); the critical-signature
        predictor says non-critical or misses (stage I); or the IP's per-IP
        prefetch hit rate is below threshold (stage II).
        """
        config = self.config
        stats = self.stats
        stats.prefetches_seen += 1
        if config.dynamic and self._dynamic_bypassed:
            # Dynamic CLIP: ample bandwidth, let the prefetcher run free.
            stats.prefetches_allowed += 1
            return True, False
        if self._paused_for_window:
            stats.dropped_phase_pause += 1
            return False, False
        key = (address >> 12 if self._index_by_page else trigger_ip)
        filt = self.filter
        if config.use_criticality_filter:
            stats.filter_accesses += 1
            entry = filt.get(key)
            if entry is None or entry.crit_count < filt.effective_threshold:
                stats.dropped_not_critical += 1
                return False, False
            if config.use_accuracy_filter and not (
                    entry.is_crit_accurate
                    or (entry.exploring and entry.issue_count
                        < filt.EXPLORATION_PROBES)):
                stats.dropped_low_accuracy += 1
                return False, False
            line = address >> _LINE_SHIFT
            sig_key = (key, line >> 8)
            signature = self._sig_cache.get(sig_key)
            if signature is None:
                signature = critical_signature(
                    key, line, self.branch_history.value,
                    self.criticality_history.value,
                    self._sig_use_address, self._sig_use_branch,
                    self._sig_use_crit)
                self._sig_cache[sig_key] = signature
            stats.predictor_accesses += 1
            prediction = self.predictor.predict(signature)
            if not prediction:
                stats.dropped_predictor += 1
                return False, False
        elif config.use_accuracy_filter:
            stats.filter_accesses += 1
            entry = filt.get(key)
            if entry is not None and not (
                    entry.is_crit_accurate
                    or (entry.exploring and entry.issue_count
                        < self.filter.EXPLORATION_PROBES)):
                stats.dropped_low_accuracy += 1
                return False, False
        stats.prefetches_allowed += 1
        crit_flag = config.criticality_conscious_noc_dram
        return True, crit_flag

    def on_prefetch_issued(self, line: int, trigger_ip: int) -> None:
        """An allowed prefetch left for the hierarchy (Fig. 8 step 3)."""
        key = self._key(trigger_ip, line << _LINE_SHIFT)
        self.stats.utility_cam_accesses += 1
        self.utility_buffer.insert(line, key)
        self.stats.filter_accesses += 1
        self.filter.note_issue(key)

    # ------------------------------------------------------------------

    def critical_ip_census(self) -> Tuple[int, int]:
        """(static-critical, dynamic-critical) IP counts (Fig. 15).

        An IP is *critical* if at least ``criticality_count_threshold`` of
        its L1-miss instances stalled the ROB head; it is *static-critical*
        when at least 90% of those instances were critical and
        *dynamic-critical* otherwise.
        """
        static = 0
        dynamic = 0
        threshold = self.config.criticality_count_threshold
        for critical, non_critical in self.ip_census.values():
            if critical < threshold:
                continue
            total = critical + non_critical
            if critical >= 0.9 * total:
                static += 1
            else:
                dynamic += 1
        return static, dynamic
