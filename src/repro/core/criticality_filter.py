"""The criticality filter with its prefetch accuracy tracker (section 4.1).

A 32-set x 4-way structure holding the IPs that stalled the ROB head while
being serviced beyond L1.  Each entry carries (Table 2): a 6-bit IP tag, a
2-bit saturating criticality count, 6-bit prefetch hit and issue counters,
and the is-critical-and-accurate bit.  Victim selection is
least-frequently-used by criticality count.

Lifecycle of an IP:

1. inserted on its first stalling L1-miss response (criticality count 1);
2. once the count reaches the threshold (4), prefetching for the IP is
   *triggered* and the accuracy tracker starts measuring its per-IP hit
   rate via the utility buffer;
3. at every exploration-window boundary the is-critical-and-accurate bit is
   recomputed from the window's hit rate and criticality count, and the
   hit/issue counters are halved (hysteresis);
4. an IP that fails the accuracy test stops prefetching but periodically
   re-enters exploration (every ``REEXPLORE_WINDOWS`` windows) so a phase
   that turns an IP accurate can be discovered -- an implementation
   liveness choice the paper leaves implicit.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _saturate(value: int, bits: int) -> int:
    return min(value, (1 << bits) - 1)


class FilterEntry:
    """One tracked IP."""

    __slots__ = ("tag", "crit_count", "hit_count", "issue_count",
                 "is_crit_accurate", "exploring", "blocked_windows")

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.crit_count = 0
        self.hit_count = 0
        self.issue_count = 0
        self.is_crit_accurate = False
        self.exploring = False
        self.blocked_windows = 0

    def hit_rate(self) -> Optional[float]:
        if not self.issue_count:
            return None
        return self.hit_count / self.issue_count


class CriticalityFilter:
    """Set-associative IP filter + per-IP accuracy tracker."""

    REEXPLORE_WINDOWS = 4
    #: Prefetch issues an *exploring* (not yet certified) IP may trigger per
    #: window -- enough to estimate its per-IP hit rate without letting an
    #: inaccurate IP flood the constrained bus during exploration.
    EXPLORATION_PROBES = 16

    def __init__(self, sets: int = 32, ways: int = 4, tag_bits: int = 6,
                 crit_count_bits: int = 2, hit_count_bits: int = 6,
                 issue_count_bits: int = 6,
                 crit_threshold: int = 4,
                 accuracy_threshold: float = 0.90) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("filter geometry must be positive")
        self.num_sets = sets
        self.ways = ways
        self.tag_mask = (1 << tag_bits) - 1
        self.crit_count_bits = crit_count_bits
        self.hit_count_bits = hit_count_bits
        self.issue_count_bits = issue_count_bits
        self.crit_threshold = min(crit_threshold,
                                  (1 << crit_count_bits) - 1 + 1)
        #: Cached :meth:`_effective_threshold`: a pure function of the
        #: fixed geometry, read on every prefetch candidate.
        self.effective_threshold = min(self.crit_threshold,
                                       (1 << crit_count_bits) - 1)
        self.accuracy_threshold = accuracy_threshold
        self._sets: List[Dict[int, FilterEntry]] = [
            dict() for _ in range(sets)
        ]
        self.insertions = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def _locate(self, ip: int) -> tuple[int, int]:
        hashed = (ip >> 2) ^ (ip >> 13)
        return hashed % self.num_sets, (hashed // self.num_sets) & self.tag_mask

    def get(self, ip: int) -> Optional[FilterEntry]:
        set_index, tag = self._locate(ip)
        return self._sets[set_index].get(tag)

    def record_critical(self, ip: int) -> FilterEntry:
        """An instance of ``ip`` stalled the ROB head beyond L1."""
        set_index, tag = self._locate(ip)
        bucket = self._sets[set_index]
        entry = bucket.get(tag)
        if entry is None:
            if len(bucket) >= self.ways:
                # Least-frequently-used by criticality count (section 4.3).
                victim_tag = min(bucket,
                                 key=lambda t: bucket[t].crit_count)
                del bucket[victim_tag]
                self.evictions += 1
            entry = FilterEntry(tag)
            bucket[tag] = entry
            self.insertions += 1
        entry.crit_count = _saturate(entry.crit_count + 1,
                                     self.crit_count_bits)
        if entry.crit_count >= self._effective_threshold() \
                and not entry.is_crit_accurate and not entry.exploring:
            entry.exploring = True
        return entry

    def _effective_threshold(self) -> int:
        # A 2-bit counter saturates at 3; the paper's threshold of 4 is
        # reached by treating the saturated value as "threshold crossed".
        return self.effective_threshold

    # ------------------------------------------------------------------
    # Accuracy tracker
    # ------------------------------------------------------------------

    def note_issue(self, ip: int) -> None:
        entry = self.get(ip)
        if entry is None:
            return
        if entry.issue_count >= (1 << self.issue_count_bits) - 1:
            # Halve both counters so the ratio keeps moving instead of
            # pinning at 1.0 once the small counters saturate.
            entry.issue_count //= 2
            entry.hit_count //= 2
        entry.issue_count += 1

    def note_hit(self, ip: int) -> None:
        entry = self.get(ip)
        if entry is None:
            return
        entry.hit_count = _saturate(entry.hit_count + 1,
                                    self.hit_count_bits)

    def allows_prefetch(self, ip: int,
                        use_accuracy_filter: bool = True) -> bool:
        """Stage-gate: is prefetching currently enabled for this IP?"""
        entry = self.get(ip)
        if entry is None:
            return False
        if entry.crit_count < self._effective_threshold():
            return False
        if not use_accuracy_filter:
            return True
        if entry.is_crit_accurate:
            return True
        return entry.exploring and entry.issue_count < self.EXPLORATION_PROBES

    # ------------------------------------------------------------------

    def end_window(self) -> None:
        """Exploration-window boundary: recompute bits, halve counters."""
        threshold = self._effective_threshold()
        for bucket in self._sets:
            for entry in bucket.values():
                crit_ok = entry.crit_count >= threshold
                rate = entry.hit_rate()
                if rate is not None:
                    entry.is_crit_accurate = (
                        crit_ok and rate >= self.accuracy_threshold)
                    entry.exploring = False
                elif not entry.is_crit_accurate:
                    # Nothing issued this window; periodically re-explore.
                    if crit_ok:
                        entry.blocked_windows += 1
                        if entry.blocked_windows >= self.REEXPLORE_WINDOWS:
                            entry.blocked_windows = 0
                            entry.exploring = True
                # Hysteresis: keep half of the window's evidence.
                entry.hit_count //= 2
                entry.issue_count //= 2

    def reset(self) -> None:
        """Phase change: drop everything."""
        for bucket in self._sets:
            bucket.clear()

    def critical_accurate_ips(self) -> int:
        return sum(1 for bucket in self._sets
                   for entry in bucket.values() if entry.is_crit_accurate)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
