"""CLIP: the paper's contribution.

A two-stage critical-and-accurate load predictor that filters the prefetch
requests of an underlying prefetcher:

* Stage I (criticality): a criticality filter shortlists IPs that stall the
  ROB head while serviced beyond L1, and a critical-signature-indexed
  saturating-counter predictor tracks each load's *dynamic* criticality;
* Stage II (accuracy): a per-IP prefetch accuracy tracker (utility buffer +
  hit/issue counters) keeps only IPs the underlying prefetcher covers with
  >= 90% per-IP hit rate.

Surviving prefetches carry a criticality flag honoured by the NoC and DRAM
schedulers and fill directly to L1.
"""

from repro.core.clip import Clip, ClipStats
from repro.core.criticality_filter import CriticalityFilter, FilterEntry
from repro.core.criticality_predictor import CriticalityPredictor
from repro.core.history import ShiftRegister
from repro.core.phase import ApcPhaseDetector
from repro.core.signature import critical_signature
from repro.core.storage import storage_overhead, storage_table
from repro.core.utility_buffer import UtilityBuffer

__all__ = [
    "Clip", "ClipStats", "CriticalityFilter", "FilterEntry",
    "CriticalityPredictor", "ShiftRegister", "ApcPhaseDetector",
    "critical_signature", "UtilityBuffer", "storage_overhead",
    "storage_table",
]
