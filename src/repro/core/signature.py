"""The critical signature (paper section 4.2).

The signature is "a hashed bitwise XOR of an IP, virtual address, global
conditional branch history of the last 32 branches, and global criticality
history of the last 32 loads".  Folding address and IP before the XOR
scatters concurrent loads across predictor entries (section 4.3 discusses
why this keeps a 512-entry table sufficient for SPEC-class workloads).

The per-component toggles support the paper's design-choice ablation
("short histories ... the accuracy drops compared to a simple IP-based
prediction").
"""

from __future__ import annotations


def _fold(value: int, bits: int) -> int:
    """XOR-fold an arbitrary-width value down to ``bits`` bits."""
    mask = (1 << bits) - 1
    folded = 0
    value &= (1 << 64) - 1
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


def _mix(value: int) -> int:
    """Cheap avalanche mix (xorshift-multiply) over 32 bits."""
    value &= 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 0x7FEB352D) & 0xFFFFFFFF
    value ^= value >> 15
    value = (value * 0x846CA68B) & 0xFFFFFFFF
    value ^= value >> 16
    return value


def critical_signature(ip: int, line_address: int,
                       branch_history: int, criticality_history: int,
                       use_address: bool = True,
                       use_branch_history: bool = True,
                       use_criticality_history: bool = True,
                       width: int = 13,
                       address_granularity_shift: int = 8,
                       branch_history_bits: int = 12,
                       criticality_history_bits: int = 6) -> int:
    """Compute the critical signature as a ``width``-bit value.

    The signature must *generalise*: a prefetch targets an address that has
    usually never been demanded before, so a full-entropy hash of the line
    address would always miss the 512-entry predictor and every prefetch
    would be dropped.  The address therefore enters at page granularity
    (``address_granularity_shift`` line-address bits dropped -- 256 lines,
    16 KiB, per signature region) and the histories enter as short slices;
    this is the constructive aliasing the paper leans on when it argues 512
    entries suffice because same-loop loads correlate (section 4.3).  The
    signature width matches the predictor's index+tag space (128 sets x
    6-bit tag = 2^13) so every distinct signature is representable.
    """
    # The fold and mix loops are inlined: this runs once per L1-miss load
    # response *and* once per prefetch candidate, and the call overhead of
    # four _fold()s plus _mix() dominated the arithmetic in profiles.  The
    # arithmetic is exactly :func:`_fold` / :func:`_mix` (kept above both
    # as documentation and for direct testing).
    mask = (1 << width) - 1
    value = (ip >> 2) & 0xFFFFFFFFFFFFFFFF
    signature = 0
    while value:
        signature ^= value & mask
        value >>= width
    if use_address:
        value = (line_address >> address_granularity_shift) \
            & 0xFFFFFFFFFFFFFFFF
        while value:
            signature ^= value & mask
            value >>= width
    if use_branch_history:
        value = branch_history & ((1 << branch_history_bits) - 1)
        while value:
            signature ^= value & mask
            value >>= width
    if use_criticality_history:
        # Rotate criticality history so it lands on different bits than the
        # branch history instead of cancelling against it.
        value = (criticality_history
                 & ((1 << criticality_history_bits) - 1)) << 5
        while value:
            signature ^= value & mask
            value >>= width
    signature &= 0xFFFFFFFF
    signature ^= signature >> 16
    signature = (signature * 0x7FEB352D) & 0xFFFFFFFF
    signature ^= signature >> 15
    signature = (signature * 0x846CA68B) & 0xFFFFFFFF
    signature ^= signature >> 16
    return signature & mask
