"""Application phase-change detection via accesses per cycle (section 4.2).

CLIP monitors the L1D accesses-per-cycle (APC) of each exploration window,
keeps the average over the last 16 windows, and declares a phase change
when the current window's APC deviates from that average by more than 15%.
On a phase change CLIP resets its tables and pauses prefetching for one
window.  (The APC metric and this detection scheme follow Kalani & Panda's
ROBO work, which the paper cites.)
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class ApcPhaseDetector:
    """Sliding-average APC comparator."""

    def __init__(self, history_windows: int = 16,
                 threshold: float = 0.15) -> None:
        if history_windows < 1:
            raise ValueError("need at least one history window")
        if not 0 < threshold < 1:
            raise ValueError("threshold must be a fraction in (0, 1)")
        self.threshold = threshold
        self._history: Deque[float] = deque(maxlen=history_windows)
        self._accesses = 0
        self._window_start_cycle = 0
        self.phase_changes = 0

    def note_access(self) -> None:
        self._accesses += 1

    def end_window(self, cycle: int) -> bool:
        """Close the window at ``cycle``; returns True on a phase change."""
        elapsed = max(1, cycle - self._window_start_cycle)
        apc = self._accesses / elapsed
        self._accesses = 0
        self._window_start_cycle = cycle
        # Warm-up: with too few observed windows the average is noise, and
        # declaring phase changes from it would reset CLIP continually.
        min_history = max(2, self._history.maxlen // 2)
        if len(self._history) < min_history:
            self._history.append(apc)
            return False
        average = sum(self._history) / len(self._history)
        self._history.append(apc)
        if average <= 0:
            return False
        deviation = abs(apc - average) / average
        if deviation > self.threshold:
            self.phase_changes += 1
            self._history.clear()
            self._history.append(apc)
            return True
        return False
