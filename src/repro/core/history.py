"""Global history shift registers.

CLIP keeps two 32-bit global histories per core (Table 2): the outcomes of
the last 32 conditional branches and the criticality of the last 32 loads.
Both feed the critical signature (section 4.2).
"""

from __future__ import annotations


class ShiftRegister:
    """A fixed-width bit history; newest bit in the LSB."""

    __slots__ = ("bits", "_mask", "value")

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("history must be at least one bit wide")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.value = 0

    def push(self, bit: bool) -> None:
        self.value = ((self.value << 1) | int(bool(bit))) & self._mask

    def clear(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShiftRegister(bits={self.bits}, value={self.value:#x})"
