"""Storage-overhead accounting (Table 2).

Recomputes the paper's per-core storage budget from a :class:`ClipConfig`
and the ROB size, so sensitivity sweeps (Fig. 18) report their true cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import ClipConfig


@dataclass(frozen=True)
class StorageRow:
    structure: str
    description: str
    bits: int

    @property
    def bytes(self) -> float:
        return self.bits / 8


def storage_table(config: ClipConfig | None = None,
                  rob_entries: int = 512) -> List[StorageRow]:
    """Per-structure storage rows mirroring Table 2."""
    c = config or ClipConfig()
    rows = []
    filter_entries = c.filter_sets * c.filter_ways
    filter_entry_bits = (c.ip_tag_bits + c.criticality_count_bits
                         + c.hit_count_bits + c.issue_count_bits + 1)
    rows.append(StorageRow(
        "Criticality filter",
        f"{c.filter_sets}-set, {c.filter_ways}-way ({filter_entries}-entry);"
        f" {c.ip_tag_bits}-bit IP tag, {c.criticality_count_bits}-bit crit"
        f" count, {c.hit_count_bits}-bit hit count, {c.issue_count_bits}-bit"
        " prefetch count, is-critical-and-accurate bit",
        filter_entries * filter_entry_bits))
    predictor_entries = c.predictor_sets * c.predictor_ways
    predictor_entry_bits = (c.predictor_tag_bits
                            + c.saturating_counter_bits + 1)
    rows.append(StorageRow(
        "Criticality predictor",
        f"{c.predictor_sets} sets, {c.predictor_ways}-way"
        f" ({predictor_entries}-entry); {c.predictor_tag_bits}-bit tag,"
        f" {c.saturating_counter_bits}-bit saturating counter, NRU bit",
        predictor_entries * predictor_entry_bits))
    rows.append(StorageRow(
        "ROB extension",
        f"miss-level flag, 1 bit per entry ({rob_entries} entries)",
        rob_entries))
    rows.append(StorageRow("ROB stall flag", "1 bit", 1))
    utility_entry_bits = c.ip_tag_bits + 58
    rows.append(StorageRow(
        "Utility buffer",
        f"{c.utility_buffer_entries} entries; {c.ip_tag_bits}-bit IP tag,"
        " 58-bit line-aligned prefetch address",
        c.utility_buffer_entries * utility_entry_bits))
    rows.append(StorageRow(
        "Branch and criticality history",
        f"{c.branch_history_bits}-bit and"
        f" {c.criticality_history_bits}-bit shift registers",
        c.branch_history_bits + c.criticality_history_bits))
    rows.append(StorageRow("APC", "two 11-bit registers", 22))
    rows.append(StorageRow("Exploration window", "10-bit reset count", 10))
    return rows


def storage_overhead(config: ClipConfig | None = None,
                     rob_entries: int = 512) -> float:
    """Total CLIP storage in KiB per core (paper: 1.56 KB)."""
    total_bits = sum(row.bits for row in storage_table(config, rob_entries))
    return total_bits / 8 / 1024
