"""The criticality predictor (section 4.2, Fig. 7b).

A 128-set x 4-way table indexed by the critical signature.  Each entry
holds a 6-bit criticality tag, a k-bit saturating counter initialised to
its midpoint (2^(k-1)), and an NRU replacement bit.  The counter increments
on an L1 miss that stalls the ROB head and decrements on an L1 hit or a
non-stalling miss; the MSB is the prediction.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class _PredictorEntry:
    __slots__ = ("tag", "counter", "nru")

    def __init__(self, tag: int, counter: int) -> None:
        self.tag = tag
        self.counter = counter
        self.nru = False


class CriticalityPredictor:
    """Signature-indexed saturating-counter criticality predictor."""

    def __init__(self, sets: int = 128, ways: int = 4, tag_bits: int = 6,
                 counter_bits: int = 3) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("predictor geometry must be positive")
        if counter_bits < 1:
            raise ValueError("counter needs at least one bit")
        self.num_sets = sets
        self.ways = ways
        self.tag_mask = (1 << tag_bits) - 1
        self.counter_max = (1 << counter_bits) - 1
        self.counter_init = 1 << (counter_bits - 1)
        #: MSB set <=> counter >= this value.
        self.msb_threshold = 1 << (counter_bits - 1)
        self._sets: List[Dict[int, _PredictorEntry]] = [
            dict() for _ in range(sets)
        ]
        self.lookups = 0
        self.misses = 0

    def _locate(self, signature: int) -> tuple[int, int]:
        return (signature % self.num_sets,
                (signature // self.num_sets) & self.tag_mask)

    # ------------------------------------------------------------------

    def predict(self, signature: int) -> Optional[bool]:
        """MSB of the counter, or ``None`` on a table miss (drop)."""
        self.lookups += 1
        set_index, tag = self._locate(signature)
        entry = self._sets[set_index].get(tag)
        if entry is None:
            self.misses += 1
            return None
        entry.nru = True
        return entry.counter >= self.msb_threshold

    def train(self, signature: int, critical: bool) -> None:
        """Counter update from an observed load outcome."""
        set_index, tag = self._locate(signature)
        bucket = self._sets[set_index]
        entry = bucket.get(tag)
        if entry is None:
            if len(bucket) >= self.ways:
                victim = self._nru_victim(bucket)
                del bucket[victim]
            entry = _PredictorEntry(tag, self.counter_init)
            bucket[tag] = entry
        if critical:
            entry.counter = min(self.counter_max, entry.counter + 1)
        else:
            entry.counter = max(0, entry.counter - 1)
        entry.nru = True

    def _nru_victim(self, bucket: Dict[int, _PredictorEntry]) -> int:
        for tag, entry in bucket.items():
            if not entry.nru:
                return tag
        # Every way referenced: age them and evict the first.
        for entry in bucket.values():
            entry.nru = False
        return next(iter(bucket))

    def reset(self) -> None:
        for bucket in self._sets:
            bucket.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
