"""The utility buffer (paper sections 4.1 and 4.3).

A 64-entry circular CAM holding the most recent (prefetch line address,
trigger IP) pairs.  A demand access matching a stored prefetch address
proves that prefetch useful and credits the *trigger* IP's hit count in the
criticality filter.  Entries are counted at most once: a hit consumes the
entry, mirroring the one-hit-per-prefetch accounting of the accuracy
tracker.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class UtilityBuffer:
    """Circular content-addressable prefetch-address buffer."""

    def __init__(self, entries: int = 64) -> None:
        if entries < 1:
            raise ValueError("utility buffer needs at least one entry")
        self.capacity = entries
        self._cam: "OrderedDict[int, int]" = OrderedDict()
        self.insertions = 0
        self.hits = 0

    def insert(self, line: int, trigger_ip: int) -> None:
        """Record a freshly issued prefetch (evicting the oldest pair)."""
        self.insertions += 1
        if line in self._cam:
            self._cam.move_to_end(line)
            self._cam[line] = trigger_ip
            return
        if len(self._cam) >= self.capacity:
            self._cam.popitem(last=False)
        self._cam[line] = trigger_ip

    def match(self, line: int) -> Optional[int]:
        """CAM lookup by demand line; returns and consumes the trigger IP."""
        trigger_ip = self._cam.pop(line, None)
        if trigger_ip is not None:
            self.hits += 1
        return trigger_ip

    def clear(self) -> None:
        self._cam.clear()

    def __len__(self) -> int:
        return len(self._cam)
