"""Export experiment results to JSON and CSV.

The figure drivers return nested dictionaries; these helpers persist them
for downstream plotting (matplotlib, gnuplot, spreadsheets) without adding
any plotting dependency to the library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

PathLike = Union[str, Path]


def export_json(result: Dict, path: PathLike) -> None:
    """Write a driver's result dictionary as pretty-printed JSON."""
    Path(path).write_text(json.dumps(result, indent=2, sort_keys=True,
                                     default=_jsonable) + "\n")


def _jsonable(value):
    """JSON fallback for dataclass-like result objects."""
    if hasattr(value, "__dict__"):
        return vars(value)
    raise TypeError(f"cannot serialise {type(value).__name__}")


def export_series_csv(series: Dict[str, Sequence[float]],
                      axis: Sequence, path: PathLike,
                      axis_name: str = "channels") -> None:
    """Write a channels-sweep result (``{series: [values]}``) as CSV.

    One row per axis point, one column per series -- the layout the paper's
    grouped bar charts use.
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(axis):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(axis)} axis values")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([axis_name] + names)
        for index, axis_value in enumerate(axis):
            writer.writerow([axis_value]
                            + [series[name][index] for name in names])


def export_per_mix_csv(per_mix: Dict[str, Dict], path: PathLike,
                       columns: Sequence[str] | None = None) -> None:
    """Write a per-mix result (``{mix: {metric: value}}``) as CSV."""
    if not per_mix:
        raise ValueError("nothing to export")
    rows: List[Dict] = []
    for mix, metrics in per_mix.items():
        if not isinstance(metrics, dict):
            metrics = {"value": metrics}
        rows.append({"mix": mix, **metrics})
    if columns is None:
        columns = [key for key in rows[0] if key != "mix"
                   and not hasattr(rows[0][key], "__dict__")]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["mix"] + list(columns))
        for row in rows:
            writer.writerow([row["mix"]] + [row.get(c, "") for c in columns])


def load_json(path: PathLike) -> Dict:
    """Read back a previously exported JSON result."""
    return json.loads(Path(path).read_text())
