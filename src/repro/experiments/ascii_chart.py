"""Terminal bar charts for experiment output.

The paper's figures are bar charts; these helpers render the same series as
unicode bars so `python -m repro figure fig1` visually resembles Fig. 1
without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """Render ``value`` as a bar of at most ``width`` character cells."""
    if scale <= 0:
        return ""
    cells = max(0.0, value / scale) * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))]
    return ("█" * full + partial).rstrip()[:width]


def bar_chart(values: Dict[str, float], title: str = "",
              width: int = 48, reference: Optional[float] = None) -> str:
    """One bar per labelled value; ``reference`` draws a marker column
    (e.g. 1.0 for normalized speedups)."""
    if not values:
        return ""
    label_width = max(len(label) for label in values)
    peak = max(list(values.values())
               + ([reference] if reference is not None else []))
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = _bar(value, peak, width)
        if reference is not None and peak > 0:
            marker = min(width - 1, int(min(1.0, reference / peak) * width))
            padded = list(bar.ljust(width))
            if 0 <= marker < width and padded[marker] == " ":
                padded[marker] = "|"
            bar = "".join(padded).rstrip()
        lines.append(f"{label.ljust(label_width)}  {value:7.3f}  {bar}")
    return "\n".join(lines)


def grouped_chart(series: Dict[str, Sequence[float]],
                  group_labels: Sequence[str], title: str = "",
                  width: int = 40,
                  reference: Optional[float] = None) -> str:
    """Grouped bars: one group per entry of ``group_labels`` (e.g. one per
    channel count), one bar per series (e.g. one per prefetcher)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, group in enumerate(group_labels):
        lines.append(f"[{group}]")
        group_values = {name: curve[index] for name, curve in series.items()}
        lines.append(bar_chart(group_values, width=width,
                               reference=reference))
    return "\n".join(lines)
