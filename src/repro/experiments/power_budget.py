"""Power-budget sweep: best performance under a fixed package budget.

The paper's pitch is that criticality-filtered prefetching buys
performance *without* spending DRAM bandwidth -- and bandwidth is energy.
This driver turns that into an operating-point search: sweep DVFS
frequency and core mix (symmetric big cores vs a big/little split) for
Berti+CLIP, compute each point's mean package power
(:func:`repro.energy.package_power_w`), and report the
best-performing point that fits under a fixed package budget.

Speedups across frequencies are not comparable as raw IPC ratios (IPC is
per *core* cycle and the core clock changes), so every point is scored by
its *frequency-adjusted* weighted speedup against one fixed reference:
the symmetric no-prefetching system at the base 4 GHz clock.  Per core,

    speedup_i = (ipc_i * f) / (ipc_ref_i * f_ref)

which is the ratio of instruction *rates* (instructions per second) and
therefore frequency-safe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy import BASE_FREQUENCY_GHZ, package_power_w
from repro.experiments.report import print_figure
from repro.experiments.runner import ExperimentRunner
from repro.experiments.statistics import arithmetic_mean
from repro.experiments.sweep import RunSpec, Scheme
from repro.sim.stats import SimulationResult

#: DVFS operating points swept (GHz); the last is the Table-3 reference.
FREQUENCIES_GHZ: Tuple[float, ...] = (3.0, 3.5, 4.0)

#: Default package budget in watts at benchmark scale (8 cores at 2 W
#: each leaves no uncore headroom, so the budget forces a trade-off).
DEFAULT_BUDGET_W = 14.0


def frequency_adjusted_speedup(result: SimulationResult,
                               reference: SimulationResult,
                               frequency_ghz: float,
                               reference_ghz: float) -> float:
    """Weighted speedup by instruction *rate*, valid across frequencies."""
    if len(result.cores) != len(reference.cores):
        raise ValueError("core counts differ between result and reference")
    if not result.cores:
        raise ValueError("empty results")
    total = 0.0
    for mine, theirs in zip(result.cores, reference.cores):
        if theirs.ipc <= 0:
            raise ValueError(
                f"reference core {theirs.core_id} has zero IPC")
        total += (mine.ipc * frequency_ghz) / (theirs.ipc * reference_ghz)
    return total / len(result.cores)


def _variants(num_cores: int) -> Dict[str, Optional[int]]:
    """Core-mix variants: symmetric, and a half-big/half-little split."""
    return {"symmetric": None, "big.little": num_cores // 2}


def power_budget_study(runner: Optional[ExperimentRunner] = None,
                       budget_w: float = DEFAULT_BUDGET_W,
                       frequencies: Sequence[float] = FREQUENCIES_GHZ,
                       sample: int = 3,
                       quiet: bool = False) -> Dict:
    """Sweep (frequency x core mix) for Berti+CLIP under a power budget.

    Averages package power, energy, EDP, and frequency-adjusted weighted
    speedup over ``sample`` homogeneous mixes at the constrained channel
    count, then picks the fastest point whose mean package power fits
    under ``budget_w``.  Returns the full grid plus the winner.
    """
    runner = runner if runner is not None else ExperimentRunner()
    workloads = runner.scale.sample_homogeneous()[:sample]
    channels = runner.scale.constrained_channels
    num_cores = runner.scale.num_cores
    variants = _variants(num_cores)

    reference = Scheme()  # symmetric, no prefetching, base clock
    grid: Dict[Tuple[str, float], Scheme] = {
        (variant, freq): Scheme(
            l1="berti", clip=True, big_cores=big_cores,
            frequency_ghz=None if freq == BASE_FREQUENCY_GHZ else freq)
        for variant, big_cores in variants.items()
        for freq in frequencies
    }

    # One batched sweep: every grid point on every mix, plus the shared
    # reference points, so jobs>1 fans out and warm reruns are free.
    specs: List[RunSpec] = []
    for workload in workloads:
        specs.append(runner.spec_homogeneous(reference, workload, channels))
        for scheme in grid.values():
            specs.append(runner.spec_homogeneous(scheme, workload,
                                                 channels))
    runner.run_sweep(specs)

    out: Dict[Tuple[str, float], Dict[str, float]] = {}
    for (variant, freq), scheme in grid.items():
        config = scheme.build_config(channels, num_cores,
                                     runner.scale.sim_instructions)
        powers, energies, edps, speedups = [], [], [], []
        for workload in workloads:
            result = runner.run(
                runner.spec_homogeneous(scheme, workload, channels))
            ref = runner.run(
                runner.spec_homogeneous(reference, workload, channels))
            powers.append(package_power_w(result, config))
            energies.append(result.energy_mj)
            edps.append(result.edp_mj_s)
            speedups.append(frequency_adjusted_speedup(
                result, ref, freq, BASE_FREQUENCY_GHZ))
        out[(variant, freq)] = {
            "power_w": arithmetic_mean(powers),
            "energy_mj": arithmetic_mean(energies),
            "edp_mj_s": arithmetic_mean(edps),
            "speedup": arithmetic_mean(speedups),
        }

    feasible = {point: row for point, row in out.items()
                if row["power_w"] <= budget_w}
    best = (max(feasible, key=lambda point: feasible[point]["speedup"])
            if feasible else None)

    if not quiet:
        rows = []
        for (variant, freq), row in sorted(out.items()):
            rows.append([variant, freq, row["power_w"], row["energy_mj"],
                         row["edp_mj_s"], row["speedup"],
                         "yes" if row["power_w"] <= budget_w else "no"])
        print_figure(
            f"Power budget: berti+clip under {budget_w:g} W "
            f"(vs none@{BASE_FREQUENCY_GHZ:g} GHz)",
            ["mix", "GHz", "power W", "energy mJ", "EDP mJ.s",
             "speedup", "fits"],
            rows)
        if best is not None:
            variant, freq = best
            print(f"best under budget: {variant} @ {freq:g} GHz "
                  f"(speedup {feasible[best]['speedup']:.3f})")
        else:
            print("no operating point fits under the budget")

    return {
        "budget_w": budget_w,
        "grid": {f"{variant}@{freq:g}GHz": row
                 for (variant, freq), row in out.items()},
        "best": (f"{best[0]}@{best[1]:g}GHz" if best else None),
    }


__all__ = ["DEFAULT_BUDGET_W", "FREQUENCIES_GHZ",
           "frequency_adjusted_speedup", "power_budget_study"]
