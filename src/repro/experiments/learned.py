"""Head-to-head figure: CLIP vs learned selection vs learned filtering.

The ROADMAP's learned-scheme-family question, answered at the paper's
bandwidth-constrained operating point: does a contextual-bandit
prefetcher *selector* (arxiv 2307.08635 idiom) or a hashed-perceptron
prefetch *filter* (arxiv 2403.15181 / PPF idiom) recover the trade
CLIP's hand-built criticality filter makes -- performance without
spending saturated DRAM bandwidth?

Every scheme is scored by weighted speedup against the shared
no-prefetching baseline on each mix, at the scaled constrained channel
count, so the comparison isolates the control policy: the bandit picks
*which* prefetcher runs, the perceptron and CLIP pick *which
candidates* an always-on Berti may issue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.report import print_figure
from repro.experiments.runner import ExperimentRunner
from repro.experiments.statistics import geometric_mean
from repro.experiments.sweep import RunSpec, Scheme
from repro.sim.stats import weighted_speedup

#: The head-to-head contenders: unfiltered Berti as the spend-everything
#: reference, CLIP's hand-built filter, bandit-learned selection, and
#: perceptron-learned filtering.
LEARNED_SCHEMES = ("berti", "berti+clip", "bandit", "berti+perceptron")


def learned_study(runner: Optional[ExperimentRunner] = None,
                  schemes: Sequence[str] = LEARNED_SCHEMES,
                  sample: int = 3,
                  quiet: bool = False) -> Dict:
    """Compare static and learned prefetch control under constrained
    bandwidth across ``sample`` homogeneous workload mixes.

    Returns per-scheme per-mix weighted speedups, geomeans, and
    per-scheme prefetch traffic (mean issued / filter-dropped per core),
    so the table shows not just who wins but how much bandwidth each
    policy chose to spend.
    """
    runner = runner if runner is not None else ExperimentRunner()
    workloads = runner.scale.sample_homogeneous()[:sample]
    channels = runner.scale.constrained_channels
    parsed = [Scheme.parse(name) for name in schemes]
    baseline = Scheme()

    # One batched sweep over every (scheme x mix) plus the shared
    # baselines: jobs>1 fans out, warm reruns are pure cache hits.
    specs: List[RunSpec] = []
    for workload in workloads:
        specs.append(runner.spec_homogeneous(baseline, workload, channels))
        for scheme in parsed:
            specs.append(runner.spec_homogeneous(scheme, workload,
                                                 channels))
    runner.run_sweep(specs)

    speedups: Dict[str, Dict[str, float]] = {}
    traffic: Dict[str, Dict[str, float]] = {}
    for name, scheme in zip(schemes, parsed):
        per_mix: Dict[str, float] = {}
        issued = dropped = cores = 0
        for workload in workloads:
            result = runner.run(
                runner.spec_homogeneous(scheme, workload, channels))
            ref = runner.run(
                runner.spec_homogeneous(baseline, workload, channels))
            per_mix[workload] = weighted_speedup(result, ref)
            for group, values in result.counters.items():
                if group.endswith(".chain"):
                    issued += values["pf_issued"]
                    dropped += values["pf_dropped_filter"]
                    cores += 1
        per_mix["geomean"] = geometric_mean(
            [per_mix[workload] for workload in workloads])
        speedups[name] = per_mix
        traffic[name] = {
            "issued_per_core": issued / max(1, cores),
            "dropped_per_core": dropped / max(1, cores),
        }

    if not quiet:
        rows = []
        for name in schemes:
            rows.append([name]
                        + [speedups[name][workload]
                           for workload in workloads]
                        + [speedups[name]["geomean"],
                           traffic[name]["issued_per_core"],
                           traffic[name]["dropped_per_core"]])
        print_figure(
            f"Learned prefetch control vs CLIP "
            f"({channels} channel(s), weighted speedup vs none)",
            ["scheme"] + list(workloads)
            + ["geomean", "pf/core", "dropped/core"],
            rows)
        best = max(schemes, key=lambda name: speedups[name]["geomean"])
        print(f"best geomean: {best} "
              f"({speedups[best]['geomean']:.3f})")

    return {
        "channels": channels,
        "workloads": list(workloads),
        "speedups": speedups,
        "traffic": traffic,
    }


__all__ = ["LEARNED_SCHEMES", "learned_study"]
