"""Shared experiment runner built on the typed sweep layer.

Most figures compare several schemes against the *same* no-prefetching
baseline on the *same* workload mixes.  The runner canonicalises every
request into a frozen :class:`~repro.experiments.sweep.RunSpec`, memoises
results per spec within the process, and — when constructed with a
:class:`~repro.experiments.sweep.ResultStore` — persists them on disk so
warm reruns of any figure are free.  Batched requests
(:meth:`ExperimentRunner.run_sweep`) fan out across processes when the
runner was constructed with ``jobs > 1``.

The legacy calling convention (scheme *strings* plus ``**overrides``
kwargs) was removed after its deprecation cycle: passing a string now
raises ``TypeError`` pointing at :meth:`Scheme.parse` and the
:mod:`repro.api` facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.config import SystemConfig
from repro.experiments.sweep import (ResultStore, RunSpec, Scheme, Sweep,
                                     run_sweep)
from repro.sim.stats import SimulationResult, weighted_speedup
from repro.trace.mixes import heterogeneous_mixes, homogeneous_mix
from repro.trace.workloads import (CLOUDSUITE_WORKLOADS, CVP_WORKLOADS,
                                   SPEC_HOMOGENEOUS_MIXES)

SchemeLike = Union[Scheme, str]


@dataclass(frozen=True)
class BenchScale:
    """How far the experiments are scaled down from the paper's setup.

    The paper simulates 64 cores with {4..64} DDR4 channels for 200M
    instructions per core.  The default benchmark scale runs 8 cores, so
    one scaled channel carries the paper's 8-cores-per-channel pressure
    (the constrained operating point), and 16 channels the paper's
    unconstrained one.
    """

    num_cores: int = 8
    sim_instructions: int = 10_000
    #: Scaled channel counts standing in for the paper's {4, 8, 16, 32, 64}.
    channel_sweep: Tuple[int, ...] = (1, 2, 4, 8, 16)
    #: The paper's 8-channel headline operating point, scaled.
    constrained_channels: int = 1
    #: Number of homogeneous mixes sampled for averaged figures.
    homogeneous_sample: int = 9
    #: Number of heterogeneous mixes (paper: 200).
    heterogeneous_mixes: int = 6

    def sample_homogeneous(self) -> List[str]:
        step = max(1, len(SPEC_HOMOGENEOUS_MIXES) // self.homogeneous_sample)
        return SPEC_HOMOGENEOUS_MIXES[::step][:self.homogeneous_sample]


#: Legacy scheme-name -> recipe mapping, kept importable for callers that
#: enumerate the comparison space.  New code should construct
#: :class:`~repro.experiments.sweep.Scheme` values (or ``Scheme.parse``
#: these names) instead.
SCHEMES = {
    "none": {},
    "berti": {"l1": "berti"},
    "ipcp": {"l1": "ipcp"},
    "bingo": {"l2": "bingo"},
    "spp_ppf": {"l2": "spp_ppf"},
    "stride": {"l1": "stride"},
    "streamer": {"l1": "streamer"},
    "berti+clip": {"l1": "berti", "clip": True},
    "ipcp+clip": {"l1": "ipcp", "clip": True},
    "bingo+clip": {"l2": "bingo", "clip": True},
    "spp_ppf+clip": {"l2": "spp_ppf", "clip": True},
    "berti+hermes": {"l1": "berti", "hermes": True},
    "berti+dspatch": {"l1": "berti", "dspatch": True},
}


class ExperimentRunner:
    """Canonicalises experiment requests into specs and caches results."""

    def __init__(self, scale: Optional[BenchScale] = None,
                 store: Optional[ResultStore] = None,
                 jobs: int = 1, backend: Optional[str] = None) -> None:
        self.scale = scale or BenchScale()
        self.store = store
        self.jobs = jobs
        #: Simulation backend fresh points run under ("event"/"batch";
        #: ``None`` defers to config default + ``REPRO_BACKEND``).
        #: Results are bit-identical either way, so memo/disk caches are
        #: shared across backends.
        self.backend = backend
        self._memo: Dict[RunSpec, SimulationResult] = {}
        #: Number of simulations actually executed (memo and disk-cache
        #: hits do not count).
        self.runs = 0

    # ------------------------------------------------------------------
    # Spec construction
    # ------------------------------------------------------------------

    def coerce_scheme(self, scheme: SchemeLike, overrides: Mapping,
                      ) -> Scheme:
        """Accept a typed :class:`Scheme`; reject the removed string form."""
        if isinstance(scheme, Scheme):
            if overrides:
                raise TypeError(
                    "**overrides cannot be combined with a typed Scheme; "
                    "use dataclasses.replace on the scheme instead")
            return scheme
        raise TypeError(
            "string schemes and **overrides were removed (deprecated in "
            "the sweep-API redesign): pass a typed "
            "repro.experiments.sweep.Scheme -- e.g. "
            f"Scheme.parse({scheme!r}) -- or use the repro.api facade, "
            "whose simulate()/sweep() accept scheme names directly; see "
            "docs/api.md")

    def spec(self, scheme: SchemeLike, mix: Sequence[str], channels: int,
             **overrides) -> RunSpec:
        """The canonical :class:`RunSpec` for one request at this scale."""
        spec_scheme = self.coerce_scheme(scheme, overrides)
        return RunSpec(scheme=spec_scheme, mix=tuple(mix),
                       channels=channels,
                       num_cores=self.scale.num_cores,
                       sim_instructions=self.scale.sim_instructions)

    def spec_homogeneous(self, scheme: SchemeLike, workload: str,
                         channels: int, **overrides) -> RunSpec:
        spec_scheme = self.coerce_scheme(scheme, overrides)
        cores = spec_scheme.num_cores or self.scale.num_cores
        return self.spec(spec_scheme, homogeneous_mix(workload, cores),
                         channels)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, spec: RunSpec) -> SimulationResult:
        """Run (or recall) one spec."""
        return self.run_sweep([spec])[spec]

    def run_sweep(self, sweep: Iterable[RunSpec],
                  ) -> Dict[RunSpec, SimulationResult]:
        """Execute a batch of independent specs.

        Points already memoised in-process are free; the rest go through
        :func:`repro.experiments.sweep.run_sweep`, which consults the
        disk store and fans true misses across ``self.jobs`` processes.
        """
        outcome = run_sweep(sweep, jobs=self.jobs, store=self.store,
                            known=self._memo, backend=self.backend)
        self._memo.update(outcome.results)
        self.runs += outcome.simulated
        return outcome.results

    # ------------------------------------------------------------------
    # Legacy surface (thin shims over the spec layer)
    # ------------------------------------------------------------------

    def config_for(self, scheme: SchemeLike, channels: int,
                   **overrides) -> SystemConfig:
        spec_scheme = self.coerce_scheme(scheme, overrides)
        return spec_scheme.build_config(channels, self.scale.num_cores,
                                        self.scale.sim_instructions)

    def run_mix(self, scheme: SchemeLike, mix: Sequence[str],
                channels: int, **overrides) -> SimulationResult:
        return self.run(self.spec(scheme, mix, channels, **overrides))

    def run_homogeneous(self, scheme: SchemeLike, workload: str,
                        channels: int, **overrides) -> SimulationResult:
        return self.run(self.spec_homogeneous(scheme, workload, channels,
                                              **overrides))

    # ------------------------------------------------------------------

    def speedup_homogeneous(self, scheme: SchemeLike, workload: str,
                            channels: int, **overrides) -> float:
        """Weighted speedup vs no-prefetching at the same channel count."""
        spec_scheme = self.coerce_scheme(scheme, overrides)
        target = self.spec_homogeneous(spec_scheme, workload, channels)
        base = self.spec_homogeneous(spec_scheme.baseline(), workload,
                                     channels)
        results = self.run_sweep([target, base])
        return weighted_speedup(results[target], results[base])

    def speedup_mix(self, scheme: SchemeLike, mix: Sequence[str],
                    channels: int, **overrides) -> float:
        spec_scheme = self.coerce_scheme(scheme, overrides)
        target = self.spec(spec_scheme, mix, channels)
        base = self.spec(spec_scheme.baseline(), mix, channels)
        results = self.run_sweep([target, base])
        return weighted_speedup(results[target], results[base])

    # ------------------------------------------------------------------

    def heterogeneous(self, count: Optional[int] = None) -> List[List[str]]:
        return heterogeneous_mixes(count or self.scale.heterogeneous_mixes,
                                   self.scale.num_cores)

    def cloud_workloads(self) -> List[str]:
        return CLOUDSUITE_WORKLOADS + CVP_WORKLOADS


__all__ = ["BenchScale", "ExperimentRunner", "SCHEMES", "Scheme",
           "RunSpec", "Sweep", "ResultStore"]
