"""Shared experiment runner with result caching.

Most figures compare several schemes against the *same* no-prefetching
baseline on the *same* workload mixes, so the runner memoises simulation
results by (scheme, mix, scale) within the process; a full figure sweep
reuses every baseline run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig, scaled_config
from repro.sim.stats import SimulationResult, weighted_speedup
from repro.sim.system import run_system
from repro.trace.mixes import heterogeneous_mixes, homogeneous_mix
from repro.trace.workloads import (CLOUDSUITE_WORKLOADS, CVP_WORKLOADS,
                                   SPEC_HOMOGENEOUS_MIXES)


@dataclass(frozen=True)
class BenchScale:
    """How far the experiments are scaled down from the paper's setup.

    The paper simulates 64 cores with {4..64} DDR4 channels for 200M
    instructions per core.  The default benchmark scale runs 8 cores, so
    one scaled channel carries the paper's 8-cores-per-channel pressure
    (the constrained operating point), and 16 channels the paper's
    unconstrained one.
    """

    num_cores: int = 8
    sim_instructions: int = 10_000
    #: Scaled channel counts standing in for the paper's {4, 8, 16, 32, 64}.
    channel_sweep: Tuple[int, ...] = (1, 2, 4, 8, 16)
    #: The paper's 8-channel headline operating point, scaled.
    constrained_channels: int = 1
    #: Number of homogeneous mixes sampled for averaged figures.
    homogeneous_sample: int = 9
    #: Number of heterogeneous mixes (paper: 200).
    heterogeneous_mixes: int = 6

    def sample_homogeneous(self) -> List[str]:
        step = max(1, len(SPEC_HOMOGENEOUS_MIXES) // self.homogeneous_sample)
        return SPEC_HOMOGENEOUS_MIXES[::step][:self.homogeneous_sample]


#: Scheme name -> config mutations understood by :meth:`ExperimentRunner`.
SCHEMES = {
    "none": {},
    "berti": {"l1": "berti"},
    "ipcp": {"l1": "ipcp"},
    "bingo": {"l2": "bingo"},
    "spp_ppf": {"l2": "spp_ppf"},
    "stride": {"l1": "stride"},
    "streamer": {"l1": "streamer"},
    "berti+clip": {"l1": "berti", "clip": True},
    "ipcp+clip": {"l1": "ipcp", "clip": True},
    "bingo+clip": {"l2": "bingo", "clip": True},
    "spp_ppf+clip": {"l2": "spp_ppf", "clip": True},
    "berti+hermes": {"l1": "berti", "hermes": True},
    "berti+dspatch": {"l1": "berti", "dspatch": True},
}


class ExperimentRunner:
    """Builds configs from scheme names and memoises simulation results."""

    def __init__(self, scale: Optional[BenchScale] = None) -> None:
        self.scale = scale or BenchScale()
        self._cache: Dict[Tuple, SimulationResult] = {}
        self.runs = 0

    # ------------------------------------------------------------------

    def config_for(self, scheme: str, channels: int,
                   **overrides) -> SystemConfig:
        try:
            recipe = dict(SCHEMES[scheme])
        except KeyError:
            raise ValueError(f"unknown scheme {scheme!r}; "
                             f"choose from {sorted(SCHEMES)}") from None
        recipe.update(overrides)
        config = scaled_config(
            num_cores=recipe.pop("num_cores", self.scale.num_cores),
            channels=channels,
            sim_instructions=recipe.pop("sim_instructions",
                                        self.scale.sim_instructions))
        if "l1" in recipe:
            config.l1_prefetcher = dataclasses.replace(
                config.l1_prefetcher, name=recipe.pop("l1"))
        else:
            config.l1_prefetcher = dataclasses.replace(
                config.l1_prefetcher, name="none")
        if "l2" in recipe:
            config.l2_prefetcher = dataclasses.replace(
                config.l2_prefetcher, name=recipe.pop("l2"))
        if recipe.pop("clip", False):
            config.clip = dataclasses.replace(config.clip, enabled=True)
        if "criticality" in recipe:
            config.criticality.name = recipe.pop("criticality")
        if "crit_gate" in recipe:
            config.criticality.gate = recipe.pop("crit_gate")
        if "throttle" in recipe:
            config.throttle.name = recipe.pop("throttle")
        if recipe.pop("hermes", False):
            config.related = dataclasses.replace(config.related, hermes=True)
        if recipe.pop("dspatch", False):
            config.related = dataclasses.replace(config.related,
                                                 dspatch=True)
        if "clip_filter_scale" in recipe:
            factor = recipe.pop("clip_filter_scale")
            config.clip = dataclasses.replace(
                config.clip, enabled=True,
                filter_sets=max(1, int(config.clip.filter_sets * factor)))
        if "clip_predictor_scale" in recipe:
            factor = recipe.pop("clip_predictor_scale")
            config.clip = dataclasses.replace(
                config.clip, enabled=True,
                predictor_sets=max(1, int(config.clip.predictor_sets
                                          * factor)))
        if "clip_overrides" in recipe:
            fields = dict(recipe.pop("clip_overrides"))
            config.clip = dataclasses.replace(config.clip, enabled=True,
                                              **fields)
        if "llc_kib" in recipe:
            config.llc_slice = dataclasses.replace(
                config.llc_slice, size_kib=recipe.pop("llc_kib"))
        if recipe:
            raise ValueError(f"unused overrides: {sorted(recipe)}")
        return config

    # ------------------------------------------------------------------

    def run_mix(self, scheme: str, mix: Sequence[str], channels: int,
                **overrides) -> SimulationResult:
        key = (scheme, tuple(mix), channels,
               tuple(sorted((k, repr(v)) for k, v in overrides.items())),
               self.scale)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = self.config_for(scheme, channels, **overrides)
        if len(mix) != config.num_cores:
            raise ValueError("mix length does not match core count")
        result = run_system(config, list(mix), label=scheme)
        self._cache[key] = result
        self.runs += 1
        return result

    def run_homogeneous(self, scheme: str, workload: str, channels: int,
                        **overrides) -> SimulationResult:
        cores = overrides.get("num_cores", self.scale.num_cores)
        return self.run_mix(scheme, homogeneous_mix(workload, cores),
                            channels, **overrides)

    # ------------------------------------------------------------------

    def speedup_homogeneous(self, scheme: str, workload: str,
                            channels: int, **overrides) -> float:
        """Weighted speedup vs no-prefetching at the same channel count."""
        baseline = self.run_homogeneous("none", workload, channels,
                                        **_baseline_overrides(overrides))
        result = self.run_homogeneous(scheme, workload, channels,
                                      **overrides)
        return weighted_speedup(result, baseline)

    def speedup_mix(self, scheme: str, mix: Sequence[str], channels: int,
                    **overrides) -> float:
        baseline = self.run_mix("none", mix, channels,
                                **_baseline_overrides(overrides))
        result = self.run_mix(scheme, mix, channels, **overrides)
        return weighted_speedup(result, baseline)

    # ------------------------------------------------------------------

    def heterogeneous(self, count: Optional[int] = None) -> List[List[str]]:
        return heterogeneous_mixes(count or self.scale.heterogeneous_mixes,
                                   self.scale.num_cores)

    def cloud_workloads(self) -> List[str]:
        return CLOUDSUITE_WORKLOADS + CVP_WORKLOADS


def _baseline_overrides(overrides: Dict) -> Dict:
    """Overrides that must also apply to the no-prefetching baseline
    (structural knobs like core count or LLC size, not scheme knobs)."""
    keep = {"num_cores", "sim_instructions", "llc_kib"}
    return {k: v for k, v in overrides.items() if k in keep}
