"""Removed module: ``repro.experiments.reporting`` split into two homes.

The deprecation cycle (re-exports + ``DeprecationWarning``) ended with
the public-API redesign; importing this module now fails loudly with
directions instead of silently re-exporting:

* numeric helpers  -> :mod:`repro.experiments.statistics`
  (``geometric_mean``, ``arithmetic_mean``)
* table rendering  -> :mod:`repro.experiments.report`
  (``format_table``, ``print_figure``, ``series_dict``)

High-level entrypoints (running simulations and sweeps) live in
:mod:`repro.api`; see ``docs/api.md`` for the migration guide.
"""

raise ImportError(
    "repro.experiments.reporting was removed: import geometric_mean/"
    "arithmetic_mean from repro.experiments.statistics and format_table/"
    "print_figure/series_dict from repro.experiments.report (high-level "
    "entrypoints live in repro.api; see docs/api.md)")
