"""Deprecated shim: this module split into two homes.

* numeric helpers  -> :mod:`repro.experiments.statistics`
  (``geometric_mean``, ``arithmetic_mean``)
* table rendering  -> :mod:`repro.experiments.report`
  (``format_table``, ``print_figure``, ``series_dict``)

Existing ``from repro.experiments.reporting import ...`` statements keep
working through these re-exports; new code should import from the new
locations.
"""

from __future__ import annotations

import warnings

from repro.experiments.report import (format_table, print_figure,
                                      series_dict)
from repro.experiments.statistics import arithmetic_mean, geometric_mean

__all__ = ["geometric_mean", "arithmetic_mean", "format_table",
           "print_figure", "series_dict"]

# stacklevel=2 points the warning at the importing module, not at this
# shim; module-level emission fires once per interpreter (imports are
# cached), so downstream code is not spammed per call.
warnings.warn(
    "repro.experiments.reporting is deprecated: import numeric helpers "
    "from repro.experiments.statistics and table rendering from "
    "repro.experiments.report",
    DeprecationWarning, stacklevel=2)
