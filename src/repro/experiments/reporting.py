"""Plain-text reporting helpers for the experiment drivers."""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the conventional average for speedup ratios."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    return statistics.geometric_mean(cleaned)


def arithmetic_mean(values: Sequence[float]) -> float:
    cleaned = list(values)
    if not cleaned:
        return 0.0
    return sum(cleaned) / len(cleaned)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def print_figure(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


def series_dict(labels: Sequence[str],
                values: Sequence[float]) -> Dict[str, float]:
    return dict(zip(labels, values))
