"""Experiment drivers reproducing every table and figure of the paper.

Each ``figureN`` / ``tableN`` function runs the required simulations at a
configurable (default: benchmark) scale, prints the same rows/series the
paper reports, and returns the numbers as a dictionary so tests and
benchmarks can assert on the *shape* of the result.  See DESIGN.md
section 5 for the experiment index and EXPERIMENTS.md for paper-vs-measured
records.
"""

from repro.experiments.figures import (figure1, figure2, figure3, figure4,
                                       figure5, figure6, figure9, figure10,
                                       figure11, figure12, figure13,
                                       figure14, figure15, figure16,
                                       figure17, figure18, figure19,
                                       figure20, figure21, table2, table3,
                                       energy_study, llc_sensitivity,
                                       core_count_sensitivity,
                                       ablation_study)
from repro.experiments.learned import LEARNED_SCHEMES, learned_study
from repro.experiments.power_budget import (frequency_adjusted_speedup,
                                            power_budget_study)
from repro.experiments.runner import BenchScale, ExperimentRunner
from repro.experiments.sweep import (ResultStore, RunSpec, Scheme, Sweep,
                                     run_sweep)

__all__ = [
    "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
    "figure9", "figure10", "figure11", "figure12", "figure13", "figure14",
    "figure15", "figure16", "figure17", "figure18", "figure19", "figure20",
    "figure21", "table2", "table3", "energy_study", "llc_sensitivity",
    "ablation_study", "power_budget_study", "frequency_adjusted_speedup",
    "learned_study", "LEARNED_SCHEMES",
    "core_count_sensitivity", "BenchScale", "ExperimentRunner",
    "Scheme", "RunSpec", "Sweep", "ResultStore", "run_sweep",
]
