"""Rendering: markdown reports and aligned plain-text tables.

Renders one :class:`SimulationResult` (plus optional comparisons and a
request trace) as a self-contained markdown document -- the artifact to
attach to a design discussion or regression ticket -- and hosts the
plain-text table helpers the figure drivers print with (formerly in
``repro.experiments.reporting``; the numeric mean helpers from that
module moved to ``repro.experiments.statistics``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.sim.metrics import compare_schemes, summarize
from repro.sim.stats import SimulationResult
from repro.sim.tracing import RequestTrace


def _table(headers, rows) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_cell(c) for c in row) + " |")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    materialised = [[_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_figure(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


def series_dict(labels: Sequence[str],
                values: Sequence[float]) -> Dict[str, float]:
    return dict(zip(labels, values))


def run_report(result: SimulationResult, title: str = "Simulation report",
               trace: Optional[RequestTrace] = None) -> str:
    """Markdown report for a single simulation."""
    summary = summarize(result)
    sections = [f"# {title}", "",
                f"Configuration: `{result.config_label}`, "
                f"{len(result.cores)} cores, "
                f"{result.total_instructions} instructions, "
                f"{result.total_cycles} cycles.", ""]
    sections.append("## Headline metrics\n")
    sections.append(_table(
        ["metric", "value"],
        sorted(summary.items())))
    sections.append("\n## Per-core\n")
    sections.append(_table(
        ["core", "workload", "IPC", "loads", "mispredicts",
         "critical loads"],
        [[c.core_id, c.workload, c.ipc, c.loads, c.mispredicts,
          c.critical_load_instances] for c in result.cores]))
    sections.append("\n## Cache levels\n")
    sections.append(_table(
        ["level", "demand accesses", "demand misses", "miss coverage",
         "avg miss latency"],
        [[name, level.demand_accesses, level.demand_misses,
          level.miss_coverage, level.average_miss_latency]
         for name, level in result.levels.items()]))
    if result.clip is not None:
        clip = result.clip
        sections.append("\n## CLIP\n")
        sections.append(_table(
            ["metric", "value"],
            [["prediction accuracy", clip.prediction_accuracy],
             ["prediction coverage", clip.prediction_coverage],
             ["candidates seen", clip.prefetches_seen],
             ["candidates allowed", clip.prefetches_allowed],
             ["static-critical IPs", clip.static_critical_ips],
             ["dynamic-critical IPs", clip.dynamic_critical_ips],
             ["exploration windows", clip.windows],
             ["phase changes", clip.phase_changes]]))
    if trace is not None and len(trace):
        sections.append("\n## Demand-load latency\n")
        sections.append(_table(
            ["percentile", "cycles"],
            [["p50", trace.percentile(0.5)],
             ["p90", trace.percentile(0.9)],
             ["p99", trace.percentile(0.99)]]))
    return "\n".join(sections) + "\n"


def comparison_report(results: Mapping[str, SimulationResult],
                      baseline: str = "none",
                      title: str = "Scheme comparison") -> str:
    """Markdown report comparing several schemes on the same mix."""
    rows = compare_schemes(results, baseline=baseline)
    columns = ["scheme", "weighted_speedup", "aggregate_ipc", "l1_mpki",
               "l1_miss_latency", "prefetch_issued", "prefetch_accuracy",
               "dram_utilization"]
    body = _table(columns,
                  [[row[c] for c in columns] for row in rows])
    return f"# {title}\n\nBaseline: `{baseline}`.\n\n{body}\n"
