"""Typed sweep API: declarative simulation points, parallel execution,
and a persistent on-disk result cache.

Every paper figure is a sweep over (scheme x mix x channel-count) points.
This module gives that grid a first-class representation:

* :class:`Scheme`   -- frozen, typed description of one prefetching
  configuration (which prefetcher at which level, CLIP on/off, Hermes /
  DSPatch comparators, structural knobs).  Replaces the stringly-typed
  ``SCHEMES`` recipe dicts and ``**overrides`` kwargs.
* :class:`RunSpec`  -- frozen, hashable description of one simulation
  point: a scheme, a workload mix, and a channel count.  Two specs that
  build the same :class:`~repro.config.SystemConfig` for the same mix
  share one canonical :meth:`RunSpec.cache_key`.
* :class:`Sweep`    -- an ordered, de-duplicated collection of specs with
  :meth:`Sweep.product` / :meth:`Sweep.zip` constructors.
* :func:`run_sweep` -- executes the independent points of a sweep, fanning
  them across a ``ProcessPoolExecutor`` when ``jobs > 1`` and serving warm
  points from a :class:`ResultStore` under ``.repro-cache/``.

Results cross process and disk boundaries via the stable
``SimulationResult.to_dict`` / ``from_dict`` round trip, so a point
executed with ``--jobs 4`` is bit-identical to the same point executed
serially.  Cache entries are invalidated wholesale by bumping
:data:`CACHE_SCHEMA_VERSION` whenever simulator behaviour changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple, Union)

from repro.config import (SystemConfig, big_little_overrides,
                          resolve_backend, scaled_config)
from repro.sim.stats import SimulationResult
from repro.sim.system import run_system

#: Version of the (simulator behaviour, result schema) pair.  Bump this on
#: any change that alters simulation outcomes or the ``to_dict`` layout;
#: every existing cache entry becomes unreachable (keys embed the version)
#: and is re-simulated on demand.
CACHE_SCHEMA_VERSION = 3

#: Default location of the persistent result store, relative to the
#: working directory; override with the ``REPRO_CACHE_DIR`` environment
#: variable or an explicit :class:`ResultStore`.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Prefetchers that attach to the L1D ("l1" recipes in the legacy dicts).
L1_PREFETCHERS = ("berti", "ipcp", "stride", "streamer")
#: Prefetchers that attach to the L2.
L2_PREFETCHERS = ("bingo", "spp_ppf")


# ---------------------------------------------------------------------------
# Scheme: what runs on the hardware
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scheme:
    """Typed description of one prefetching configuration.

    All knobs the legacy ``SCHEMES`` recipe dicts and ``**overrides``
    kwargs could express are explicit fields, so a scheme is hashable,
    comparable, and canonical: two schemes built from the same knobs are
    equal regardless of construction order (the old ``repr``-based cache
    key missed on dict insertion order).
    """

    #: L1D prefetcher name ("none", "berti", "ipcp", "stride", "streamer").
    l1: str = "none"
    #: L2 prefetcher name ("none", "bingo", "spp_ppf").
    l2: str = "none"
    #: Enable CLIP filtering.
    clip: bool = False
    #: Hermes off-chip predictor comparator (Fig. 21).
    hermes: bool = False
    #: DSPatch comparator (Fig. 21).
    dspatch: bool = False
    #: Baseline criticality predictor ("catch", "fvp", ... or None).
    criticality: Optional[str] = None
    #: Whether the criticality predictor gates prefetches (Fig. 5) or only
    #: measures (Fig. 4).
    crit_gate: bool = True
    #: Prefetch throttler ("fdp", "hpac", "spac", "nst" or None).
    throttle: Optional[str] = None
    #: Learned online policy ("bandit" selector, "perceptron" filter,
    #: or None for the static chain).
    learned: Optional[str] = None
    #: Scale CLIP's criticality-filter sets (Fig. 18); implies CLIP on.
    clip_filter_scale: Optional[float] = None
    #: Scale CLIP's predictor sets (Fig. 18); implies CLIP on.
    clip_predictor_scale: Optional[float] = None
    #: Extra ``ClipConfig`` field overrides (ablations); implies CLIP on.
    #: Stored as a sorted tuple of (field, value) pairs so the scheme
    #: stays hashable and canonical; constructors accept a mapping.
    clip_overrides: Tuple[Tuple[str, object], ...] = ()
    #: Structural knobs (apply to the no-prefetching baseline too).
    llc_kib: Optional[int] = None
    num_cores: Optional[int] = None
    sim_instructions: Optional[int] = None
    #: DVFS operating point: re-clock the cores (and the uncore latencies
    #: expressed in core cycles) to this frequency in GHz.  ``None``
    #: keeps the Table-3 4 GHz reference clock.
    frequency_ghz: Optional[float] = None
    #: Heterogeneous (big/little) mix: the first ``big_cores`` cores keep
    #: the reference core, the rest run the little-core preset
    #: (:func:`repro.config.little_core`).  ``None`` keeps the system
    #: symmetric.
    big_cores: Optional[int] = None

    def __post_init__(self) -> None:
        overrides = self.clip_overrides
        if isinstance(overrides, Mapping):
            overrides = overrides.items()
        object.__setattr__(self, "clip_overrides",
                           tuple(sorted(tuple(overrides))))

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, name: str, **fields) -> "Scheme":
        """Build a scheme from a legacy ``"berti+clip"``-style name.

        The first ``+``-separated token names a prefetcher, "none", or
        "bandit" (the learned selector owns the L1 slot); later tokens
        toggle "clip", "hermes", "dspatch", "perceptron" (the learned
        filter), a criticality predictor, or a throttler.  Extra
        ``fields`` override the parsed values, e.g.
        ``Scheme.parse("berti", criticality="fvp")``.
        """
        from repro.criticality import predictor_names
        from repro.throttle import throttler_names
        parsed: Dict[str, object] = {}
        tokens = name.split("+")
        head = tokens[0]
        if head in L1_PREFETCHERS:
            parsed["l1"] = head
        elif head in L2_PREFETCHERS:
            parsed["l2"] = head
        elif head == "bandit":
            # The bandit selector heads a scheme on its own: it owns
            # the L1 slot and picks among its configured arms at run
            # time ("bandit" is a complete scheme name).
            parsed["learned"] = head
        elif head != "none":
            raise ValueError(
                f"unknown scheme {name!r}; the leading token must be a "
                f"prefetcher from {L1_PREFETCHERS + L2_PREFETCHERS}, "
                f"'bandit', or 'none'")
        for token in tokens[1:]:
            if token in ("clip", "hermes", "dspatch"):
                parsed[token] = True
            elif token in ("bandit", "perceptron"):
                parsed["learned"] = token
            elif token in predictor_names():
                parsed["criticality"] = token
            elif token in throttler_names():
                parsed["throttle"] = token
            else:
                raise ValueError(f"unknown scheme token {token!r} "
                                 f"in {name!r}")
        parsed.update(fields)
        return cls(**parsed)

    @classmethod
    def from_legacy(cls, scheme: str,
                    overrides: Optional[Mapping] = None) -> "Scheme":
        """Round-trip the deprecated (scheme string, ``**overrides``)
        calling convention of ``ExperimentRunner`` into a typed scheme.

        Raises ``ValueError`` on unknown scheme names or override keys,
        matching the legacy error messages.
        """
        spec = cls.parse(scheme)
        extra = dict(overrides or {})
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(extra) - fields)
        if unknown:
            raise ValueError(f"unused overrides: {unknown}")
        return dataclasses.replace(spec, **extra)

    # -- derived views -------------------------------------------------

    @property
    def label(self) -> str:
        """Legacy-compatible display name ("berti+clip" style)."""
        parts = [self.l1 if self.l1 != "none"
                 else self.l2 if self.l2 != "none" else "none"]
        if self.l1 != "none" and self.l2 != "none":
            parts.append(self.l2)
        for flag in ("clip", "hermes", "dspatch"):
            if getattr(self, flag):
                parts.append(flag)
        if self.criticality:
            parts.append(self.criticality)
        if self.throttle:
            parts.append(self.throttle)
        if self.learned:
            # A learned policy with no static prefetcher heads the
            # label ("bandit", "bandit+fdp"); otherwise it rides along
            # ("berti+perceptron").
            if parts[0] == "none":
                parts[0] = self.learned
            else:
                parts.append(self.learned)
        return "+".join(parts)

    def baseline(self) -> "Scheme":
        """The matching no-prefetching reference configuration.

        Keeps the structural knobs that must also apply to the baseline
        (core count, instructions, LLC size) and drops every scheme knob,
        mirroring the legacy ``_baseline_overrides`` filter.
        """
        return Scheme(llc_kib=self.llc_kib, num_cores=self.num_cores,
                      sim_instructions=self.sim_instructions,
                      frequency_ghz=self.frequency_ghz,
                      big_cores=self.big_cores)

    def build_config(self, channels: int, num_cores: int,
                     sim_instructions: int) -> SystemConfig:
        """Materialise the :class:`SystemConfig` for this scheme.

        ``num_cores`` / ``sim_instructions`` are the sweep-level defaults;
        the scheme's own structural fields take precedence.
        """
        config = scaled_config(
            num_cores=self.num_cores or num_cores,
            channels=channels,
            sim_instructions=self.sim_instructions or sim_instructions)
        config.l1_prefetcher = dataclasses.replace(
            config.l1_prefetcher, name=self.l1)
        config.l2_prefetcher = dataclasses.replace(
            config.l2_prefetcher, name=self.l2)
        if self.clip:
            config.clip = dataclasses.replace(config.clip, enabled=True)
        if self.criticality:
            config.criticality.name = self.criticality
        config.criticality.gate = self.crit_gate
        if self.throttle:
            config.throttle.name = self.throttle
        if self.learned:
            config.learned = dataclasses.replace(config.learned,
                                                 policy=self.learned)
        if self.hermes or self.dspatch:
            config.related = dataclasses.replace(
                config.related, hermes=self.hermes, dspatch=self.dspatch)
        if self.clip_filter_scale is not None:
            config.clip = dataclasses.replace(
                config.clip, enabled=True,
                filter_sets=max(1, int(config.clip.filter_sets
                                       * self.clip_filter_scale)))
        if self.clip_predictor_scale is not None:
            config.clip = dataclasses.replace(
                config.clip, enabled=True,
                predictor_sets=max(1, int(config.clip.predictor_sets
                                          * self.clip_predictor_scale)))
        if self.clip_overrides:
            config.clip = dataclasses.replace(
                config.clip, enabled=True, **dict(self.clip_overrides))
        if self.llc_kib is not None:
            config.llc_slice = dataclasses.replace(
                config.llc_slice, size_kib=self.llc_kib)
        if self.big_cores is not None:
            config.core_overrides = big_little_overrides(
                config.num_cores, self.big_cores)
        if self.frequency_ghz is not None:
            config = config.at_frequency(self.frequency_ghz)
        config.validate()
        return config


# ---------------------------------------------------------------------------
# RunSpec: one simulation point
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """Frozen, hashable description of one simulation point."""

    scheme: Scheme
    mix: Tuple[str, ...]
    channels: int
    #: Sweep-level defaults; ``scheme.num_cores``/``sim_instructions``
    #: take precedence when set.
    num_cores: int = 8
    sim_instructions: int = 10_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "mix", tuple(self.mix))
        if len(self.mix) != self.cores:
            raise ValueError("mix length does not match core count")

    @property
    def cores(self) -> int:
        return self.scheme.num_cores or self.num_cores

    @property
    def instructions(self) -> int:
        return self.scheme.sim_instructions or self.sim_instructions

    def config(self) -> SystemConfig:
        return self.scheme.build_config(self.channels, self.num_cores,
                                        self.sim_instructions)

    def cache_key(self) -> str:
        """Canonical content hash of this point.

        Hashes the fully-materialised :class:`SystemConfig` (not the
        scheme's surface syntax), the workload mix, and
        :data:`CACHE_SCHEMA_VERSION`; two specs that simulate the same
        system on the same mix share one key however they were written.
        The simulation backend is deliberately *excluded*: backends are
        bit-identical on results, so a point cached under one backend is
        valid under the other.
        """
        config = dataclasses.asdict(self.config())
        config.pop("backend", None)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "config": config,
            "mix": list(self.mix),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Sweep: an ordered collection of points
# ---------------------------------------------------------------------------

class Sweep:
    """An ordered, de-duplicated collection of :class:`RunSpec` points."""

    def __init__(self, specs: Iterable[RunSpec] = ()) -> None:
        seen: Dict[RunSpec, None] = {}
        for spec in specs:
            seen.setdefault(spec)
        self.specs: Tuple[RunSpec, ...] = tuple(seen)

    @classmethod
    def product(cls, schemes: Sequence[Scheme],
                mixes: Sequence[Sequence[str]],
                channels: Sequence[int], *,
                num_cores: int = 8,
                sim_instructions: int = 10_000) -> "Sweep":
        """Full cross product: every scheme on every mix at every channel
        count — the shape of Figs. 6, 9-10 and 19-21."""
        return cls(RunSpec(scheme=scheme, mix=tuple(mix), channels=ch,
                           num_cores=num_cores,
                           sim_instructions=sim_instructions)
                   for scheme in schemes
                   for mix in mixes
                   for ch in channels)

    @classmethod
    def zip(cls, schemes: Sequence[Scheme],
            mixes: Sequence[Sequence[str]],
            channels: Sequence[int], *,
            num_cores: int = 8,
            sim_instructions: int = 10_000) -> "Sweep":
        """Aligned triples (scheme[i], mix[i], channels[i]) — for
        irregular grids the product constructor over-covers."""
        if not (len(schemes) == len(mixes) == len(channels)):
            raise ValueError(
                f"zip lengths differ: {len(schemes)} schemes, "
                f"{len(mixes)} mixes, {len(channels)} channel counts")
        return cls(RunSpec(scheme=scheme, mix=tuple(mix), channels=ch,
                           num_cores=num_cores,
                           sim_instructions=sim_instructions)
                   for scheme, mix, ch in zip(schemes, mixes, channels))

    def with_baselines(self) -> "Sweep":
        """This sweep plus the no-prefetching baseline of every point."""
        extra = [dataclasses.replace(spec, scheme=spec.scheme.baseline())
                 for spec in self.specs]
        return Sweep(self.specs + tuple(extra))

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __add__(self, other: "Sweep") -> "Sweep":
        return Sweep(self.specs + tuple(other))


# ---------------------------------------------------------------------------
# ResultStore: the persistent cache
# ---------------------------------------------------------------------------

class ResultStore:
    """Persistent result cache under ``.repro-cache/``.

    One JSON file per point, named by :meth:`RunSpec.cache_key` and
    sharded by the key's first byte (``.repro-cache/ab/abcdef....json``).
    Each file records the schema version, the spec's human-readable
    label, and the serialised result; writes go through a *unique* temp
    file + atomic rename, so a crashed run never leaves a truncated
    entry behind and any number of concurrent writers (pool processes,
    distributed-sweep workers landing the same key, threads sharing a
    pid) may race on one shard without corrupting it -- last rename
    wins, every intermediate state is a complete entry.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationResult]:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            return None

    def save(self, key: str, spec: RunSpec, result: SimulationResult,
             backend: Optional[str] = None) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "label": spec.scheme.label,
            "mix": list(spec.mix),
            "channels": spec.channels,
            # Provenance only: backends are bit-identical, so the entry
            # is valid whichever backend reads it (and the cache key
            # ignores the field).
            "backend": resolve_backend(backend or "event"),
            "result": result.to_dict(),
        }
        # A mkstemp-unique temp file per call: a pid-suffixed name is
        # not enough once threads (or a coordinator and its workers)
        # share a process -- two writers interleaving on one temp path
        # used to land a truncated/corrupt shard.
        handle, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=f".{key[:16]}.",
                                       suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute_spec(spec: RunSpec, backend: Optional[str] = None) -> Dict:
    """Simulate one point and return the result as a plain dict.

    Module-level (picklable) so ``ProcessPoolExecutor`` workers can run
    it; the dict form crosses the process boundary and round-trips back
    through ``SimulationResult.from_dict`` in the parent.  ``backend``
    selects the simulation engine; results are bit-identical either way.
    """
    config = spec.config()
    if backend is not None:
        config.backend = backend
    result = run_system(config, list(spec.mix), label=spec.scheme.label)
    return result.to_dict()


#: Producer label (``SweepOutcome.provenance``) for disk-cache hits.
CACHE_PRODUCER = "cache"
#: Producer label for points simulated in this process / its pool.
LOCAL_PRODUCER = "local"

EXECUTORS = ("local", "distributed")


@dataclass
class SweepOutcome:
    """What :func:`run_sweep` did: the results plus cache accounting."""

    results: Dict[RunSpec, SimulationResult]
    #: Points actually simulated this call.
    simulated: int = 0
    #: Points served from the disk store.
    cache_hits: int = 0
    #: Who produced each point: ``"cache"``, ``"local"``, or the id of
    #: the distributed worker that simulated it.
    provenance: Dict[RunSpec, str] = field(default_factory=dict)

    def __getitem__(self, spec: RunSpec) -> SimulationResult:
        return self.results[spec]


def run_sweep(sweep: Iterable[RunSpec], *, jobs: int = 1,
              store: Optional[ResultStore] = None,
              known: Optional[Mapping[RunSpec, SimulationResult]] = None,
              on_result: Optional[Callable[[RunSpec, SimulationResult],
                                           None]] = None,
              backend: Optional[str] = None,
              executor: str = "local") -> SweepOutcome:
    """Execute every point of ``sweep``, in parallel when ``jobs > 1``.

    ``known`` points (e.g. an in-process memo) are returned as-is; the
    rest are looked up in ``store`` and only the true misses are
    simulated — serially for ``jobs <= 1``, otherwise fanned across a
    ``ProcessPoolExecutor`` with ``jobs`` workers.  Both paths round-trip
    results through ``to_dict``/``from_dict``, so the executed results
    are identical regardless of ``jobs``.  Fresh results are written back
    to ``store`` and reported through ``on_result`` as they arrive.
    ``backend`` picks the simulation engine ("event"/"batch"); cached
    points are shared across backends because results are bit-identical.

    ``executor="distributed"`` runs the misses through a localhost
    coordinator + ``jobs`` worker subprocesses speaking the
    :mod:`repro.serve` protocol instead of a process pool — same
    ``to_dict`` round trip, so still bit-identical — and records which
    worker produced each point in :attr:`SweepOutcome.provenance`.
    When the distributed service cannot start (or loses every worker
    mid-campaign), execution falls back transparently to the local
    path; points whose jobs were quarantined (failed repeatedly on
    real workers) raise :class:`repro.serve.QuarantinedError`.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}: expected one "
                         f"of {', '.join(EXECUTORS)}")
    specs = list(Sweep(sweep))
    outcome = SweepOutcome(results={})
    pending: List[RunSpec] = []
    for spec in specs:
        if known is not None and spec in known:
            outcome.results[spec] = known[spec]
            continue
        if store is not None:
            cached = store.load(spec.cache_key())
            if cached is not None:
                outcome.results[spec] = cached
                outcome.cache_hits += 1
                outcome.provenance[spec] = CACHE_PRODUCER
                if on_result is not None:
                    on_result(spec, cached)
                continue
        pending.append(spec)

    if executor == "distributed" and pending:
        pending = _run_distributed_pending(pending, outcome, jobs=jobs,
                                           store=store, backend=backend,
                                           on_result=on_result)

    def record(spec: RunSpec, result: SimulationResult) -> None:
        outcome.results[spec] = result
        outcome.simulated += 1
        outcome.provenance[spec] = LOCAL_PRODUCER
        if store is not None:
            store.save(spec.cache_key(), spec, result, backend=backend)
        if on_result is not None:
            on_result(spec, result)

    if jobs <= 1 or len(pending) <= 1:
        for spec in pending:
            record(spec, SimulationResult.from_dict(
                execute_spec(spec, backend)))
    else:
        workers = min(jobs, len(pending))
        execute = partial(execute_spec, backend=backend)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for spec, data in zip(pending, pool.map(execute, pending)):
                record(spec, SimulationResult.from_dict(data))
    return outcome


def _run_distributed_pending(pending: List[RunSpec],
                             outcome: SweepOutcome, *, jobs: int,
                             store: Optional[ResultStore],
                             backend: Optional[str],
                             on_result) -> List[RunSpec]:
    """Run the cache misses through :func:`repro.serve.run_distributed`.

    Folds whatever the campaign finished into ``outcome`` and returns
    the points still pending (normally none; the fallback remainder
    when the service degraded), which the caller executes locally.
    """
    from repro.serve.executor import (DistributedUnavailable,
                                      run_distributed)
    try:
        dist = run_distributed(pending, jobs=jobs, store=store,
                               backend=backend)
    except DistributedUnavailable as exc:
        warnings.warn(
            f"distributed sweep executor unavailable ({exc}); falling "
            f"back to local execution", RuntimeWarning, stacklevel=3)
        return pending
    for spec in pending:
        if spec not in dist.results:
            continue
        outcome.results[spec] = dist.results[spec]
        outcome.provenance[spec] = dist.provenance[spec]
        if on_result is not None:
            on_result(spec, dist.results[spec])
    outcome.simulated += dist.simulated
    outcome.cache_hits += dist.cache_hits
    if dist.remaining:
        warnings.warn(
            f"distributed sweep lost its workers with "
            f"{len(dist.remaining)} point(s) outstanding; finishing "
            f"them locally", RuntimeWarning, stacklevel=3)
    return dist.remaining
