"""Numeric summary helpers shared by the experiment drivers.

Split out of the old ``repro.experiments.reporting`` module (which mixed
statistics with table rendering); the rendering half now lives in
``repro.experiments.report``.
"""

from __future__ import annotations

import statistics
from typing import Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the conventional average for speedup ratios."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    return statistics.geometric_mean(cleaned)


def arithmetic_mean(values: Sequence[float]) -> float:
    cleaned = list(values)
    if not cleaned:
        return 0.0
    return sum(cleaned) / len(cleaned)


__all__ = ["geometric_mean", "arithmetic_mean"]
