"""Drivers that regenerate every table and figure of the paper.

Each driver prints the paper's rows/series at a scaled-down configuration
(see :class:`repro.experiments.runner.BenchScale` and DESIGN.md section 2)
and returns the numbers for programmatic use.  The scaled channel axis maps
to the paper's channel axis by cores-per-channel: with the default 8-core
scale, 1 scaled channel corresponds to the paper's 8-channel (constrained)
point and 8-16 scaled channels to its 64-channel (unconstrained) point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.invariants import check
from repro.config import SystemConfig
from repro.core.storage import storage_overhead, storage_table
from repro.criticality import predictor_names
from repro.energy import dynamic_energy
from repro.experiments.reporting import (arithmetic_mean, geometric_mean,
                                         print_figure)
from repro.experiments.runner import BenchScale, ExperimentRunner
from repro.sim.stats import weighted_speedup
from repro.throttle import throttler_names
from repro.trace.workloads import SPEC_HOMOGENEOUS_MIXES

#: Prefetchers compared throughout the evaluation (paper Figs. 1, 2, 9, 19).
PREFETCHER_SCHEMES = ["berti", "ipcp", "bingo", "spp_ppf"]


def _runner(runner: Optional[ExperimentRunner]) -> ExperimentRunner:
    return runner if runner is not None else ExperimentRunner()


def _homog_speedups(runner: ExperimentRunner, scheme: str, channels: int,
                    workloads: Sequence[str], **overrides) -> List[float]:
    return [runner.speedup_homogeneous(scheme, workload, channels,
                                       **overrides)
            for workload in workloads]


def _hetero_speedups(runner: ExperimentRunner, scheme: str, channels: int,
                     mixes: Sequence[Sequence[str]], **overrides
                     ) -> List[float]:
    return [runner.speedup_mix(scheme, mix, channels, **overrides)
            for mix in mixes]


# ---------------------------------------------------------------------------
# Figures 1-3: the problem (prefetchers under constrained bandwidth)
# ---------------------------------------------------------------------------

def figure1(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 1: prefetcher weighted speedup vs DRAM channels (homogeneous).

    Paper shape: every prefetcher loses against no-prefetching at the
    constrained end and wins at the unconstrained end.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = list(runner.scale.channel_sweep)
    series: Dict[str, List[float]] = {}
    for scheme in PREFETCHER_SCHEMES:
        series[scheme] = [
            geometric_mean(_homog_speedups(runner, scheme, ch, workloads))
            for ch in channels
        ]
    if not quiet:
        rows = [[scheme] + series[scheme] for scheme in PREFETCHER_SCHEMES]
        print_figure("Figure 1: normalized weighted speedup, homogeneous "
                     "mixes", ["prefetcher"] + [f"ch={c}" for c in channels],
                     rows)
    return {"channels": channels, "series": series}


def figure2(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 2: prefetcher weighted speedup vs channels (heterogeneous)."""
    runner = _runner(runner)
    mixes = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep)
    series: Dict[str, List[float]] = {}
    for scheme in PREFETCHER_SCHEMES:
        series[scheme] = [
            geometric_mean(_hetero_speedups(runner, scheme, ch, mixes))
            for ch in channels
        ]
    if not quiet:
        rows = [[scheme] + series[scheme] for scheme in PREFETCHER_SCHEMES]
        print_figure("Figure 2: normalized weighted speedup, heterogeneous "
                     "mixes", ["prefetcher"] + [f"ch={c}" for c in channels],
                     rows)
    return {"channels": channels, "series": series}


def figure3(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 3: demand miss latency inflation (Berti / no-prefetching).

    Paper shape: >=1.9x at L2/LLC for 4-8 channels, shrinking with more
    channels.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = list(runner.scale.channel_sweep)
    levels = ["L1D", "L2", "LLC"]
    inflation: Dict[str, List[float]] = {level: [] for level in levels}
    for ch in channels:
        ratios = {level: [] for level in levels}
        for workload in workloads:
            base = runner.run_homogeneous("none", workload, ch)
            berti = runner.run_homogeneous("berti", workload, ch)
            for level in levels:
                base_latency = base.levels[level].average_miss_latency
                if base_latency > 0:
                    ratios[level].append(
                        berti.levels[level].average_miss_latency
                        / base_latency)
        for level in levels:
            inflation[level].append(arithmetic_mean(ratios[level]))
    if not quiet:
        rows = [[level] + inflation[level] for level in levels]
        print_figure("Figure 3: average demand miss latency with Berti, "
                     "normalized to no prefetching",
                     ["level"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "inflation": inflation}


# ---------------------------------------------------------------------------
# Figures 4-6: why existing solutions fall short
# ---------------------------------------------------------------------------

def figure4(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 4: accuracy and coverage of baseline criticality predictors.

    Measured in the presence of Berti prefetching, against the paper's
    ground truth (load stalls the ROB head while serviced beyond L1).
    Paper shape: high coverage, low accuracy.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    accuracy: Dict[str, float] = {}
    coverage: Dict[str, float] = {}
    for name in predictor_names():
        accs, covs = [], []
        for workload in workloads:
            result = runner.run_homogeneous(
                "berti", workload, channels,
                criticality=name, crit_gate=False)
            check(result.criticality is not None,
                  "run with criticality=%r returned no measurement", name)
            accs.append(result.criticality.accuracy)
            covs.append(result.criticality.coverage)
        accuracy[name] = arithmetic_mean(accs)
        coverage[name] = arithmetic_mean(covs)
    if not quiet:
        rows = [[name, accuracy[name], coverage[name]]
                for name in predictor_names()]
        print_figure("Figure 4: criticality prediction accuracy/coverage "
                     "of prior predictors",
                     ["predictor", "accuracy", "coverage"], rows)
    return {"accuracy": accuracy, "coverage": coverage}


def figure5(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 5: Berti gated by baseline criticality predictors.

    Paper shape: none of the prior predictors rescues Berti at low
    bandwidth.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    schemes = ["berti"] + [f"berti+{n}" for n in predictor_names()]
    homog: Dict[str, List[float]] = {}
    heterog: Dict[str, List[float]] = {}
    for scheme in schemes:
        crit = scheme.split("+")[1] if "+" in scheme else None
        overrides = {"criticality": crit} if crit else {}
        homog[scheme] = [
            geometric_mean(_homog_speedups(runner, "berti", ch, workloads,
                                           **overrides))
            for ch in channels
        ]
        heterog[scheme] = [
            geometric_mean(_hetero_speedups(runner, "berti", ch, hetero,
                                            **overrides))
            for ch in channels
        ]
    if not quiet:
        print_figure("Figure 5a: Berti + criticality predictors "
                     "(homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + homog[s] for s in schemes])
        print_figure("Figure 5b: Berti + criticality predictors "
                     "(heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + heterog[s] for s in schemes])
    return {"channels": channels, "homogeneous": homog,
            "heterogeneous": heterog}


def figure6(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 6: Berti with prefetch throttlers (FDP/HPAC/SPAC/NST).

    Paper shape: marginal improvements; big slowdowns remain.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    schemes = ["berti"] + [f"berti+{n}" for n in throttler_names()]
    homog: Dict[str, List[float]] = {}
    heterog: Dict[str, List[float]] = {}
    for scheme in schemes:
        throttle = scheme.split("+")[1] if "+" in scheme else None
        overrides = {"throttle": throttle} if throttle else {}
        homog[scheme] = [
            geometric_mean(_homog_speedups(runner, "berti", ch, workloads,
                                           **overrides))
            for ch in channels
        ]
        heterog[scheme] = [
            geometric_mean(_hetero_speedups(runner, "berti", ch, hetero,
                                            **overrides))
            for ch in channels
        ]
    if not quiet:
        print_figure("Figure 6a: Berti + throttlers (homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + homog[s] for s in schemes])
        print_figure("Figure 6b: Berti + throttlers (heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + heterog[s] for s in schemes])
    return {"channels": channels, "homogeneous": homog,
            "heterogeneous": heterog}


# ---------------------------------------------------------------------------
# Figures 9-16: CLIP's key results
# ---------------------------------------------------------------------------

def figure9(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 9: CLIP with the four prefetchers at the constrained point.

    Paper: CLIP improves Berti by 24% (homog) and 9% (heterog) at 8
    channels for 64 cores.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = runner.scale.constrained_channels
    homog: Dict[str, float] = {}
    heterog: Dict[str, float] = {}
    for scheme in PREFETCHER_SCHEMES:
        homog[scheme] = geometric_mean(
            _homog_speedups(runner, scheme, channels, workloads))
        homog[scheme + "+clip"] = geometric_mean(
            _homog_speedups(runner, scheme + "+clip", channels, workloads))
        heterog[scheme] = geometric_mean(
            _hetero_speedups(runner, scheme, channels, hetero))
        heterog[scheme + "+clip"] = geometric_mean(
            _hetero_speedups(runner, scheme + "+clip", channels, hetero))
    if not quiet:
        rows = [[s, homog[s], homog[s + "+clip"], heterog[s],
                 heterog[s + "+clip"]] for s in PREFETCHER_SCHEMES]
        print_figure(f"Figure 9: CLIP at the constrained point "
                     f"(ch={channels})",
                     ["prefetcher", "homog", "homog+CLIP", "heterog",
                      "heterog+CLIP"], rows)
    return {"homogeneous": homog, "heterogeneous": heterog}


def _per_mix_runs(runner: ExperimentRunner,
                  workloads: Sequence[str]) -> Dict[str, Dict]:
    """Shared per-mix Berti vs Berti+CLIP runs (Figs. 10, 11, 14-16)."""
    channels = runner.scale.constrained_channels
    out: Dict[str, Dict] = {}
    for workload in workloads:
        base = runner.run_homogeneous("none", workload, channels)
        berti = runner.run_homogeneous("berti", workload, channels)
        clip = runner.run_homogeneous("berti+clip", workload, channels)
        out[workload] = {
            "berti_ws": weighted_speedup(berti, base),
            "clip_ws": weighted_speedup(clip, base),
            "berti_l1_latency": berti.average_l1_miss_latency(),
            "clip_l1_latency": clip.average_l1_miss_latency(),
            "berti_issued": berti.prefetch.issued,
            "clip_issued": clip.prefetch.issued,
            "clip": clip.clip,
        }
    return out


def figure10(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 10: per-mix weighted speedup, Berti vs Berti+CLIP.

    Paper: Berti+CLIP turns a 16% average slowdown into an 8% gain; only
    3 of 45 mixes still slow down with CLIP (26 without).
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = [[w, per_mix[w]["berti_ws"], per_mix[w]["clip_ws"]]
            for w in workloads]
    berti_avg = geometric_mean([per_mix[w]["berti_ws"] for w in workloads])
    clip_avg = geometric_mean([per_mix[w]["clip_ws"] for w in workloads])
    rows.append(["geomean", berti_avg, clip_avg])
    if not quiet:
        print_figure("Figure 10: per-mix weighted speedup (constrained "
                     "bandwidth)", ["mix", "Berti", "Berti+CLIP"], rows)
    return {"per_mix": per_mix, "berti_avg": berti_avg,
            "clip_avg": clip_avg}


def figure11(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 11: per-mix average L1 miss latency (Berti vs Berti+CLIP).

    Paper: average drops from 168 to 132 cycles.
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = [[w, per_mix[w]["berti_l1_latency"],
             per_mix[w]["clip_l1_latency"]] for w in workloads]
    berti_avg = arithmetic_mean(
        [per_mix[w]["berti_l1_latency"] for w in workloads])
    clip_avg = arithmetic_mean(
        [per_mix[w]["clip_l1_latency"] for w in workloads])
    rows.append(["mean", berti_avg, clip_avg])
    if not quiet:
        print_figure("Figure 11: average L1 miss latency (cycles)",
                     ["mix", "Berti", "Berti+CLIP"], rows)
    return {"per_mix": per_mix, "berti_avg": berti_avg,
            "clip_avg": clip_avg}


def figure12(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 12: L1/L2/LLC miss coverage, Berti vs Berti+CLIP.

    Paper: CLIP gives up ~7% coverage at L1 and 2-3% at L2/LLC in exchange
    for latency.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    coverage = {"berti": {}, "berti+clip": {}}
    for scheme in coverage:
        per_level = {"L1D": [], "L2": [], "LLC": []}
        for workload in workloads:
            result = runner.run_homogeneous(scheme, workload, channels)
            for level in per_level:
                per_level[level].append(result.levels[level].miss_coverage)
        coverage[scheme] = {level: arithmetic_mean(values)
                            for level, values in per_level.items()}
    if not quiet:
        rows = [[level, coverage["berti"][level],
                 coverage["berti+clip"][level]]
                for level in ["L1D", "L2", "LLC"]]
        print_figure("Figure 12: miss coverage by level",
                     ["level", "Berti", "Berti+CLIP"], rows)
    return coverage


def figure13(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None,
             baselines: Sequence[str] = ("fvp", "cbp", "robo")) -> Dict:
    """Fig. 13: CLIP's critical-load prediction accuracy vs best prior.

    Paper: 93% average for the critical signature vs 41% for the best
    prior predictor.
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    channels = runner.scale.constrained_channels
    per_mix: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        clip = runner.run_homogeneous("berti+clip", workload, channels)
        best_prior = 0.0
        for name in baselines:
            result = runner.run_homogeneous("berti", workload, channels,
                                            criticality=name,
                                            crit_gate=False)
            check(result.criticality is not None,
                  "run with criticality=%r returned no measurement", name)
            best_prior = max(best_prior, result.criticality.accuracy)
        check(clip.clip is not None,
              "berti+clip run returned no CLIP statistics")
        per_mix[workload] = {
            "clip_accuracy": clip.clip.prediction_accuracy,
            "best_prior_accuracy": best_prior,
        }
    clip_avg = arithmetic_mean(
        [m["clip_accuracy"] for m in per_mix.values()])
    prior_avg = arithmetic_mean(
        [m["best_prior_accuracy"] for m in per_mix.values()])
    if not quiet:
        rows = [[w, per_mix[w]["clip_accuracy"],
                 per_mix[w]["best_prior_accuracy"]] for w in workloads]
        rows.append(["mean", clip_avg, prior_avg])
        print_figure("Figure 13: critical-load prediction accuracy",
                     ["mix", "critical signature", "best prior"], rows)
    return {"per_mix": per_mix, "clip_avg": clip_avg,
            "prior_avg": prior_avg}


def figure14(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 14: CLIP's criticality prediction coverage per mix."""
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = []
    coverages = []
    for workload in workloads:
        clip_result = per_mix[workload]["clip"]
        coverages.append(clip_result.prediction_coverage)
        rows.append([workload, clip_result.prediction_coverage])
    average = arithmetic_mean(coverages)
    rows.append(["mean", average])
    if not quiet:
        print_figure("Figure 14: criticality prediction coverage",
                     ["mix", "coverage"], rows)
    return {"per_mix": {w: c for w, c in zip(workloads, coverages)},
            "average": average}


def figure15(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 15: number of critical IPs, static- vs dynamic-critical.

    Paper: few IPs overall; ~50% are dynamic-critical.
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = []
    out: Dict[str, Dict[str, int]] = {}
    for workload in workloads:
        clip_result = per_mix[workload]["clip"]
        static = clip_result.static_critical_ips
        dynamic = clip_result.dynamic_critical_ips
        out[workload] = {"static": static, "dynamic": dynamic}
        rows.append([workload, static, dynamic])
    if not quiet:
        print_figure("Figure 15: critical IPs per mix",
                     ["mix", "static-critical", "dynamic-critical"], rows)
    return out


def figure16(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 16: reduction in prefetch requests with CLIP (paper: ~50%)."""
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = []
    reductions = {}
    for workload in workloads:
        berti_issued = per_mix[workload]["berti_issued"]
        clip_issued = per_mix[workload]["clip_issued"]
        reduction = (1.0 - clip_issued / berti_issued
                     if berti_issued else 0.0)
        reductions[workload] = reduction
        rows.append([workload, berti_issued, clip_issued, reduction])
    average = arithmetic_mean(list(reductions.values()))
    rows.append(["mean", "", "", average])
    if not quiet:
        print_figure("Figure 16: prefetch traffic reduction with CLIP",
                     ["mix", "Berti issued", "CLIP issued", "reduction"],
                     rows)
    return {"per_mix": reductions, "average": average}


# ---------------------------------------------------------------------------
# Figures 17-21 and sensitivity studies
# ---------------------------------------------------------------------------

def figure17(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 17: CloudSuite + CVP workloads vs channels.

    Paper: prefetchers gain little on these traces (<10% even
    unconstrained), so CLIP's effect is small too.
    """
    runner = _runner(runner)
    workloads = runner.cloud_workloads()
    channels = list(runner.scale.channel_sweep[:4])
    series: Dict[str, List[float]] = {"berti": [], "berti+clip": []}
    for ch in channels:
        for scheme in series:
            series[scheme].append(geometric_mean(
                _homog_speedups(runner, scheme, ch, workloads)))
    if not quiet:
        rows = [[s] + series[s] for s in series]
        print_figure("Figure 17: CloudSuite + CVP homogeneous workloads",
                     ["scheme"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "series": series}


def figure18(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 18: sensitivity to CLIP table sizes (0.25x - 4x).

    Paper: 2x/4x marginal gains; 0.5x/0.25x lose >7%.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    factors = [0.25, 0.5, 1.0, 2.0, 4.0]
    tables = {"filter": {}, "predictor": {}}
    reference = geometric_mean(_homog_speedups(
        runner, "berti+clip", channels, workloads))
    for factor in factors:
        for which in tables:
            if factor == 1.0:
                tables[which][factor] = 1.0
                continue
            # Scale one table, keep the other at baseline (paper method).
            override = ("clip_filter_scale" if which == "filter"
                        else "clip_predictor_scale")
            value = geometric_mean(_homog_speedups(
                runner, "berti", channels, workloads,
                **{override: factor}))
            tables[which][factor] = value / reference if reference else 0.0
    if not quiet:
        rows = [[which] + [tables[which][f] for f in factors]
                for which in tables]
        print_figure("Figure 18: CLIP table-size sensitivity (relative "
                     "to 1x)", ["table"] + [f"{f}x" for f in factors], rows)
    return {"factors": factors, "tables": tables,
            "reference_ws": reference}


def figure19(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 19: CLIP with all prefetchers across channels (homogeneous)."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    series: Dict[str, List[float]] = {}
    for scheme in PREFETCHER_SCHEMES:
        for variant in (scheme, scheme + "+clip"):
            series[variant] = [
                geometric_mean(_homog_speedups(runner, variant, ch,
                                               workloads))
                for ch in channels
            ]
    if not quiet:
        rows = [[s] + series[s] for s in series]
        print_figure("Figure 19: CLIP vs channels (homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "series": series}


def figure20(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 20: CLIP with all prefetchers across channels (heterogeneous)."""
    runner = _runner(runner)
    mixes = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    series: Dict[str, List[float]] = {}
    for scheme in PREFETCHER_SCHEMES:
        for variant in (scheme, scheme + "+clip"):
            series[variant] = [
                geometric_mean(_hetero_speedups(runner, variant, ch, mixes))
                for ch in channels
            ]
    if not quiet:
        rows = [[s] + series[s] for s in series]
        print_figure("Figure 20: CLIP vs channels (heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "series": series}


def figure21(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 21: Hermes and DSPatch vs CLIP with Berti.

    Paper shape: CLIP wins at 4-8 channels; Hermes overtakes at 16;
    DSPatch trails CLIP under constrained bandwidth.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    schemes = ["berti", "berti+hermes", "berti+dspatch", "berti+clip"]
    homog: Dict[str, List[float]] = {}
    heterog: Dict[str, List[float]] = {}
    for scheme in schemes:
        homog[scheme] = [
            geometric_mean(_homog_speedups(runner, scheme, ch, workloads))
            for ch in channels
        ]
        heterog[scheme] = [
            geometric_mean(_hetero_speedups(runner, scheme, ch, hetero))
            for ch in channels
        ]
    if not quiet:
        print_figure("Figure 21a: Hermes / DSPatch / CLIP (homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + homog[s] for s in schemes])
        print_figure("Figure 21b: Hermes / DSPatch / CLIP (heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + heterog[s] for s in schemes])
    return {"channels": channels, "homogeneous": homog,
            "heterogeneous": heterog}


# ---------------------------------------------------------------------------
# Tables and auxiliary studies
# ---------------------------------------------------------------------------

def table2(quiet: bool = False) -> Dict:
    """Table 2: CLIP storage overhead (paper total: 1.56 KB/core)."""
    rows = storage_table()
    total_kib = storage_overhead()
    if not quiet:
        print_figure("Table 2: CLIP storage overhead",
                     ["structure", "bytes"],
                     [[r.structure, r.bytes] for r in rows]
                     + [["total (KB)", total_kib * 1024 / 1000]])
    return {"rows": {r.structure: r.bytes for r in rows},
            "total_kib": total_kib,
            "total_kb": total_kib * 1024 / 1000}


def table3(quiet: bool = False) -> Dict:
    """Table 3: the baseline system configuration (full scale)."""
    config = SystemConfig()
    entries = {
        "cores": config.num_cores,
        "rob_entries": config.core.rob_entries,
        "issue_width": config.core.issue_width,
        "retire_width": config.core.retire_width,
        "l1d_kib": config.l1d.size_kib,
        "l1d_ways": config.l1d.ways,
        "l2_kib": config.l2.size_kib,
        "llc_slice_kib": config.llc_slice.size_kib,
        "llc_replacement": config.llc_slice.replacement,
        "dram_channels": config.dram.channels,
        "mesh_dim": config.mesh_dim,
        "noc_virtual_channels": config.noc.virtual_channels,
        "dram_trp_cycles": config.dram.trp_cycles,
        "write_watermark": config.dram.write_watermark,
    }
    if not quiet:
        print_figure("Table 3: baseline system parameters",
                     ["parameter", "value"], list(entries.items()))
    return entries


def energy_study(runner: Optional[ExperimentRunner] = None,
                 quiet: bool = False) -> Dict:
    """Section 5.1 energy claim: CLIP cuts dynamic memory-hierarchy energy
    (paper: -18.21% for homogeneous mixes)."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    totals = {"berti": [], "berti+clip": []}
    for workload in workloads:
        for scheme in totals:
            result = runner.run_homogeneous(scheme, workload, channels)
            clip_events = (result.levels["L1D"].demand_accesses
                           if scheme.endswith("clip") else 0)
            totals[scheme].append(
                dynamic_energy(result, clip_events=clip_events).total_mj)
    berti_mj = arithmetic_mean(totals["berti"])
    clip_mj = arithmetic_mean(totals["berti+clip"])
    saving = 1.0 - clip_mj / berti_mj if berti_mj else 0.0
    if not quiet:
        print_figure("Energy: dynamic memory-hierarchy energy",
                     ["scheme", "mJ (mean/mix)"],
                     [["berti", berti_mj], ["berti+clip", clip_mj],
                      ["saving", saving]])
    return {"berti_mj": berti_mj, "clip_mj": clip_mj, "saving": saving}


def llc_sensitivity(runner: Optional[ExperimentRunner] = None,
                    quiet: bool = False) -> Dict:
    """Section 5.2 LLC-size sweep: CLIP's edge grows as the LLC shrinks."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    # Scaled stand-ins for the paper's 512 KB / 2 MB / 4 MB per core.
    sizes_kib = [64, 128, 256]
    out: Dict[int, Dict[str, float]] = {}
    for size in sizes_kib:
        out[size] = {
            "berti": geometric_mean(_homog_speedups(
                runner, "berti", channels, workloads, llc_kib=size)),
            "berti+clip": geometric_mean(_homog_speedups(
                runner, "berti+clip", channels, workloads, llc_kib=size)),
        }
    if not quiet:
        rows = [[size, out[size]["berti"], out[size]["berti+clip"]]
                for size in sizes_kib]
        print_figure("LLC sensitivity (scaled slice KiB)",
                     ["llc_kib", "Berti", "Berti+CLIP"], rows)
    return out


def core_count_sensitivity(runner: Optional[ExperimentRunner] = None,
                           quiet: bool = False) -> Dict:
    """Section 5.2 core-count sweep: CLIP matters while there is less than
    one channel per 2-4 cores."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()[:4]
    grid = [(4, 1), (8, 1), (8, 2), (16, 2)]
    out: Dict[str, Dict[str, float]] = {}
    for cores, channels in grid:
        key = f"{cores}c/{channels}ch"
        out[key] = {
            "berti": geometric_mean(_homog_speedups(
                runner, "berti", channels, workloads, num_cores=cores)),
            "berti+clip": geometric_mean(_homog_speedups(
                runner, "berti+clip", channels, workloads,
                num_cores=cores)),
        }
    if not quiet:
        rows = [[key, out[key]["berti"], out[key]["berti+clip"]]
                for key in out]
        print_figure("Core-count sensitivity",
                     ["config", "Berti", "Berti+CLIP"], rows)
    return out


def all_spec_workloads() -> List[str]:
    """The full 45-mix list for full-scale per-mix figures."""
    return list(SPEC_HOMOGENEOUS_MIXES)


def ablation_study(runner: Optional[ExperimentRunner] = None,
                   quiet: bool = False) -> Dict:
    """Ablation of CLIP's design choices (paper section 4.2 and 5.1).

    Variants, all measured as weighted speedup at the constrained point:

    * ``full``            -- CLIP as proposed;
    * ``no-accuracy``     -- stage I only (paper: accuracy filtering
      contributes the smaller share of the benefit);
    * ``no-criticality``  -- stage II only;
    * ``no-priority``     -- no criticality-conscious NoC/DRAM (paper:
      priority contributes just 2.8% of the 24%);
    * ``ip-only-signature``   -- drop address+histories from the signature;
    * ``no-branch-history``   -- drop only the branch history;
    * ``threshold-1``         -- criticality count threshold of 1 (vs 4).
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    variants = {
        "full": {},
        "no-accuracy": {"use_accuracy_filter": False},
        "no-criticality": {"use_criticality_filter": False},
        "no-priority": {"criticality_conscious_noc_dram": False},
        "ip-only-signature": {"signature_use_address": False,
                              "signature_use_branch_history": False,
                              "signature_use_criticality_history": False},
        "no-branch-history": {"signature_use_branch_history": False},
        "threshold-1": {"criticality_count_threshold": 1},
    }
    berti = geometric_mean(_homog_speedups(runner, "berti", channels,
                                           workloads))
    out: Dict[str, float] = {"berti (no CLIP)": berti}
    for name, fields in variants.items():
        if fields:
            # "berti" + clip_overrides enables CLIP with modified knobs.
            out[name] = geometric_mean(_homog_speedups(
                runner, "berti", channels, workloads,
                clip_overrides=fields))
        else:
            out[name] = geometric_mean(_homog_speedups(
                runner, "berti+clip", channels, workloads))
    if not quiet:
        print_figure("Ablation: CLIP design choices (weighted speedup at "
                     "the constrained point)",
                     ["variant", "weighted speedup"],
                     [[k, v] for k, v in out.items()])
    return out
