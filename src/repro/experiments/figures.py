"""Drivers that regenerate every table and figure of the paper.

Each driver prints the paper's rows/series at a scaled-down configuration
(see :class:`repro.experiments.runner.BenchScale` and DESIGN.md section 2)
and returns the numbers for programmatic use.  The scaled channel axis maps
to the paper's channel axis by cores-per-channel: with the default 8-core
scale, 1 scaled channel corresponds to the paper's 8-channel (constrained)
point and 8-16 scaled channels to its 64-channel (unconstrained) point.

Drivers describe their grid as typed :class:`~repro.experiments.sweep.Scheme`
values and submit the whole figure as one batch (``runner.run_sweep``)
before reading any individual point, so a runner constructed with
``jobs > 1`` fans the independent simulations across processes and one
constructed with a :class:`~repro.experiments.sweep.ResultStore` serves
warm reruns from disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.invariants import check
from repro.config import SystemConfig
from repro.core.storage import storage_overhead, storage_table
from repro.criticality import predictor_names
from repro.energy import dynamic_energy
from repro.experiments.report import print_figure
from repro.experiments.runner import BenchScale, ExperimentRunner
from repro.experiments.statistics import arithmetic_mean, geometric_mean
from repro.experiments.sweep import Scheme
from repro.sim.stats import weighted_speedup
from repro.throttle import throttler_names
from repro.trace.workloads import SPEC_HOMOGENEOUS_MIXES

#: Prefetchers compared throughout the evaluation (paper Figs. 1, 2, 9, 19).
PREFETCHER_SCHEMES = ["berti", "ipcp", "bingo", "spp_ppf"]


def _runner(runner: Optional[ExperimentRunner]) -> ExperimentRunner:
    return runner if runner is not None else ExperimentRunner()


def _scheme(name: str, **fields) -> Scheme:
    """Typed scheme from a legacy name plus field overrides."""
    return Scheme.parse(name, **fields)


def _submit_homogeneous(runner: ExperimentRunner,
                        schemes: Sequence[Scheme],
                        channels: Sequence[int],
                        workloads: Sequence[str]) -> None:
    """Submit a whole (scheme x channel x workload) grid, plus the
    matching baselines, as one parallel/cached sweep."""
    specs = []
    for scheme in schemes:
        for ch in channels:
            for workload in workloads:
                specs.append(runner.spec_homogeneous(scheme, workload, ch))
                specs.append(runner.spec_homogeneous(scheme.baseline(),
                                                     workload, ch))
    runner.run_sweep(specs)


def _submit_heterogeneous(runner: ExperimentRunner,
                          schemes: Sequence[Scheme],
                          channels: Sequence[int],
                          mixes: Sequence[Sequence[str]]) -> None:
    specs = []
    for scheme in schemes:
        for ch in channels:
            for mix in mixes:
                specs.append(runner.spec(scheme, mix, ch))
                specs.append(runner.spec(scheme.baseline(), mix, ch))
    runner.run_sweep(specs)


def _homog_speedups(runner: ExperimentRunner, scheme: Scheme,
                    channels: int,
                    workloads: Sequence[str]) -> List[float]:
    _submit_homogeneous(runner, [scheme], [channels], workloads)
    return [runner.speedup_homogeneous(scheme, workload, channels)
            for workload in workloads]


def _hetero_speedups(runner: ExperimentRunner, scheme: Scheme,
                     channels: int,
                     mixes: Sequence[Sequence[str]]) -> List[float]:
    _submit_heterogeneous(runner, [scheme], [channels], mixes)
    return [runner.speedup_mix(scheme, mix, channels) for mix in mixes]


# ---------------------------------------------------------------------------
# Figures 1-3: the problem (prefetchers under constrained bandwidth)
# ---------------------------------------------------------------------------

def figure1(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 1: prefetcher weighted speedup vs DRAM channels (homogeneous).

    Paper shape: every prefetcher loses against no-prefetching at the
    constrained end and wins at the unconstrained end.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = list(runner.scale.channel_sweep)
    schemes = {name: _scheme(name) for name in PREFETCHER_SCHEMES}
    _submit_homogeneous(runner, list(schemes.values()), channels,
                        workloads)
    series: Dict[str, List[float]] = {}
    for name, scheme in schemes.items():
        series[name] = [
            geometric_mean(_homog_speedups(runner, scheme, ch, workloads))
            for ch in channels
        ]
    if not quiet:
        rows = [[scheme] + series[scheme] for scheme in PREFETCHER_SCHEMES]
        print_figure("Figure 1: normalized weighted speedup, homogeneous "
                     "mixes", ["prefetcher"] + [f"ch={c}" for c in channels],
                     rows)
    return {"channels": channels, "series": series}


def figure2(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 2: prefetcher weighted speedup vs channels (heterogeneous)."""
    runner = _runner(runner)
    mixes = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep)
    schemes = {name: _scheme(name) for name in PREFETCHER_SCHEMES}
    _submit_heterogeneous(runner, list(schemes.values()), channels, mixes)
    series: Dict[str, List[float]] = {}
    for name, scheme in schemes.items():
        series[name] = [
            geometric_mean(_hetero_speedups(runner, scheme, ch, mixes))
            for ch in channels
        ]
    if not quiet:
        rows = [[scheme] + series[scheme] for scheme in PREFETCHER_SCHEMES]
        print_figure("Figure 2: normalized weighted speedup, heterogeneous "
                     "mixes", ["prefetcher"] + [f"ch={c}" for c in channels],
                     rows)
    return {"channels": channels, "series": series}


def figure3(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 3: demand miss latency inflation (Berti / no-prefetching).

    Paper shape: >=1.9x at L2/LLC for 4-8 channels, shrinking with more
    channels.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = list(runner.scale.channel_sweep)
    levels = ["L1D", "L2", "LLC"]
    none, berti = _scheme("none"), _scheme("berti")
    _submit_homogeneous(runner, [none, berti], channels, workloads)
    inflation: Dict[str, List[float]] = {level: [] for level in levels}
    for ch in channels:
        ratios: Dict[str, List[float]] = {level: [] for level in levels}
        for workload in workloads:
            base = runner.run(runner.spec_homogeneous(none, workload, ch))
            with_pf = runner.run(runner.spec_homogeneous(berti, workload,
                                                         ch))
            for level in levels:
                base_latency = base.levels[level].average_miss_latency
                if base_latency > 0:
                    ratios[level].append(
                        with_pf.levels[level].average_miss_latency
                        / base_latency)
        for level in levels:
            inflation[level].append(arithmetic_mean(ratios[level]))
    if not quiet:
        rows = [[level] + inflation[level] for level in levels]
        print_figure("Figure 3: average demand miss latency with Berti, "
                     "normalized to no prefetching",
                     ["level"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "inflation": inflation}


# ---------------------------------------------------------------------------
# Figures 4-6: why existing solutions fall short
# ---------------------------------------------------------------------------

def figure4(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 4: accuracy and coverage of baseline criticality predictors.

    Measured in the presence of Berti prefetching, against the paper's
    ground truth (load stalls the ROB head while serviced beyond L1).
    Paper shape: high coverage, low accuracy.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    measured = {name: _scheme("berti", criticality=name, crit_gate=False)
                for name in predictor_names()}
    _submit_homogeneous(runner, list(measured.values()), [channels],
                        workloads)
    accuracy: Dict[str, float] = {}
    coverage: Dict[str, float] = {}
    for name, scheme in measured.items():
        accs, covs = [], []
        for workload in workloads:
            result = runner.run(
                runner.spec_homogeneous(scheme, workload, channels))
            check(result.criticality is not None,
                  "run with criticality=%r returned no measurement", name)
            accs.append(result.criticality.accuracy)
            covs.append(result.criticality.coverage)
        accuracy[name] = arithmetic_mean(accs)
        coverage[name] = arithmetic_mean(covs)
    if not quiet:
        rows = [[name, accuracy[name], coverage[name]]
                for name in predictor_names()]
        print_figure("Figure 4: criticality prediction accuracy/coverage "
                     "of prior predictors",
                     ["predictor", "accuracy", "coverage"], rows)
    return {"accuracy": accuracy, "coverage": coverage}


def figure5(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 5: Berti gated by baseline criticality predictors.

    Paper shape: none of the prior predictors rescues Berti at low
    bandwidth.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    gated = {"berti": _scheme("berti")}
    for name in predictor_names():
        gated[f"berti+{name}"] = _scheme("berti", criticality=name)
    _submit_homogeneous(runner, list(gated.values()), channels, workloads)
    _submit_heterogeneous(runner, list(gated.values()), channels, hetero)
    homog: Dict[str, List[float]] = {}
    heterog: Dict[str, List[float]] = {}
    for label, scheme in gated.items():
        homog[label] = [
            geometric_mean(_homog_speedups(runner, scheme, ch, workloads))
            for ch in channels
        ]
        heterog[label] = [
            geometric_mean(_hetero_speedups(runner, scheme, ch, hetero))
            for ch in channels
        ]
    if not quiet:
        print_figure("Figure 5a: Berti + criticality predictors "
                     "(homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + homog[s] for s in gated])
        print_figure("Figure 5b: Berti + criticality predictors "
                     "(heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + heterog[s] for s in gated])
    return {"channels": channels, "homogeneous": homog,
            "heterogeneous": heterog}


def figure6(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 6: Berti with prefetch throttlers (FDP/HPAC/SPAC/NST).

    Paper shape: marginal improvements; big slowdowns remain.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    throttled = {"berti": _scheme("berti")}
    for name in throttler_names():
        throttled[f"berti+{name}"] = _scheme("berti", throttle=name)
    _submit_homogeneous(runner, list(throttled.values()), channels,
                        workloads)
    _submit_heterogeneous(runner, list(throttled.values()), channels,
                          hetero)
    homog: Dict[str, List[float]] = {}
    heterog: Dict[str, List[float]] = {}
    for label, scheme in throttled.items():
        homog[label] = [
            geometric_mean(_homog_speedups(runner, scheme, ch, workloads))
            for ch in channels
        ]
        heterog[label] = [
            geometric_mean(_hetero_speedups(runner, scheme, ch, hetero))
            for ch in channels
        ]
    if not quiet:
        print_figure("Figure 6a: Berti + throttlers (homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + homog[s] for s in throttled])
        print_figure("Figure 6b: Berti + throttlers (heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + heterog[s] for s in throttled])
    return {"channels": channels, "homogeneous": homog,
            "heterogeneous": heterog}


# ---------------------------------------------------------------------------
# Figures 9-16: CLIP's key results
# ---------------------------------------------------------------------------

def figure9(runner: Optional[ExperimentRunner] = None,
            quiet: bool = False) -> Dict:
    """Fig. 9: CLIP with the four prefetchers at the constrained point.

    Paper: CLIP improves Berti by 24% (homog) and 9% (heterog) at 8
    channels for 64 cores.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = runner.scale.constrained_channels
    variants = {}
    for name in PREFETCHER_SCHEMES:
        variants[name] = _scheme(name)
        variants[name + "+clip"] = _scheme(name + "+clip")
    _submit_homogeneous(runner, list(variants.values()), [channels],
                        workloads)
    _submit_heterogeneous(runner, list(variants.values()), [channels],
                          hetero)
    homog: Dict[str, float] = {}
    heterog: Dict[str, float] = {}
    for label, scheme in variants.items():
        homog[label] = geometric_mean(
            _homog_speedups(runner, scheme, channels, workloads))
        heterog[label] = geometric_mean(
            _hetero_speedups(runner, scheme, channels, hetero))
    if not quiet:
        rows = [[s, homog[s], homog[s + "+clip"], heterog[s],
                 heterog[s + "+clip"]] for s in PREFETCHER_SCHEMES]
        print_figure(f"Figure 9: CLIP at the constrained point "
                     f"(ch={channels})",
                     ["prefetcher", "homog", "homog+CLIP", "heterog",
                      "heterog+CLIP"], rows)
    return {"homogeneous": homog, "heterogeneous": heterog}


def _per_mix_runs(runner: ExperimentRunner,
                  workloads: Sequence[str]) -> Dict[str, Dict]:
    """Shared per-mix Berti vs Berti+CLIP runs (Figs. 10, 11, 14-16)."""
    channels = runner.scale.constrained_channels
    none = _scheme("none")
    berti = _scheme("berti")
    berti_clip = _scheme("berti+clip")
    _submit_homogeneous(runner, [none, berti, berti_clip], [channels],
                        workloads)
    out: Dict[str, Dict] = {}
    for workload in workloads:
        base = runner.run(runner.spec_homogeneous(none, workload,
                                                  channels))
        with_pf = runner.run(runner.spec_homogeneous(berti, workload,
                                                     channels))
        with_clip = runner.run(runner.spec_homogeneous(berti_clip,
                                                       workload, channels))
        out[workload] = {
            "berti_ws": weighted_speedup(with_pf, base),
            "clip_ws": weighted_speedup(with_clip, base),
            "berti_l1_latency": with_pf.average_l1_miss_latency(),
            "clip_l1_latency": with_clip.average_l1_miss_latency(),
            "berti_issued": with_pf.prefetch.issued,
            "clip_issued": with_clip.prefetch.issued,
            "clip": with_clip.clip,
        }
    return out


def figure10(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 10: per-mix weighted speedup, Berti vs Berti+CLIP.

    Paper: Berti+CLIP turns a 16% average slowdown into an 8% gain; only
    3 of 45 mixes still slow down with CLIP (26 without).
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = [[w, per_mix[w]["berti_ws"], per_mix[w]["clip_ws"]]
            for w in workloads]
    berti_avg = geometric_mean([per_mix[w]["berti_ws"] for w in workloads])
    clip_avg = geometric_mean([per_mix[w]["clip_ws"] for w in workloads])
    rows.append(["geomean", berti_avg, clip_avg])
    if not quiet:
        print_figure("Figure 10: per-mix weighted speedup (constrained "
                     "bandwidth)", ["mix", "Berti", "Berti+CLIP"], rows)
    return {"per_mix": per_mix, "berti_avg": berti_avg,
            "clip_avg": clip_avg}


def figure11(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 11: per-mix average L1 miss latency (Berti vs Berti+CLIP).

    Paper: average drops from 168 to 132 cycles.
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = [[w, per_mix[w]["berti_l1_latency"],
             per_mix[w]["clip_l1_latency"]] for w in workloads]
    berti_avg = arithmetic_mean(
        [per_mix[w]["berti_l1_latency"] for w in workloads])
    clip_avg = arithmetic_mean(
        [per_mix[w]["clip_l1_latency"] for w in workloads])
    rows.append(["mean", berti_avg, clip_avg])
    if not quiet:
        print_figure("Figure 11: average L1 miss latency (cycles)",
                     ["mix", "Berti", "Berti+CLIP"], rows)
    return {"per_mix": per_mix, "berti_avg": berti_avg,
            "clip_avg": clip_avg}


def figure12(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 12: L1/L2/LLC miss coverage, Berti vs Berti+CLIP.

    Paper: CLIP gives up ~7% coverage at L1 and 2-3% at L2/LLC in exchange
    for latency.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    schemes = {"berti": _scheme("berti"),
               "berti+clip": _scheme("berti+clip")}
    _submit_homogeneous(runner, list(schemes.values()), [channels],
                        workloads)
    coverage: Dict[str, Dict[str, float]] = {}
    for label, scheme in schemes.items():
        per_level: Dict[str, List[float]] = {"L1D": [], "L2": [], "LLC": []}
        for workload in workloads:
            result = runner.run(
                runner.spec_homogeneous(scheme, workload, channels))
            for level in per_level:
                per_level[level].append(result.levels[level].miss_coverage)
        coverage[label] = {level: arithmetic_mean(values)
                           for level, values in per_level.items()}
    if not quiet:
        rows = [[level, coverage["berti"][level],
                 coverage["berti+clip"][level]]
                for level in ["L1D", "L2", "LLC"]]
        print_figure("Figure 12: miss coverage by level",
                     ["level", "Berti", "Berti+CLIP"], rows)
    return coverage


def figure13(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None,
             baselines: Sequence[str] = ("fvp", "cbp", "robo")) -> Dict:
    """Fig. 13: CLIP's critical-load prediction accuracy vs best prior.

    Paper: 93% average for the critical signature vs 41% for the best
    prior predictor.
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    channels = runner.scale.constrained_channels
    berti_clip = _scheme("berti+clip")
    priors = {name: _scheme("berti", criticality=name, crit_gate=False)
              for name in baselines}
    _submit_homogeneous(runner, [berti_clip] + list(priors.values()),
                        [channels], workloads)
    per_mix: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        clip = runner.run(
            runner.spec_homogeneous(berti_clip, workload, channels))
        best_prior = 0.0
        for name, scheme in priors.items():
            result = runner.run(
                runner.spec_homogeneous(scheme, workload, channels))
            check(result.criticality is not None,
                  "run with criticality=%r returned no measurement", name)
            best_prior = max(best_prior, result.criticality.accuracy)
        check(clip.clip is not None,
              "berti+clip run returned no CLIP statistics")
        per_mix[workload] = {
            "clip_accuracy": clip.clip.prediction_accuracy,
            "best_prior_accuracy": best_prior,
        }
    clip_avg = arithmetic_mean(
        [m["clip_accuracy"] for m in per_mix.values()])
    prior_avg = arithmetic_mean(
        [m["best_prior_accuracy"] for m in per_mix.values()])
    if not quiet:
        rows = [[w, per_mix[w]["clip_accuracy"],
                 per_mix[w]["best_prior_accuracy"]] for w in workloads]
        rows.append(["mean", clip_avg, prior_avg])
        print_figure("Figure 13: critical-load prediction accuracy",
                     ["mix", "critical signature", "best prior"], rows)
    return {"per_mix": per_mix, "clip_avg": clip_avg,
            "prior_avg": prior_avg}


def figure14(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 14: CLIP's criticality prediction coverage per mix."""
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = []
    coverages = []
    for workload in workloads:
        clip_result = per_mix[workload]["clip"]
        coverages.append(clip_result.prediction_coverage)
        rows.append([workload, clip_result.prediction_coverage])
    average = arithmetic_mean(coverages)
    rows.append(["mean", average])
    if not quiet:
        print_figure("Figure 14: criticality prediction coverage",
                     ["mix", "coverage"], rows)
    return {"per_mix": {w: c for w, c in zip(workloads, coverages)},
            "average": average}


def figure15(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 15: number of critical IPs, static- vs dynamic-critical.

    Paper: few IPs overall; ~50% are dynamic-critical.
    """
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = []
    out: Dict[str, Dict[str, int]] = {}
    for workload in workloads:
        clip_result = per_mix[workload]["clip"]
        static = clip_result.static_critical_ips
        dynamic = clip_result.dynamic_critical_ips
        out[workload] = {"static": static, "dynamic": dynamic}
        rows.append([workload, static, dynamic])
    if not quiet:
        print_figure("Figure 15: critical IPs per mix",
                     ["mix", "static-critical", "dynamic-critical"], rows)
    return out


def figure16(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False,
             workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 16: reduction in prefetch requests with CLIP (paper: ~50%)."""
    runner = _runner(runner)
    workloads = list(workloads or runner.scale.sample_homogeneous())
    per_mix = _per_mix_runs(runner, workloads)
    rows = []
    reductions = {}
    for workload in workloads:
        berti_issued = per_mix[workload]["berti_issued"]
        clip_issued = per_mix[workload]["clip_issued"]
        reduction = (1.0 - clip_issued / berti_issued
                     if berti_issued else 0.0)
        reductions[workload] = reduction
        rows.append([workload, berti_issued, clip_issued, reduction])
    average = arithmetic_mean(list(reductions.values()))
    rows.append(["mean", "", "", average])
    if not quiet:
        print_figure("Figure 16: prefetch traffic reduction with CLIP",
                     ["mix", "Berti issued", "CLIP issued", "reduction"],
                     rows)
    return {"per_mix": reductions, "average": average}


# ---------------------------------------------------------------------------
# Figures 17-21 and sensitivity studies
# ---------------------------------------------------------------------------

def figure17(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 17: CloudSuite + CVP workloads vs channels.

    Paper: prefetchers gain little on these traces (<10% even
    unconstrained), so CLIP's effect is small too.
    """
    runner = _runner(runner)
    workloads = runner.cloud_workloads()
    channels = list(runner.scale.channel_sweep[:4])
    schemes = {"berti": _scheme("berti"),
               "berti+clip": _scheme("berti+clip")}
    _submit_homogeneous(runner, list(schemes.values()), channels,
                        workloads)
    series: Dict[str, List[float]] = {label: [] for label in schemes}
    for ch in channels:
        for label, scheme in schemes.items():
            series[label].append(geometric_mean(
                _homog_speedups(runner, scheme, ch, workloads)))
    if not quiet:
        rows = [[s] + series[s] for s in series]
        print_figure("Figure 17: CloudSuite + CVP homogeneous workloads",
                     ["scheme"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "series": series}


def figure18(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 18: sensitivity to CLIP table sizes (0.25x - 4x).

    Paper: 2x/4x marginal gains; 0.5x/0.25x lose >7%.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    factors = [0.25, 0.5, 1.0, 2.0, 4.0]
    scaled = {
        ("filter", factor): _scheme("berti", clip_filter_scale=factor)
        for factor in factors if factor != 1.0
    }
    scaled.update({
        ("predictor", factor): _scheme("berti",
                                       clip_predictor_scale=factor)
        for factor in factors if factor != 1.0
    })
    _submit_homogeneous(runner,
                        [_scheme("berti+clip")] + list(scaled.values()),
                        [channels], workloads)
    tables: Dict[str, Dict[float, float]] = {"filter": {}, "predictor": {}}
    reference = geometric_mean(_homog_speedups(
        runner, _scheme("berti+clip"), channels, workloads))
    for (which, factor), scheme in scaled.items():
        value = geometric_mean(_homog_speedups(
            runner, scheme, channels, workloads))
        tables[which][factor] = value / reference if reference else 0.0
    for which in tables:
        tables[which][1.0] = 1.0
    if not quiet:
        rows = [[which] + [tables[which][f] for f in factors]
                for which in tables]
        print_figure("Figure 18: CLIP table-size sensitivity (relative "
                     "to 1x)", ["table"] + [f"{f}x" for f in factors], rows)
    return {"factors": factors, "tables": tables,
            "reference_ws": reference}


def channel_sweep_schemes() -> Dict[str, Scheme]:
    """The Fig. 19-20 comparison space: each prefetcher with and without
    CLIP.  Shared by the figure drivers and ``repro sweep``."""
    variants: Dict[str, Scheme] = {}
    for name in PREFETCHER_SCHEMES:
        variants[name] = _scheme(name)
        variants[name + "+clip"] = _scheme(name + "+clip")
    return variants


def figure19(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 19: CLIP with all prefetchers across channels (homogeneous)."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    variants = channel_sweep_schemes()
    _submit_homogeneous(runner, list(variants.values()), channels,
                        workloads)
    series: Dict[str, List[float]] = {}
    for label, scheme in variants.items():
        series[label] = [
            geometric_mean(_homog_speedups(runner, scheme, ch, workloads))
            for ch in channels
        ]
    if not quiet:
        rows = [[s] + series[s] for s in series]
        print_figure("Figure 19: CLIP vs channels (homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "series": series}


def figure20(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 20: CLIP with all prefetchers across channels (heterogeneous)."""
    runner = _runner(runner)
    mixes = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    variants = channel_sweep_schemes()
    _submit_heterogeneous(runner, list(variants.values()), channels, mixes)
    series: Dict[str, List[float]] = {}
    for label, scheme in variants.items():
        series[label] = [
            geometric_mean(_hetero_speedups(runner, scheme, ch, mixes))
            for ch in channels
        ]
    if not quiet:
        rows = [[s] + series[s] for s in series]
        print_figure("Figure 20: CLIP vs channels (heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels], rows)
    return {"channels": channels, "series": series}


def figure21(runner: Optional[ExperimentRunner] = None,
             quiet: bool = False) -> Dict:
    """Fig. 21: Hermes and DSPatch vs CLIP with Berti.

    Paper shape: CLIP wins at 4-8 channels; Hermes overtakes at 16;
    DSPatch trails CLIP under constrained bandwidth.
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    hetero = runner.heterogeneous()
    channels = list(runner.scale.channel_sweep[:3])
    schemes = {name: _scheme(name)
               for name in ("berti", "berti+hermes", "berti+dspatch",
                            "berti+clip")}
    _submit_homogeneous(runner, list(schemes.values()), channels,
                        workloads)
    _submit_heterogeneous(runner, list(schemes.values()), channels, hetero)
    homog: Dict[str, List[float]] = {}
    heterog: Dict[str, List[float]] = {}
    for label, scheme in schemes.items():
        homog[label] = [
            geometric_mean(_homog_speedups(runner, scheme, ch, workloads))
            for ch in channels
        ]
        heterog[label] = [
            geometric_mean(_hetero_speedups(runner, scheme, ch, hetero))
            for ch in channels
        ]
    if not quiet:
        print_figure("Figure 21a: Hermes / DSPatch / CLIP (homogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + homog[s] for s in schemes])
        print_figure("Figure 21b: Hermes / DSPatch / CLIP (heterogeneous)",
                     ["scheme"] + [f"ch={c}" for c in channels],
                     [[s] + heterog[s] for s in schemes])
    return {"channels": channels, "homogeneous": homog,
            "heterogeneous": heterog}


# ---------------------------------------------------------------------------
# Tables and auxiliary studies
# ---------------------------------------------------------------------------

def table2(quiet: bool = False) -> Dict:
    """Table 2: CLIP storage overhead (paper total: 1.56 KB/core)."""
    rows = storage_table()
    total_kib = storage_overhead()
    if not quiet:
        print_figure("Table 2: CLIP storage overhead",
                     ["structure", "bytes"],
                     [[r.structure, r.bytes] for r in rows]
                     + [["total (KB)", total_kib * 1024 / 1000]])
    return {"rows": {r.structure: r.bytes for r in rows},
            "total_kib": total_kib,
            "total_kb": total_kib * 1024 / 1000}


def table3(quiet: bool = False) -> Dict:
    """Table 3: the baseline system configuration (full scale)."""
    config = SystemConfig()
    entries = {
        "cores": config.num_cores,
        "rob_entries": config.core.rob_entries,
        "issue_width": config.core.issue_width,
        "retire_width": config.core.retire_width,
        "l1d_kib": config.l1d.size_kib,
        "l1d_ways": config.l1d.ways,
        "l2_kib": config.l2.size_kib,
        "llc_slice_kib": config.llc_slice.size_kib,
        "llc_replacement": config.llc_slice.replacement,
        "dram_channels": config.dram.channels,
        "mesh_dim": config.mesh_dim,
        "noc_virtual_channels": config.noc.virtual_channels,
        "dram_trp_cycles": config.dram.trp_cycles,
        "write_watermark": config.dram.write_watermark,
    }
    if not quiet:
        print_figure("Table 3: baseline system parameters",
                     ["parameter", "value"], list(entries.items()))
    return entries


def energy_study(runner: Optional[ExperimentRunner] = None,
                 quiet: bool = False) -> Dict:
    """Section 5.1 energy claim: CLIP cuts dynamic memory-hierarchy energy
    (paper: -18.21% for homogeneous mixes)."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    schemes = {"berti": _scheme("berti"),
               "berti+clip": _scheme("berti+clip")}
    _submit_homogeneous(runner, list(schemes.values()), [channels],
                        workloads)
    totals: Dict[str, List[float]] = {label: [] for label in schemes}
    for workload in workloads:
        for label, scheme in schemes.items():
            result = runner.run(
                runner.spec_homogeneous(scheme, workload, channels))
            # Counter-driven: CLIP structure activity comes off the
            # result's own counters, not a caller-supplied estimate.
            totals[label].append(dynamic_energy(result).total_mj)
    berti_mj = arithmetic_mean(totals["berti"])
    clip_mj = arithmetic_mean(totals["berti+clip"])
    saving = 1.0 - clip_mj / berti_mj if berti_mj else 0.0
    if not quiet:
        print_figure("Energy: dynamic memory-hierarchy energy",
                     ["scheme", "mJ (mean/mix)"],
                     [["berti", berti_mj], ["berti+clip", clip_mj],
                      ["saving", saving]])
    return {"berti_mj": berti_mj, "clip_mj": clip_mj, "saving": saving}


def llc_sensitivity(runner: Optional[ExperimentRunner] = None,
                    quiet: bool = False) -> Dict:
    """Section 5.2 LLC-size sweep: CLIP's edge grows as the LLC shrinks."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    # Scaled stand-ins for the paper's 512 KB / 2 MB / 4 MB per core.
    sizes_kib = [64, 128, 256]
    grid = {(label, size): _scheme(label, llc_kib=size)
            for label in ("berti", "berti+clip") for size in sizes_kib}
    _submit_homogeneous(runner, list(grid.values()), [channels], workloads)
    out: Dict[int, Dict[str, float]] = {}
    for size in sizes_kib:
        out[size] = {
            label: geometric_mean(_homog_speedups(
                runner, grid[(label, size)], channels, workloads))
            for label in ("berti", "berti+clip")
        }
    if not quiet:
        rows = [[size, out[size]["berti"], out[size]["berti+clip"]]
                for size in sizes_kib]
        print_figure("LLC sensitivity (scaled slice KiB)",
                     ["llc_kib", "Berti", "Berti+CLIP"], rows)
    return out


def core_count_sensitivity(runner: Optional[ExperimentRunner] = None,
                           quiet: bool = False) -> Dict:
    """Section 5.2 core-count sweep: CLIP matters while there is less than
    one channel per 2-4 cores."""
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()[:4]
    grid = [(4, 1), (8, 1), (8, 2), (16, 2)]
    # One batch for the whole grid: cold points fan out across
    # REPRO_JOBS together instead of per grid entry.
    specs = []
    for cores, channels in grid:
        for label in ("berti", "berti+clip"):
            scheme = _scheme(label, num_cores=cores)
            for workload in workloads:
                specs.append(runner.spec_homogeneous(scheme, workload,
                                                     channels))
                specs.append(runner.spec_homogeneous(scheme.baseline(),
                                                     workload, channels))
    runner.run_sweep(specs)
    out: Dict[str, Dict[str, float]] = {}
    for cores, channels in grid:
        key = f"{cores}c/{channels}ch"
        out[key] = {
            label: geometric_mean(_homog_speedups(
                runner, _scheme(label, num_cores=cores), channels,
                workloads))
            for label in ("berti", "berti+clip")
        }
    if not quiet:
        rows = [[key, out[key]["berti"], out[key]["berti+clip"]]
                for key in out]
        print_figure("Core-count sensitivity",
                     ["config", "Berti", "Berti+CLIP"], rows)
    return out


def all_spec_workloads() -> List[str]:
    """The full 45-mix list for full-scale per-mix figures."""
    return list(SPEC_HOMOGENEOUS_MIXES)


def ablation_study(runner: Optional[ExperimentRunner] = None,
                   quiet: bool = False) -> Dict:
    """Ablation of CLIP's design choices (paper section 4.2 and 5.1).

    Variants, all measured as weighted speedup at the constrained point:

    * ``full``            -- CLIP as proposed;
    * ``no-accuracy``     -- stage I only (paper: accuracy filtering
      contributes the smaller share of the benefit);
    * ``no-criticality``  -- stage II only;
    * ``no-priority``     -- no criticality-conscious NoC/DRAM (paper:
      priority contributes just 2.8% of the 24%);
    * ``ip-only-signature``   -- drop address+histories from the signature;
    * ``no-branch-history``   -- drop only the branch history;
    * ``threshold-1``         -- criticality count threshold of 1 (vs 4).
    """
    runner = _runner(runner)
    workloads = runner.scale.sample_homogeneous()
    channels = runner.scale.constrained_channels
    ablations = {
        "no-accuracy": {"use_accuracy_filter": False},
        "no-criticality": {"use_criticality_filter": False},
        "no-priority": {"criticality_conscious_noc_dram": False},
        "ip-only-signature": {"signature_use_address": False,
                              "signature_use_branch_history": False,
                              "signature_use_criticality_history": False},
        "no-branch-history": {"signature_use_branch_history": False},
        "threshold-1": {"criticality_count_threshold": 1},
    }
    variants = {"full": _scheme("berti+clip")}
    variants.update({
        name: _scheme("berti", clip_overrides=fields)
        for name, fields in ablations.items()
    })
    _submit_homogeneous(runner, [_scheme("berti")] + list(variants.values()),
                        [channels], workloads)
    berti = geometric_mean(_homog_speedups(runner, _scheme("berti"),
                                           channels, workloads))
    out: Dict[str, float] = {"berti (no CLIP)": berti}
    for name, scheme in variants.items():
        out[name] = geometric_mean(_homog_speedups(
            runner, scheme, channels, workloads))
    if not quiet:
        print_figure("Ablation: CLIP design choices (weighted speedup at "
                     "the constrained point)",
                     ["variant", "weighted speedup"],
                     [[k, v] for k, v in out.items()])
    return out
