"""Hot-path microbenchmark suite behind ``repro bench``.

Three benchmarks pin the simulator's performance baseline:

* ``engine_drain`` -- raw event throughput of the bucketed
  :class:`repro.sim.engine.Engine` (schedule + drain, the shape the
  hierarchy produces: many same-cycle events at fixed latencies);
* ``cache_access`` -- the per-set tag->way fast path of
  :class:`repro.cache.cache.Cache` under a mixed hit/miss stream;
* ``end_to_end`` -- one full simulated point (heterogeneous 4-core mix,
  Berti + CLIP, 10k instructions/core at 2 scaled channels), benched on
  *both* simulation backends (``end_to_end`` = event engine,
  ``end_to_end_batch`` = batch engine); these are the numbers the
  perf-smoke CI job guards against regression.

The committed baseline lives in ``BENCH_PR7.json`` at the repo root.
Regenerate it with ``repro bench -o BENCH_PR7.json`` on an otherwise
idle machine, and commit the result only alongside intentional
performance work: wall-clock numbers are machine-dependent, which is why
the regression check (:func:`compare_to_baseline`) only gates the
end-to-end points and allows a generous tolerance.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.cache.cache import Cache
from repro.config import CacheConfig, scaled_config
from repro.sim.engine import Engine
from repro.sim.system import run_system

#: The end-to-end reference point: one memory-bound, one irregular, one
#: graph and one streaming workload sharing 2 scaled channels.
END_TO_END_MIX = ["605.mcf_s-1536B", "623.xalancbmk_s-10B", "tc-14",
                  "619.lbm_s-2676B"]


def bench_engine_drain(events: int = 200_000) -> Dict:
    """Schedule ``events`` events (8 per cycle, mixed bare/args entries)
    and drain them all; reports events per second."""
    engine = Engine()
    counter = [0]

    def tick() -> None:
        counter[0] += 1

    def tick_args(amount: int) -> None:
        counter[0] += amount

    start = time.perf_counter()
    schedule = engine.schedule
    for i in range(events):
        if i & 7:
            schedule(i >> 3, tick)
        else:
            schedule(i >> 3, tick_args, 1)
    engine.run([])  # no cores: drains the whole queue to quiescence
    seconds = time.perf_counter() - start
    if counter[0] != events:
        raise RuntimeError(
            f"engine drained {counter[0]} of {events} events")
    return {"events": events, "seconds": seconds,
            "events_per_sec": events / seconds}


def bench_cache_access(accesses: int = 200_000) -> Dict:
    """Mixed hit/miss stream over an L1-sized cache; misses are filled,
    so the run exercises access, fill, and eviction paths."""
    cache = Cache(CacheConfig(name="bench", size_kib=48, ways=12))
    # Three accesses to a hot set that fits in cache for every one access
    # streaming through 4x the capacity: hits dominate (the fast path)
    # while the stream keeps fills and evictions continuous.
    capacity = 48 * 1024 // 64
    hot_lines = capacity // 2
    cold_lines = 4 * capacity
    start = time.perf_counter()
    access = cache.access
    fill = cache.fill
    for i in range(accesses):
        if i & 3:
            line = (i * 13) % hot_lines
        else:
            line = hot_lines + (i * 97) % cold_lines
        if not access(line, line & 0xFFF, i):
            fill(line, line & 0xFFF, i)
    seconds = time.perf_counter() - start
    return {"accesses": accesses, "seconds": seconds,
            "accesses_per_sec": accesses / seconds,
            "hit_rate": cache.stats.hits / cache.stats.accesses}


def bench_end_to_end(repeats: int = 3, backend: str = "event") -> Dict:
    """Best-of-``repeats`` wall clock for the reference simulated point."""
    config = scaled_config(num_cores=4, channels=2,
                           sim_instructions=10_000)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="berti")
    config.clip.enabled = True
    config.backend = backend
    result = run_system(config, END_TO_END_MIX)  # warm-up run
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run_system(config, END_TO_END_MIX)
        best = min(best, time.perf_counter() - start)
    instructions = result.total_instructions
    return {"seconds_best": best, "repeats": max(1, repeats),
            "instructions": instructions,
            "total_cycles": result.total_cycles,
            "instructions_per_sec": instructions / best,
            "scheme": "berti+clip", "num_cores": 4, "channels": 2,
            "backend": backend}


#: end_to_end payload key per backend; the bare "end_to_end" key stays
#: the event engine so old baselines keep comparing.
END_TO_END_KEYS = {"event": "end_to_end", "batch": "end_to_end_batch"}


def run_suite(repeats: int = 3, quiet: bool = False,
              backends: tuple = ("event", "batch")) -> Dict:
    """Run all benchmarks; returns the ``BENCH_PR7.json`` payload."""
    payload: Dict = {
        "bench": "hotpath",
        "python": ".".join(str(part) for part in sys.version_info[:3]),
    }
    for name, bench in (("engine_drain", bench_engine_drain),
                        ("cache_access", bench_cache_access)):
        payload[name] = bench()
        if not quiet:
            print(f"{name:>14}: {payload[name]['seconds']:.3f}s")
    for backend in backends:
        key = END_TO_END_KEYS[backend]
        payload[key] = bench_end_to_end(repeats, backend=backend)
        if not quiet:
            end = payload[key]
            print(f"{key:>14}: {end['seconds_best']:.3f}s best of "
                  f"{end['repeats']} ({end['instructions_per_sec']:,.0f} "
                  f"instructions/s)")
    return payload


def compare_to_baseline(payload: Dict, baseline: Dict,
                        tolerance: float = 0.25) -> List[str]:
    """Regression check: neither backend's end-to-end point may be more
    than ``tolerance`` slower than the baseline.  The microbenchmarks are
    informational only (they are too machine-sensitive to gate on); an
    end-to-end key absent from either payload is skipped, so old
    single-backend baselines remain comparable."""
    failures: List[str] = []
    for key in END_TO_END_KEYS.values():
        if key not in payload or key not in baseline:
            continue
        current = payload[key]["seconds_best"]
        base = baseline[key]["seconds_best"]
        limit = base * (1.0 + tolerance)
        if current > limit:
            failures.append(
                f"{key} regressed: {current:.3f}s vs baseline "
                f"{base:.3f}s (limit {limit:.3f}s at +{tolerance:.0%})")
    return failures


def load_baseline(path: Path) -> Optional[Dict]:
    """The committed baseline payload, or ``None`` when absent."""
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_payload(payload: Dict, path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
