"""In-process distributed execution: the glue behind
``run_sweep(executor="distributed")``.

Starts a :class:`Coordinator` on an ephemeral localhost port inside a
background thread (it gets its own asyncio loop), spawns ``jobs``
worker subprocesses (``python -m repro worker --url ...``), and blocks
until the campaign is terminal.  The contract mirrors the local
``ProcessPoolExecutor`` path: results round-trip through
``to_dict``/``from_dict`` and are therefore bit-identical to serial
execution.

Failure handling:

* setup problems (cannot bind a socket, cannot spawn a single worker)
  raise :class:`DistributedUnavailable`, which ``run_sweep`` catches to
  fall back transparently to local execution;
* every worker dying mid-campaign stops the distributed run and hands
  the unfinished points back to ``run_sweep`` for local execution
  (completed points are kept -- they are already in the store);
* jobs the queue quarantined (poison jobs that failed
  ``max_attempts`` times on real workers) raise
  :class:`QuarantinedError` carrying the per-job errors.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.experiments.sweep import ResultStore, RunSpec
from repro.serve.coordinator import Coordinator, ServeSettings
from repro.sim.stats import SimulationResult


class DistributedUnavailable(RuntimeError):
    """Distributed execution could not start; fall back to local."""


class QuarantinedError(RuntimeError):
    """One or more jobs exhausted their retries on real workers."""

    def __init__(self, quarantine: List[Dict]) -> None:
        self.quarantine = quarantine
        lines = []
        for item in quarantine:
            error = (item.get("error") or "unknown error").strip()
            lines.append(f"  {item['label']} (key {item['key'][:12]}..., "
                         f"{item['attempts']} attempts): "
                         f"{error.splitlines()[-1]}")
        super().__init__(
            f"{len(quarantine)} job(s) quarantined after exhausting "
            f"retries:\n" + "\n".join(lines))


@dataclass
class DistributedOutcome:
    """What a distributed campaign produced."""

    results: Dict[RunSpec, SimulationResult]
    provenance: Dict[RunSpec, str]
    simulated: int
    cache_hits: int
    status: Dict
    #: Points the distributed run could not finish (all workers died);
    #: ``run_sweep`` executes these locally.
    remaining: List[RunSpec] = field(default_factory=list)


class _CoordinatorThread(threading.Thread):
    """Hosts the coordinator's asyncio loop off the caller's thread."""

    def __init__(self, coordinator: Coordinator) -> None:
        super().__init__(daemon=True, name="sweep-coordinator")
        self.coordinator = coordinator
        self.ready = threading.Event()
        self.done = threading.Event()
        self.error: Optional[BaseException] = None
        self._stop_requested = threading.Event()

    def run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to the caller
            self.error = exc
        finally:
            self.ready.set()
            self.done.set()

    async def _main(self) -> None:
        await self.coordinator.start()
        self.ready.set()
        while not self._stop_requested.is_set():
            if await self.coordinator.wait_finished(timeout=0.1):
                break
        await self.coordinator.stop()

    def request_stop(self) -> None:
        self._stop_requested.set()


def spawn_worker(url: str, worker_id: str,
                 backend: Optional[str] = None) -> subprocess.Popen:
    """Start one ``repro worker`` subprocess pointed at ``url``."""
    command = [sys.executable, "-m", "repro", "worker",
               "--url", url, "--id", worker_id]
    if backend is not None:
        command += ["--backend", backend]
    return subprocess.Popen(command)


def run_distributed(specs: Iterable[RunSpec], *, jobs: int,
                    store: Optional[ResultStore] = None,
                    backend: Optional[str] = None,
                    settings: Optional[ServeSettings] = None,
                    manifest_path: Optional[str] = None,
                    progress=None) -> DistributedOutcome:
    """Run ``specs`` through a localhost coordinator + ``jobs`` worker
    subprocesses; see the module docstring for the failure contract."""
    spec_list = list(specs)
    coordinator = Coordinator(spec_list, store=store, backend=backend,
                              settings=settings,
                              manifest_path=manifest_path,
                              progress=progress)
    thread = _CoordinatorThread(coordinator)
    thread.start()
    thread.ready.wait(timeout=30.0)
    if thread.error is not None or coordinator.url is None:
        raise DistributedUnavailable(
            f"coordinator failed to start: {thread.error!r}")
    workers: List[subprocess.Popen] = []
    try:
        if not coordinator.queue.finished:
            for index in range(max(1, jobs)):
                try:
                    workers.append(spawn_worker(coordinator.url,
                                                f"local-{index}",
                                                backend))
                except OSError as exc:
                    if not workers:
                        raise DistributedUnavailable(
                            f"could not spawn workers: {exc}") from exc
                    break
        while not thread.done.is_set():
            if thread.done.wait(timeout=0.2):
                break
            if (workers
                    and all(w.poll() is not None for w in workers)
                    and not coordinator.queue.finished):
                # Every worker died with work outstanding: abort the
                # distributed run and let run_sweep finish locally.
                break
    finally:
        thread.request_stop()
        thread.join(timeout=30.0)
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait(timeout=5.0)
    if thread.error is not None:
        raise DistributedUnavailable(
            f"coordinator crashed: {thread.error!r}")
    status = coordinator.status()
    if status["quarantine"]:
        raise QuarantinedError(status["quarantine"])
    remaining = [spec for spec in spec_list
                 if spec not in coordinator.results]
    return DistributedOutcome(
        results=dict(coordinator.results),
        provenance=dict(coordinator.provenance),
        simulated=coordinator.simulated,
        cache_hits=coordinator.cache_hits,
        status=status,
        remaining=remaining)
