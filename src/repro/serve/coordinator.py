"""The asyncio sweep coordinator and its HTTP/JSON worker protocol.

The coordinator owns a campaign: a :class:`JobQueue` of content-keyed
sweep points, a :class:`ResultStore` primed for TTL-free dedup, and a
tiny stdlib-only HTTP server workers pull jobs from.  All queue
mutations happen on the event loop, so the state machine needs no
locks.  Protocol (all bodies JSON, ``Connection: close``):

``POST /claim``      ``{"worker": id}`` ->
    ``{"job": {"key", "spec", "attempt", "lease_s", "backend"}}`` or
    ``{"job": null, "done": bool, "retry_in": seconds}``
``POST /complete``   ``{"worker", "key", "result": <to_dict>}`` ->
    ``{"accepted": bool, "done": bool}`` -- ``accepted`` is false when
    the worker's lease was lost (the job was reassigned); the first
    accepted completion wins and later ones are ignored.
``POST /fail``       ``{"worker", "key", "error": text}`` ->
    ``{"state": "pending" | "quarantined" | ..., "done": bool}``
``POST /heartbeat``  ``{"worker", "key"}`` -> ``{"ok": bool}`` --
    ``false`` tells the worker its lease is gone: abandon the job.
``GET /status``      -> the full campaign status document (counts,
    cache accounting, per-worker activity, quarantined jobs + errors).

Fault tolerance: claims carry a lease that workers renew by heartbeat;
an expired lease re-queues the job with exponential backoff, and after
``max_attempts`` total failures the job is quarantined with its last
error kept for ``/status``.  Completed results are written to the
:class:`ResultStore` *immediately*, so a coordinator killed mid-campaign
has durably persisted everything it finished; the manifest written on
shutdown (see :mod:`repro.serve.manifest`) records the campaign itself,
and a resumed coordinator serves every previously completed point as a
cache hit.

This module (with :mod:`repro.serve.worker` and
:mod:`repro.serve.executor`) legitimately reads the wall clock -- lease
deadlines are host time, not simulated time -- and is exempted from the
SIM007 lint accordingly.  Simulated time never appears here.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments.sweep import ResultStore, RunSpec
from repro.serve import manifest as manifest_mod
from repro.serve.queue import (CACHE_PRODUCER, JobQueue, QueuePolicy,
                               QUARANTINED)
from repro.serve.wire import spec_to_dict
from repro.sim.stats import SimulationResult

#: Seconds an idle worker is told to wait before re-polling ``/claim``.
DEFAULT_RETRY_IN = 0.25


@dataclass
class ServeSettings:
    """Coordinator-side campaign knobs."""

    host: str = "127.0.0.1"
    port: int = 0
    policy: QueuePolicy = None  # type: ignore[assignment]
    #: Seconds between lease-expiry sweeps / progress refreshes.
    tick: float = 0.25
    #: Seconds a graceful shutdown waits for in-flight jobs to land.
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = QueuePolicy()


class Coordinator:
    """One campaign: queue + store + protocol server + manifest."""

    def __init__(self, specs: Iterable[RunSpec], *,
                 store: Optional[ResultStore] = None,
                 backend: Optional[str] = None,
                 settings: Optional[ServeSettings] = None,
                 manifest_path: Union[str, None] = None,
                 quarantined: Optional[Dict[str, Dict]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 on_result: Optional[Callable[[RunSpec, SimulationResult],
                                              None]] = None) -> None:
        self.settings = settings or ServeSettings()
        self.store = store
        self.backend = backend
        self.manifest_path = manifest_path
        self.queue = JobQueue(self.settings.policy)
        self.specs_by_key: Dict[str, RunSpec] = {}
        self.results: Dict[RunSpec, SimulationResult] = {}
        #: spec -> "cache" or the id of the worker that simulated it.
        self.provenance: Dict[RunSpec, str] = {}
        self.cache_hits = 0
        self.simulated = 0
        self._progress = progress
        self._on_result = on_result
        self._workers: Dict[str, Dict] = {}
        self._clock = time.monotonic
        self._last_line = ""
        self._stopping = False
        self._finished_event: Optional[asyncio.Event] = None
        self._connections: List[asyncio.StreamWriter] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._watcher: Optional[asyncio.Task] = None
        self.url: Optional[str] = None
        self._prime(list(specs), quarantined or {})

    # -- campaign setup ------------------------------------------------

    def _prime(self, specs: List[RunSpec],
               quarantined: Dict[str, Dict]) -> None:
        """Enqueue every point, serving warm ones from the store and
        restoring quarantine records from a resumed manifest."""
        for spec in specs:
            key = spec.cache_key()
            if key in self.specs_by_key:
                continue
            self.specs_by_key[key] = spec
            self.queue.add(key, spec_to_dict(spec))
            cached = self.store.load(key) if self.store else None
            if cached is not None:
                self.queue.mark_done(key, CACHE_PRODUCER)
                self.results[spec] = cached
                self.provenance[spec] = CACHE_PRODUCER
                self.cache_hits += 1
            elif key in quarantined:
                record = quarantined[key]
                self.queue.mark_quarantined(key, record["attempts"],
                                            record.get("error"))

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the protocol server; returns the bound (host, port)."""
        self._finished_event = asyncio.Event()
        if self.queue.finished:
            self._finished_event.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host,
            self.settings.port)
        host, port = self._server.sockets[0].getsockname()[:2]
        self.url = f"http://{host}:{port}"
        self._watcher = asyncio.ensure_future(self._watch())
        self._emit_progress(force=True)
        return host, port

    async def wait_finished(self,
                            timeout: Optional[float] = None) -> bool:
        """Block until the campaign is terminal (or ``timeout``)."""
        if self._finished_event is None:
            raise RuntimeError("coordinator not started; call start() "
                               "before wait_finished()")
        if timeout is None:
            await self._finished_event.wait()
            return True
        try:
            await asyncio.wait_for(self._finished_event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def request_stop(self) -> None:
        """Begin a graceful shutdown: claims now answer ``done`` so
        workers drain, and :meth:`stop` persists the manifest."""
        self._stopping = True

    async def stop(self) -> None:
        """Graceful shutdown: wait briefly for in-flight jobs, persist
        the manifest, and close the server."""
        self._stopping = True
        deadline = self._clock() + self.settings.drain_timeout
        while (self.queue.counts().leased
               and self._clock() < deadline):
            await asyncio.sleep(min(0.05, self.settings.tick))
        self.write_manifest()
        if self._watcher is not None:
            self._watcher.cancel()
            self._watcher = None
        if self._server is not None:
            self._server.close()
            # Closing the listener does not close accepted connections;
            # drop any idle keep-waiting readers (a worker's in-flight
            # /claim) so their handler tasks end cleanly instead of
            # being cancelled at loop teardown.
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            await asyncio.sleep(0)
            self._server = None

    def write_manifest(self) -> None:
        if self.manifest_path:
            manifest_mod.write_manifest(self.manifest_path, self.queue,
                                        self.specs_by_key, self.backend)

    async def _watch(self) -> None:
        """Periodic lease reaping + progress streaming."""
        while True:
            reaped = self.queue.expire(self._clock())
            if reaped or self.queue.finished:
                self._check_finished()
            self._emit_progress()
            await asyncio.sleep(self.settings.tick)

    def _check_finished(self) -> None:
        if (self._finished_event is not None and self.queue.finished):
            self._finished_event.set()

    # -- progress streaming --------------------------------------------

    def _emit_progress(self, force: bool = False) -> None:
        if self._progress is None:
            return
        counts = self.queue.counts()
        line = (f"progress: {counts.done}/{counts.total} done "
                f"({counts.leased} inflight, {counts.pending} pending, "
                f"{counts.quarantined} quarantined) | "
                f"cache hits {self.cache_hits} | "
                f"simulated {self.simulated}")
        if force or line != self._last_line:
            self._last_line = line
            self._progress(line)

    # -- protocol ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.append(writer)
        try:
            try:
                request = await _read_http_request(reader)
                if request is None:
                    return
                method, path, body = request
                status, payload = self._dispatch(method, path, body)
            except (asyncio.CancelledError, asyncio.IncompleteReadError,
                    ConnectionError):
                return  # connection dropped (worker died / shutdown)
            except Exception as exc:  # malformed request; keep serving
                status, payload = 400, {"error": repr(exc)}
            try:
                blob = json.dumps(payload).encode()
                reason = {200: "OK", 400: "Bad Request",
                          404: "Not Found"}.get(status, "OK")
                writer.write(
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(blob)}\r\n"
                    f"Connection: close\r\n\r\n".encode() + blob)
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass
        finally:
            writer.close()
            if writer in self._connections:
                self._connections.remove(writer)

    def _dispatch(self, method: str, path: str,
                  body: Dict) -> Tuple[int, Dict]:
        if method == "GET" and path == "/status":
            return 200, self.status()
        if method != "POST":
            return 404, {"error": f"unknown route {method} {path}"}
        handlers = {
            "/claim": self._handle_claim,
            "/complete": self._handle_complete,
            "/fail": self._handle_fail,
            "/heartbeat": self._handle_heartbeat,
        }
        handler = handlers.get(path)
        if handler is None:
            return 404, {"error": f"unknown route {method} {path}"}
        return 200, handler(body)

    def _note_worker(self, worker: str) -> Dict:
        record = self._workers.setdefault(
            worker, {"claims": 0, "completed": 0, "failed": 0})
        return record

    def _handle_claim(self, body: Dict) -> Dict:
        worker = body["worker"]
        record = self._note_worker(worker)
        if self._stopping:
            return {"job": None, "done": True, "retry_in": 0.0}
        job = self.queue.claim(worker, self._clock())
        self._check_finished()
        if job is None:
            runnable_at = self.queue.next_runnable_at()
            retry_in = DEFAULT_RETRY_IN
            if runnable_at is not None:
                retry_in = max(0.0, min(runnable_at - self._clock(),
                                        self.settings.policy.
                                        lease_timeout))
            return {"job": None, "done": self.queue.finished,
                    "retry_in": retry_in}
        record["claims"] += 1
        return {"job": {
            "key": job.key,
            "spec": job.payload,
            "attempt": job.attempts,
            "lease_s": self.settings.policy.lease_timeout,
            "backend": self.backend,
        }}

    def _handle_complete(self, body: Dict) -> Dict:
        worker, key = body["worker"], body["key"]
        record = self._note_worker(worker)
        accepted = self.queue.complete(worker, key)
        if accepted:
            record["completed"] += 1
            spec = self.specs_by_key[key]
            result = SimulationResult.from_dict(body["result"])
            self.results[spec] = result
            self.provenance[spec] = worker
            self.simulated += 1
            if self.store is not None:
                self.store.save(key, spec, result, backend=self.backend)
            if self._on_result is not None:
                self._on_result(spec, result)
            self._check_finished()
            self._emit_progress()
        return {"accepted": accepted, "done": self.queue.finished}

    def _handle_fail(self, body: Dict) -> Dict:
        worker, key = body["worker"], body["key"]
        record = self._note_worker(worker)
        record["failed"] += 1
        state = self.queue.fail(worker, key, body.get("error", ""),
                                self._clock())
        self._check_finished()
        self._emit_progress()
        return {"state": state, "done": self.queue.finished}

    def _handle_heartbeat(self, body: Dict) -> Dict:
        ok = self.queue.heartbeat(body["worker"], body["key"],
                                  self._clock())
        return {"ok": ok}

    # -- status --------------------------------------------------------

    def status(self) -> Dict:
        counts = self.queue.counts()
        quarantined = [
            {"key": job.key,
             "label": self.specs_by_key[job.key].scheme.label,
             "attempts": job.attempts,
             "error": job.error}
            for job in self.queue.jobs() if job.state == QUARANTINED
        ]
        total = counts.total
        return {
            "total": total,
            "done": counts.done,
            "pending": counts.pending,
            "inflight": counts.leased,
            "quarantined": counts.quarantined,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "cache_hit_ratio": (self.cache_hits / total) if total else 0.0,
            "finished": self.queue.finished,
            "stopping": self._stopping,
            "backend": self.backend,
            "workers": dict(self._workers),
            "quarantine": quarantined,
        }


async def _read_http_request(
        reader: asyncio.StreamReader
) -> Optional[Tuple[str, str, Dict]]:
    """Parse one ``Connection: close`` HTTP/1.1 request; returns
    ``(method, path, json body)`` or ``None`` on an empty connection."""
    line = await reader.readline()
    if not line.strip():
        return None
    method, path, _ = line.decode("latin-1").split(None, 2)
    headers: Dict[str, str] = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body: Dict = {}
    if length:
        raw = await reader.readexactly(length)
        body = json.loads(raw)
    return method.upper(), path, body
