"""JSON wire form of a sweep point.

The worker protocol ships :class:`RunSpec` objects over HTTP, and the
campaign manifest persists them across coordinator restarts.  Both use
this round trip, whose contract is stronger than "same fields": the
reconstructed spec must produce the **same cache key**, because the
key is how the coordinator dedups jobs and how completed results are
found in the :class:`ResultStore` after a resume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.experiments.sweep import RunSpec, Scheme


def spec_to_dict(spec: RunSpec) -> Dict:
    """JSON-ready form of one sweep point."""
    scheme = dataclasses.asdict(spec.scheme)
    # Tuples of (field, value) pairs -> lists for JSON; values are the
    # scalar ClipConfig field types (int/float/bool).
    scheme["clip_overrides"] = [list(pair)
                                for pair in spec.scheme.clip_overrides]
    return {
        "scheme": scheme,
        "mix": list(spec.mix),
        "channels": spec.channels,
        "num_cores": spec.num_cores,
        "sim_instructions": spec.sim_instructions,
    }


def spec_from_dict(payload: Dict) -> RunSpec:
    """Rebuild a :class:`RunSpec` from :func:`spec_to_dict` output."""
    fields = dict(payload["scheme"])
    # Back to a mapping so Scheme.__post_init__ re-canonicalises the
    # pairs into its sorted hashable tuple form.
    fields["clip_overrides"] = dict(
        (key, value) for key, value in fields.get("clip_overrides", []))
    return RunSpec(
        scheme=Scheme(**fields),
        mix=tuple(payload["mix"]),
        channels=payload["channels"],
        num_cores=payload["num_cores"],
        sim_instructions=payload["sim_instructions"],
    )
