"""Resumable campaign manifests.

A manifest is the durable record of *what a campaign is* -- the full
spec list plus enough job state to restart without losing work::

    {
      "version": 1,
      "schema": <CACHE_SCHEMA_VERSION>,
      "backend": "event" | "batch" | null,
      "jobs": [
        {"spec": {<wire form>}, "state": "pending" | "done" |
         "quarantined", "attempts": N, "error": null | "...",
         "producer": null | "cache" | "<worker id>"},
        ...
      ]
    }

Results are deliberately **not** in the manifest: completed points live
in the content-addressed :class:`ResultStore`, written at ``/complete``
time, so a killed coordinator has already persisted everything it
finished.  On resume the coordinator re-primes from the store -- every
previously completed point becomes a cache hit with zero recomputation
-- and only ``quarantined`` records are restored verbatim (so a poison
job is not retried forever across restarts).  ``leased`` jobs are
demoted to ``pending``: their workers are gone.

Writes are atomic (unique temp file + ``os.replace``) so a crash while
persisting never leaves a truncated manifest behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.sweep import CACHE_SCHEMA_VERSION, RunSpec
from repro.serve.queue import DONE, QUARANTINED, JobQueue
from repro.serve.wire import spec_from_dict, spec_to_dict

MANIFEST_VERSION = 1


def write_manifest(path: Union[str, Path], queue: JobQueue,
                   specs_by_key: Dict[str, RunSpec],
                   backend: Optional[str]) -> None:
    """Atomically persist the campaign state for a later resume."""
    path = Path(path)
    jobs: List[Dict] = []
    for job in queue.jobs():
        state = job.state
        if state not in (DONE, QUARANTINED):
            state = "pending"
        jobs.append({
            "spec": spec_to_dict(specs_by_key[job.key]),
            "state": state,
            "attempts": job.attempts,
            "error": job.error,
            "producer": job.producer,
        })
    payload = {
        "version": MANIFEST_VERSION,
        "schema": CACHE_SCHEMA_VERSION,
        "backend": backend,
        "jobs": jobs,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_manifest(path: Union[str, Path]) -> Dict:
    """Parse a manifest into resumable campaign state.

    Returns ``{"specs": [RunSpec, ...], "backend": ...,
    "quarantined": {key: {"attempts": N, "error": ...}}}``.  A manifest
    written under a different :data:`CACHE_SCHEMA_VERSION` still
    resumes -- its specs re-key under the current schema and previously
    completed points simply miss the cache and re-run.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {payload.get('version')!r} "
            f"in {path} (expected {MANIFEST_VERSION})")
    specs: List[RunSpec] = []
    quarantined: Dict[str, Dict] = {}
    for record in payload["jobs"]:
        spec = spec_from_dict(record["spec"])
        specs.append(spec)
        if record["state"] == QUARANTINED:
            quarantined[spec.cache_key()] = {
                "attempts": record.get("attempts", 0),
                "error": record.get("error"),
            }
    return {
        "specs": specs,
        "backend": payload.get("backend"),
        "quarantined": quarantined,
    }
