"""The synchronous sweep worker.

A worker is a plain process that pulls jobs from a coordinator over
the HTTP/JSON protocol (see :mod:`repro.serve.coordinator`), simulates
them, and posts the ``SimulationResult.to_dict`` payload back:

1. ``POST /claim``  -- get a job (spec wire form + lease length) or an
   idle/done hint;
2. while simulating, a daemon heartbeat thread renews the lease every
   ``lease_s / 3`` seconds; a rejected heartbeat means the lease was
   reassigned, so the result is still posted but the coordinator will
   (correctly) refuse it;
3. ``POST /complete`` on success, ``POST /fail`` with the traceback on
   any exception -- the coordinator decides retry vs quarantine.

Workers are stateless and interchangeable: any number may point at one
coordinator, locally or from another host, and claiming is pull-based
work stealing.  When the coordinator reports the campaign ``done`` (or
disappears entirely) the loop exits.

Wall-clock use (lease pacing, idle polling) is deliberate and exempt
from SIM007: nothing here touches simulated time.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import traceback
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional

from repro.serve.wire import spec_from_dict

#: Consecutive coordinator connection failures before the worker gives
#: up (the coordinator is gone, not just busy).
MAX_CONNECT_FAILURES = 5
#: Idle poll floor/ceiling, seconds.
MIN_POLL = 0.05
MAX_POLL = 2.0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _post(url: str, path: str, payload: Dict,
          timeout: float = 10.0) -> Dict:
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def fetch_status(url: str, timeout: float = 10.0) -> Dict:
    """``GET /status`` -- also used by tests and ``repro serve``."""
    with urllib.request.urlopen(url + "/status",
                                timeout=timeout) as response:
        return json.loads(response.read())


def default_executor(spec_payload: Dict,
                     backend: Optional[str]) -> Dict:
    """Simulate one wire-form spec; returns the result dict."""
    from repro.experiments.sweep import execute_spec
    return execute_spec(spec_from_dict(spec_payload), backend)


class _Heartbeat(threading.Thread):
    """Renews one job's lease until stopped; remembers a rejection."""

    def __init__(self, url: str, worker_id: str, key: str,
                 interval: float) -> None:
        super().__init__(daemon=True)
        self._url = url
        self._worker_id = worker_id
        self._key = key
        self._interval = interval
        self._stop = threading.Event()
        self.lost = False

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                ok = _post(self._url, "/heartbeat",
                           {"worker": self._worker_id,
                            "key": self._key}).get("ok", False)
            except (urllib.error.URLError, OSError, ValueError):
                continue  # transient; the lease may still be renewed later
            if not ok:
                self.lost = True
                return

    def stop(self) -> None:
        self._stop.set()


def worker_loop(url: str, *,
                worker_id: Optional[str] = None,
                backend: Optional[str] = None,
                executor: Optional[Callable[[Dict, Optional[str]],
                                            Dict]] = None,
                max_jobs: Optional[int] = None,
                progress: Optional[Callable[[str], None]] = None) -> int:
    """Pull and run jobs from ``url`` until the campaign is done.

    ``executor`` maps ``(spec wire dict, backend)`` to a result dict;
    the default simulates via :func:`execute_spec`.  ``max_jobs`` caps
    how many jobs this worker runs (for tests).  Returns a process exit
    code: 0 when the campaign finished or the worker drained cleanly,
    1 when the coordinator became unreachable.
    """
    url = url.rstrip("/")
    worker_id = worker_id or default_worker_id()
    executor = executor or default_executor
    connect_failures = 0
    completed = 0
    while True:
        try:
            reply = _post(url, "/claim", {"worker": worker_id})
        except (urllib.error.URLError, OSError, ValueError):
            connect_failures += 1
            if connect_failures >= MAX_CONNECT_FAILURES:
                return 1
            time.sleep(MIN_POLL * (2 ** connect_failures))
            continue
        connect_failures = 0
        job = reply.get("job")
        if job is None:
            if reply.get("done"):
                return 0
            time.sleep(min(MAX_POLL,
                           max(MIN_POLL, reply.get("retry_in", 0.0))))
            continue
        key = job["key"]
        lease_s = float(job.get("lease_s", 30.0))
        job_backend = backend if backend is not None \
            else job.get("backend")
        heartbeat = _Heartbeat(url, worker_id, key,
                               interval=max(MIN_POLL, lease_s / 3.0))
        heartbeat.start()
        try:
            result = executor(job["spec"], job_backend)
        except Exception:
            heartbeat.stop()
            try:
                reply = _post(url, "/fail",
                              {"worker": worker_id, "key": key,
                               "error":
                               traceback.format_exc(limit=20)})
            except (urllib.error.URLError, OSError, ValueError):
                return 1
            if reply.get("done"):
                return 0
        else:
            heartbeat.stop()
            try:
                reply = _post(url, "/complete",
                              {"worker": worker_id, "key": key,
                               "result": result}, timeout=30.0)
            except (urllib.error.URLError, OSError, ValueError):
                return 1
            completed += 1
            if progress is not None:
                accepted = reply.get("accepted")
                progress(f"{worker_id}: {key[:12]} "
                         f"{'completed' if accepted else 'superseded'}")
            if reply.get("done"):
                # Our own report finished the campaign; don't race the
                # coordinator's shutdown with another /claim.
                return 0
        if max_jobs is not None and completed >= max_jobs:
            return 0
