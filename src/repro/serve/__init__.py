"""Distributed sweep service: coordinator, workers, and campaigns.

``repro.serve`` promotes the single-host :func:`repro.experiments.sweep.
run_sweep` into a serving system (see ``docs/serving.md``):

* :mod:`repro.serve.queue`       -- the pure job-queue state machine
  (lease timeouts, heartbeat renewal, exponential-backoff retries,
  poison-job quarantine).  No clock, no I/O: every transition takes an
  explicit ``now``, which is what makes the fuzz suite deterministic.
* :mod:`repro.serve.wire`        -- JSON wire form of :class:`RunSpec`
  so jobs cross the HTTP boundary without losing their cache key.
* :mod:`repro.serve.manifest`    -- the resumable campaign manifest a
  coordinator persists on shutdown.
* :mod:`repro.serve.coordinator` -- the asyncio coordinator serving the
  stdlib-only HTTP/JSON worker protocol (``/claim``, ``/complete``,
  ``/fail``, ``/heartbeat``, ``/status``).
* :mod:`repro.serve.worker`      -- the synchronous worker loop that
  pulls jobs, renews its leases from a heartbeat thread, and posts
  results (or failures) back.
* :mod:`repro.serve.executor`    -- the in-process glue behind
  ``run_sweep(executor="distributed")``: coordinator thread + N worker
  subprocesses, with transparent fallback to local execution.

Everything here is standard library only; simulation results cross the
wire via the stable ``SimulationResult.to_dict``/``from_dict`` round
trip, so a distributed point is bit-identical to a serial one.
"""

from repro.serve.coordinator import Coordinator, ServeSettings
from repro.serve.executor import (DistributedUnavailable, QuarantinedError,
                                  run_distributed)
from repro.serve.manifest import load_manifest, write_manifest
from repro.serve.queue import (DONE, LEASED, PENDING, QUARANTINED, Job,
                               JobQueue, QueuePolicy)
from repro.serve.wire import spec_from_dict, spec_to_dict
from repro.serve.worker import worker_loop

__all__ = [
    "Coordinator", "ServeSettings", "DistributedUnavailable",
    "QuarantinedError", "run_distributed", "load_manifest",
    "write_manifest", "Job", "JobQueue", "QueuePolicy", "PENDING",
    "LEASED", "DONE", "QUARANTINED", "spec_from_dict", "spec_to_dict",
    "worker_loop",
]
