"""The job-queue state machine at the heart of the sweep coordinator.

A campaign is a set of :class:`Job` records keyed by the point's
content hash (:meth:`RunSpec.cache_key`), each carrying an opaque JSON
payload (the wire form of the spec).  Jobs move through four states::

    pending ----claim----> leased ---complete---> done
       ^                      |
       |   fail / lease expiry, attempts < max_attempts (backoff)
       +----------------------+
                              |   attempts >= max_attempts
                              +--------------------------> quarantined

Contract (enforced here, fuzz-tested in ``tests/test_serve_queue.py``):

* a job completes at most once -- a second ``complete`` (stale worker,
  expired lease, duplicate request) is rejected and has no effect;
* no job is ever lost -- every key stays in exactly one of the four
  states until the queue is :attr:`finished` (all done-or-quarantined);
* only the worker holding the current lease may complete, fail, or
  renew a job; claims after its lease expired supersede it.

The queue is **pure**: every transition takes an explicit ``now``
timestamp and the class never reads a clock, touches a socket, or does
I/O.  The coordinator owns the wall clock; tests drive simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"

#: Producer label for jobs satisfied by the result store, not a worker.
CACHE_PRODUCER = "cache"


@dataclass
class QueuePolicy:
    """Fault-tolerance knobs shared by coordinator and queue."""

    #: Seconds a claim stays valid without a heartbeat.
    lease_timeout: float = 30.0
    #: Total attempts (first run + retries) before quarantine.
    max_attempts: int = 3
    #: First retry delay; doubles per failure up to :attr:`backoff_cap`.
    backoff_base: float = 0.5
    backoff_cap: float = 30.0

    def backoff(self, attempts: int) -> float:
        """Delay before the next attempt after ``attempts`` failures."""
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** max(0, attempts - 1)))


@dataclass
class Job:
    """One sweep point's lifecycle record."""

    key: str
    payload: Dict
    state: str = PENDING
    #: Failures so far (lease expiries count as failures).
    attempts: int = 0
    #: Earliest time the job may be claimed again (retry backoff).
    not_before: float = 0.0
    lease_worker: Optional[str] = None
    lease_expiry: float = 0.0
    #: Last failure (traceback text or lease-expiry note).
    error: Optional[str] = None
    #: Who produced the result: a worker id, or ``"cache"``.
    producer: Optional[str] = None

    def snapshot(self) -> Dict:
        """JSON-ready view for ``/status`` and the campaign manifest."""
        return {
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.lease_worker,
            "producer": self.producer,
            "error": self.error,
        }


@dataclass
class QueueCounts:
    pending: int = 0
    leased: int = 0
    done: int = 0
    quarantined: int = 0

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done + self.quarantined


class JobQueue:
    """Ordered multi-worker job queue with leases, retries, quarantine.

    Jobs are claimed in insertion (sweep) order; any idle worker may
    claim any runnable job, which is the pull-based form of work
    stealing -- a fast worker drains the queue while a slow one is
    still on its first job.
    """

    def __init__(self, policy: Optional[QueuePolicy] = None) -> None:
        self.policy = policy or QueuePolicy()
        self._jobs: Dict[str, Job] = {}

    # -- population ----------------------------------------------------

    def add(self, key: str, payload: Dict) -> Job:
        """Enqueue one job; re-adding an existing key is a no-op."""
        job = self._jobs.get(key)
        if job is None:
            job = Job(key=key, payload=payload)
            self._jobs[key] = job
        return job

    def mark_done(self, key: str, producer: str) -> None:
        """Complete a job without a lease (cache hits at campaign
        start, resumed manifests)."""
        job = self._jobs[key]
        job.state = DONE
        job.producer = producer
        job.lease_worker = None

    def mark_quarantined(self, key: str, attempts: int,
                         error: Optional[str]) -> None:
        """Restore a quarantined job from a resumed manifest."""
        job = self._jobs[key]
        job.state = QUARANTINED
        job.attempts = attempts
        job.error = error

    # -- worker protocol -----------------------------------------------

    def claim(self, worker: str, now: float) -> Optional[Job]:
        """Lease the first runnable job to ``worker``, or ``None``.

        Expired leases are reaped first, so a claim arriving after a
        worker died re-issues that worker's job without waiting for
        the coordinator's periodic sweep.
        """
        self.expire(now)
        for job in self._jobs.values():
            if job.state == PENDING and job.not_before <= now:
                job.state = LEASED
                job.lease_worker = worker
                job.lease_expiry = now + self.policy.lease_timeout
                return job
        return None

    def heartbeat(self, worker: str, key: str, now: float) -> bool:
        """Renew ``worker``'s lease; ``False`` means the lease is gone
        (expired/reassigned) and the worker must abandon the job."""
        job = self._jobs.get(key)
        if (job is None or job.state != LEASED
                or job.lease_worker != worker):
            return False
        job.lease_expiry = now + self.policy.lease_timeout
        return True

    def complete(self, worker: str, key: str) -> bool:
        """Transition ``leased -> done``; at most one completion ever
        succeeds per job.  Stale completions (lost lease, already done)
        return ``False`` and change nothing."""
        job = self._jobs.get(key)
        if (job is None or job.state != LEASED
                or job.lease_worker != worker):
            return False
        job.state = DONE
        job.producer = worker
        job.lease_worker = None
        job.error = None
        return True

    def fail(self, worker: str, key: str, error: str, now: float) -> str:
        """Record a worker-reported failure; returns the job's new
        state (``pending`` for a retry, ``quarantined``, or its current
        state when the report is stale)."""
        job = self._jobs.get(key)
        if job is None:
            return "unknown"
        if job.state != LEASED or job.lease_worker != worker:
            return job.state
        self._retry(job, error, now)
        return job.state

    def expire(self, now: float) -> List[str]:
        """Reap leases whose deadline passed; each expiry counts as one
        failed attempt (a job that kills every worker that touches it
        still converges to quarantine).  Returns the reaped keys."""
        reaped = []
        for job in self._jobs.values():
            if job.state == LEASED and job.lease_expiry < now:
                self._retry(job,
                            f"lease expired (worker "
                            f"{job.lease_worker!r} missed its "
                            f"heartbeat)", now)
                reaped.append(job.key)
        return reaped

    def _retry(self, job: Job, error: str, now: float) -> None:
        job.attempts += 1
        job.error = error
        job.lease_worker = None
        if job.attempts >= self.policy.max_attempts:
            job.state = QUARANTINED
        else:
            job.state = PENDING
            job.not_before = now + self.policy.backoff(job.attempts)

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def get(self, key: str) -> Optional[Job]:
        return self._jobs.get(key)

    def jobs(self) -> List[Job]:
        """All jobs in insertion (sweep) order."""
        return list(self._jobs.values())

    def counts(self) -> QueueCounts:
        counts = QueueCounts()
        for job in self._jobs.values():
            if job.state == PENDING:
                counts.pending += 1
            elif job.state == LEASED:
                counts.leased += 1
            elif job.state == DONE:
                counts.done += 1
            else:
                counts.quarantined += 1
        return counts

    @property
    def finished(self) -> bool:
        """Terminal: every job is done or quarantined."""
        return all(job.state in (DONE, QUARANTINED)
                   for job in self._jobs.values())

    def next_runnable_at(self) -> Optional[float]:
        """Earliest ``not_before`` over pending jobs (backoff hint for
        idle workers), or ``None`` when nothing is pending."""
        times = [job.not_before for job in self._jobs.values()
                 if job.state == PENDING]
        return min(times) if times else None
