"""Synthetic workload generation.

Each workload is described by a :class:`WorkloadSpec`: a weighted set of
memory *streams* plus filler compute/branch behaviour.  Streams encode the
access-pattern archetypes that matter for the paper's mechanisms:

``stride``
    Constant-stride loads (prefetch-friendly; Berti/IPCP learn these).
``pointer``
    Pointer chasing: each load's address depends on the previous load's
    destination register, serialising misses (low MLP; mcf-like; critical
    but hard to prefetch accurately).
``spatial``
    Region-footprint accesses with a recurring per-stream offset pattern
    (Bingo/SPP-friendly).
``random``
    Uniformly random lines in a footprint (unprefetchable noise).
``hotcold``
    A branch-correlated load: one IP whose address falls in a small hot
    region or a large cold region depending on the preceding conditional
    branch.  This produces *dynamic-critical* IPs -- the same IP stalls the
    ROB only on the cold path -- which IP-indexed predictors mispredict and
    CLIP's branch-history signature captures (paper section 4.2).
``stream_store``
    Streaming stores (lbm-like) that generate writeback bandwidth pressure.

Generation is fully deterministic given (spec, core id, length).
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.trace.record import Op, TraceRecord

_LINE = 64
#: General-purpose destination registers rotate through 0..23; registers
#: 24..31 are reserved as per-stream pointer-chase registers so that a
#: chased value is never clobbered by unrelated filler instructions.
_REG_POOL = 24
_CHASE_REG_BASE = 24
_CHASE_REGS = 8


def _stable_seed(*parts: object) -> int:
    digest = hashlib.sha256("/".join(str(p) for p in parts).encode())
    return int.from_bytes(digest.digest()[:8], "little")


@dataclass
class StreamSpec:
    """One memory access stream inside a workload."""

    kind: str
    weight: float = 1.0
    footprint_kib: int = 8192
    stride: int = _LINE
    region_bytes: int = 2048
    spatial_density: float = 0.5
    hot_footprint_kib: int = 16
    hot_probability: float = 0.5
    #: Dependent ALU instructions following each load.
    dep_alu: int = 2
    #: Loop-branch bias for this stream's loop branch.
    branch_bias: float = 0.99
    #: Number of distinct load IPs this stream rotates through.
    ips: int = 1

    def __post_init__(self) -> None:
        valid = {"stride", "pointer", "spatial", "random", "hotcold",
                 "stream_store"}
        if self.kind not in valid:
            raise ValueError(f"unknown stream kind {self.kind!r}")
        if self.footprint_kib < 1:
            raise ValueError("footprint must be at least 1 KiB")
        if self.weight <= 0:
            raise ValueError("stream weight must be positive")


@dataclass
class WorkloadSpec:
    """A named workload: streams plus filler-instruction behaviour."""

    name: str
    streams: List[StreamSpec] = field(default_factory=list)
    #: Probability that a bundle slot is a standalone ALU filler bundle.
    alu_filler_weight: float = 1.0
    #: Number of phases; weights rotate between phases.
    phases: int = 1
    #: Instructions per phase before weights rotate.
    phase_length: int = 6000

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError(f"workload {self.name!r} has no streams")
        if self.phases < 1:
            raise ValueError("phases must be >= 1")


class _StreamState:
    """Mutable per-stream generation state."""

    __slots__ = ("spec", "base_ip", "base_addr", "cursor", "last_dst",
                 "region_base", "region_offsets", "region_pos", "hot_base",
                 "chase_reg", "pattern")

    def __init__(self, spec: StreamSpec, index: int, base_ip: int,
                 rng: random.Random) -> None:
        self.spec = spec
        self.base_ip = base_ip + index * 0x10000
        self.chase_reg = _CHASE_REG_BASE + index % _CHASE_REGS
        # Streams get disjoint address regions inside the workload space,
        # with a per-stream page-aligned jitter so bases do not all align
        # on the same power-of-two boundary (real heaps never do).
        jitter = (rng.randrange(1 << 14)) << 12
        self.base_addr = 0x1000_0000 + index * 0x4000_0000 + jitter
        self.cursor = 0
        self.last_dst: Optional[int] = None
        self.region_base = 0
        # Force a region pick on the first spatial emission.
        self.region_pos = 1 << 30
        self.hot_base = self.base_addr + 0x2000_0000
        # A fixed per-stream spatial footprint (recurs across regions).
        lines_per_region = max(1, spec.region_bytes // _LINE)
        wanted = max(1, int(lines_per_region * spec.spatial_density))
        self.region_offsets = sorted(
            rng.sample(range(lines_per_region), min(wanted, lines_per_region)))
        self.pattern = 0


class SyntheticWorkload:
    """Deterministic instruction-stream generator for one workload."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    def generate(self, length: int, core_id: int = 0) -> List[TraceRecord]:
        """Generate ``length`` instructions for one core.

        The same (spec, core_id, length prefix) always produces the same
        stream; different cores get different interleavings (SPEC-rate runs
        start all copies at the same SimPoint, but queueing noise decorrelates
        them -- a different RNG stream per core models that).
        """
        if length < 1:
            raise ValueError("length must be positive")
        rng = random.Random(_stable_seed(self.spec.name, core_id))
        base_ip = 0x400000 + (_stable_seed(self.spec.name) & 0xFFFF) * 0x100
        states = [
            _StreamState(spec, i, base_ip, rng)
            for i, spec in enumerate(self.spec.streams)
        ]
        out: List[TraceRecord] = []
        next_reg = 0
        phase = 0
        num_streams = len(states)
        # Per-phase cumulative weight tables, built once: the stream pick
        # below replicates ``rng.choices(range(n + 1), weights=w)[0]``
        # bit-for-bit (one rng.random() draw, bisect over the cumulative
        # weights) without rebuilding the weight lists every bundle.
        phase_tables = [self._phase_cum_weights(p)
                        for p in range(self.spec.phases)]
        phases = self.spec.phases
        phase_length = self.spec.phase_length
        while len(out) < length:
            if phases > 1:
                phase = (len(out) // phase_length) % phases
            cum_weights, total = phase_tables[phase]
            choice = bisect.bisect(cum_weights, rng.random() * total,
                                   0, num_streams)
            if choice == num_streams:
                next_reg = self._emit_filler(out, rng, base_ip, next_reg)
            else:
                next_reg = self._emit_bundle(
                    states[choice], out, rng, next_reg)
        del out[length:]
        return out

    def _phase_cum_weights(self, phase: int) -> tuple:
        """(cumulative weights, float total) for one phase's stream pick."""
        cum_weights = list(itertools.accumulate(self._phase_weights(phase)))
        total = cum_weights[-1] + 0.0
        if total <= 0.0:
            raise ValueError("Total of weights must be greater than zero")
        return cum_weights, total

    def _phase_weights(self, phase: int) -> List[float]:
        """Stream weights for ``phase``; phases rotate stream emphasis."""
        weights = [s.weight for s in self.spec.streams]
        if phase:
            rotation = phase % len(weights)
            weights = weights[rotation:] + weights[:rotation]
        return weights + [self.spec.alu_filler_weight]

    @staticmethod
    def _skewed_line(rng: random.Random, footprint: int) -> int:
        """Pick a line index with realistic skew: most irregular accesses
        (pointer chases, graph lookups) revisit a hot fraction of the
        structure rather than sweeping it uniformly."""
        span = max(1, footprint // _LINE)
        if rng.random() < 0.7:
            return rng.randrange(max(1, span // 16))
        return rng.randrange(span)

    def _emit_filler(self, out: List[TraceRecord], rng: random.Random,
                     base_ip: int, next_reg: int) -> int:
        dst = next_reg % _REG_POOL
        out.append(TraceRecord(base_ip + 0x8, Op.ALU, dst=dst))
        if rng.random() < 0.2:
            out.append(TraceRecord(base_ip + 0x10, Op.BRANCH,
                                   taken=rng.random() < 0.97,
                                   srcs=(dst,)))
        return next_reg + 1

    def _emit_bundle(self, state: _StreamState, out: List[TraceRecord],
                     rng: random.Random, next_reg: int) -> int:
        spec = state.spec
        footprint = spec.footprint_kib * 1024
        ip_slot = state.cursor % max(1, spec.ips)
        load_ip = state.base_ip + ip_slot * 0x20
        dst = next_reg % _REG_POOL
        next_reg += 1

        if spec.kind == "stride":
            address = state.base_addr + (state.cursor * spec.stride) % footprint
            out.append(TraceRecord(load_ip, Op.LOAD, address=address, dst=dst))
        elif spec.kind == "pointer":
            address = state.base_addr + self._skewed_line(rng, footprint) * _LINE
            srcs = (state.chase_reg,) if state.last_dst is not None else ()
            dst = state.chase_reg
            out.append(TraceRecord(load_ip, Op.LOAD, address=address,
                                   dst=dst, srcs=srcs))
            state.last_dst = dst
        elif spec.kind == "spatial":
            if state.region_pos >= len(state.region_offsets):
                state.region_pos = 0
                state.region_base = (state.base_addr
                                     + rng.randrange(footprint // spec.region_bytes)
                                     * spec.region_bytes)
            offset = state.region_offsets[state.region_pos]
            state.region_pos += 1
            address = state.region_base + offset * _LINE
            out.append(TraceRecord(load_ip, Op.LOAD, address=address, dst=dst))
        elif spec.kind == "random":
            address = state.base_addr + self._skewed_line(rng, footprint) * _LINE
            out.append(TraceRecord(load_ip, Op.LOAD, address=address, dst=dst))
        elif spec.kind == "hotcold":
            # Branch first; its outcome selects the hot or cold region for
            # the *same* load IP.  The branch is data-dependent (sourced from
            # the previous iteration's load) so it resolves late and its
            # outcome genuinely precedes the load in global branch history.
            take_hot = rng.random() < spec.hot_probability
            branch_srcs = (state.chase_reg,) if state.last_dst is not None else ()
            out.append(TraceRecord(state.base_ip + 0x4, Op.BRANCH,
                                   taken=take_hot, srcs=branch_srcs))
            if take_hot:
                hot_bytes = spec.hot_footprint_kib * 1024
                address = state.hot_base + rng.randrange(hot_bytes // _LINE) * _LINE
            else:
                address = state.base_addr + rng.randrange(footprint // _LINE) * _LINE
            dst = state.chase_reg
            out.append(TraceRecord(load_ip, Op.LOAD, address=address, dst=dst))
            state.last_dst = dst
        elif spec.kind == "stream_store":
            address = state.base_addr + (state.cursor * spec.stride) % footprint
            out.append(TraceRecord(load_ip, Op.LOAD, address=address, dst=dst))
            out.append(TraceRecord(load_ip + 0x4, Op.STORE,
                                   address=address, srcs=(dst,)))
        else:  # pragma: no cover - guarded by StreamSpec validation
            raise AssertionError(spec.kind)

        state.cursor += 1
        for i in range(spec.dep_alu):
            alu_dst = next_reg % _REG_POOL
            next_reg += 1
            out.append(TraceRecord(state.base_ip + 0x40 + i * 4, Op.ALU,
                                   dst=alu_dst, srcs=(dst,)))
        # Loop branch closing the bundle (predictable, biased taken).
        out.append(TraceRecord(state.base_ip + 0x60, Op.BRANCH,
                               taken=rng.random() < spec.branch_bias))
        return next_reg
