"""Static workload characterisation.

Answers, from a generated trace alone, the questions an adopter asks before
simulating: how memory-intensive is this workload, which access patterns
dominate, how many load IPs matter, and how deep are its dependence chains.
The same quantities justify the per-benchmark models in
``repro.trace.workloads`` (DESIGN.md section 2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.trace.record import Op, TraceRecord

_LINE_SHIFT = 6


@dataclass
class IpProfile:
    """Per-load-IP access behaviour."""

    ip: int
    accesses: int = 0
    dominant_delta: int = 0
    dominant_delta_share: float = 0.0
    unique_lines: int = 0

    @property
    def strided(self) -> bool:
        """Does one non-zero delta explain most of this IP's accesses?"""
        return self.dominant_delta != 0 and self.dominant_delta_share > 0.5


@dataclass
class WorkloadProfile:
    """Summary statistics of one instruction trace."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    #: Distinct 64B lines touched by memory operations.
    unique_lines: int = 0
    #: Address span (max - min) of memory operations, in bytes.
    footprint_span_bytes: int = 0
    #: Loads whose address depends on the previous load (chase links).
    dependent_loads: int = 0
    #: Fraction of load accesses covered by strided IPs.
    strided_load_share: float = 0.0
    #: Load IPs covering 90% of load accesses.
    hot_ip_count: int = 0
    ip_profiles: Dict[int, IpProfile] = field(default_factory=dict)

    @property
    def load_ratio(self) -> float:
        if not self.instructions:
            return 0.0
        return self.loads / self.instructions

    @property
    def reuse_factor(self) -> float:
        """Accesses per unique line; ~1 means streaming, high means hot."""
        memory_ops = self.loads + self.stores
        if not self.unique_lines:
            return 0.0
        return memory_ops / self.unique_lines


def profile_trace(records: Sequence[TraceRecord]) -> WorkloadProfile:
    """Characterise a trace; see :class:`WorkloadProfile`."""
    profile = WorkloadProfile(instructions=len(records))
    lines = set()
    addresses: List[int] = []
    per_ip_addresses: Dict[int, List[int]] = {}
    for record in records:
        if record.op == Op.LOAD:
            profile.loads += 1
            if record.srcs and record.dst in record.srcs:
                profile.dependent_loads += 1
            per_ip_addresses.setdefault(record.ip, []).append(record.address)
        elif record.op == Op.STORE:
            profile.stores += 1
        elif record.op == Op.BRANCH:
            profile.branches += 1
        if record.is_memory:
            lines.add(record.address >> _LINE_SHIFT)
            addresses.append(record.address)
    profile.unique_lines = len(lines)
    if addresses:
        profile.footprint_span_bytes = max(addresses) - min(addresses)
    strided_accesses = 0
    counts = []
    for ip, ip_addresses in per_ip_addresses.items():
        ip_profile = IpProfile(ip=ip, accesses=len(ip_addresses))
        ip_profile.unique_lines = len({a >> _LINE_SHIFT
                                       for a in ip_addresses})
        if len(ip_addresses) > 1:
            deltas = Counter(b - a for a, b in zip(ip_addresses,
                                                   ip_addresses[1:]))
            delta, count = deltas.most_common(1)[0]
            ip_profile.dominant_delta = delta
            ip_profile.dominant_delta_share = count / (len(ip_addresses) - 1)
        if ip_profile.strided:
            strided_accesses += ip_profile.accesses
        profile.ip_profiles[ip] = ip_profile
        counts.append(ip_profile.accesses)
    if profile.loads:
        profile.strided_load_share = strided_accesses / profile.loads
    counts.sort(reverse=True)
    accumulated = 0
    for index, count in enumerate(counts):
        accumulated += count
        if accumulated >= 0.9 * profile.loads:
            profile.hot_ip_count = index + 1
            break
    return profile


def format_profile(profile: WorkloadProfile, name: str = "") -> str:
    """Human-readable characterisation summary."""
    lines = []
    if name:
        lines.append(f"workload: {name}")
    lines.append(f"instructions        : {profile.instructions}")
    lines.append(f"loads/stores/branches: {profile.loads}/{profile.stores}/"
                 f"{profile.branches} "
                 f"(load ratio {profile.load_ratio:.2f})")
    lines.append(f"unique lines touched : {profile.unique_lines} "
                 f"(reuse factor {profile.reuse_factor:.1f})")
    lines.append(f"footprint span       : "
                 f"{profile.footprint_span_bytes / (1 << 20):.1f} MiB")
    lines.append(f"pointer-chase loads  : {profile.dependent_loads}")
    lines.append(f"strided load share   : {profile.strided_load_share:.0%}")
    lines.append(f"load IPs for 90% of loads: {profile.hot_ip_count} of "
                 f"{len(profile.ip_profiles)}")
    return "\n".join(lines)
