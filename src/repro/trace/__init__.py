"""Trace substrate: instruction records, synthetic workloads, and mixes.

The paper drives ChampSim with SimPoint traces from SPEC CPU2017, GAP,
CloudSuite and CVP.  Those traces are not redistributable, so this package
synthesises instruction streams from per-workload parameter models whose
memory behaviour (footprint, pattern mix, branch behaviour, dependency
structure) matches the qualitative character of each named benchmark.  See
DESIGN.md section 2 for the substitution rationale.
"""

from repro.trace.record import Op, TraceRecord
from repro.trace.synthetic import SyntheticWorkload, WorkloadSpec, StreamSpec
from repro.trace.workloads import (
    CLOUDSUITE_WORKLOADS,
    CVP_WORKLOADS,
    GAP_WORKLOADS,
    SPEC_HOMOGENEOUS_MIXES,
    get_workload,
    workload_names,
)
from repro.trace.analysis import (IpProfile, WorkloadProfile,
                                  format_profile, profile_trace)
from repro.trace.io import load_trace, save_trace
from repro.trace.mixes import heterogeneous_mixes, homogeneous_mix

__all__ = [
    "Op",
    "TraceRecord",
    "SyntheticWorkload",
    "WorkloadSpec",
    "StreamSpec",
    "SPEC_HOMOGENEOUS_MIXES",
    "GAP_WORKLOADS",
    "CLOUDSUITE_WORKLOADS",
    "CVP_WORKLOADS",
    "get_workload",
    "workload_names",
    "homogeneous_mix",
    "heterogeneous_mixes",
    "IpProfile",
    "WorkloadProfile",
    "format_profile",
    "profile_trace",
    "load_trace",
    "save_trace",
]
