"""Named workload models.

The paper evaluates 45 memory-intensive SPEC CPU2017 SimPoint traces
(Figs. 10-16 list them by name), the GAP suite, CloudSuite, and CVP
client/server traces.  Real traces are unavailable here, so each name maps
to a :class:`WorkloadSpec` whose stream mix reflects the benchmark's
published memory character:

* ``mcf``        -- pointer chasing over a large footprint with
  branch-correlated hot/cold behaviour (dynamic-critical IPs);
* ``lbm``        -- streaming loads + stores, extreme bandwidth demand;
* ``bwaves`` / ``fotonik3d`` / ``roms`` / ``cactuBSSN`` / ``wrf`` / ``pop2``
  -- strided/stencil HPC streams, prefetch-friendly;
* ``gcc`` / ``perlbench`` / ``xalancbmk`` / ``omnetpp`` / ``xz``
  -- irregular, branchy, pointer-flavoured integer codes;
* GAP            -- irregular graph analytics (random + pointer);
* CloudSuite/CVP -- mostly cache-resident with sparse irregular misses
  (prefetchers gain little; paper Fig. 17).

The SimPoint suffix (e.g. ``-1536B``) seeds small parameter perturbations so
different SimPoints of one benchmark behave similarly but not identically.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.trace.synthetic import StreamSpec, WorkloadSpec


def _perturb(name: str, low: float, high: float) -> float:
    """A deterministic per-name value in [low, high)."""
    digest = hashlib.sha256(name.encode()).digest()
    fraction = int.from_bytes(digest[:4], "little") / 2 ** 32
    return low + (high - low) * fraction


def _mcf(name: str) -> WorkloadSpec:
    footprint = int(_perturb(name, 16_000, 40_000))
    return WorkloadSpec(name=name, streams=[
        # Hot working set (stack/globals): L1-resident by construction.
        StreamSpec(kind="random", weight=8.0, footprint_kib=4, dep_alu=1),
        # Warm spatial regions: L2-resident, pattern-learnable.
        StreamSpec(kind="spatial", weight=1.0, footprint_kib=96,
                   region_bytes=1024, spatial_density=0.5, dep_alu=1),
        # Cold signature behaviour: pointer chasing + hot/cold dynamics.
        StreamSpec(kind="pointer", weight=0.5, footprint_kib=footprint,
                   dep_alu=2, ips=2),
        StreamSpec(kind="hotcold", weight=0.35, footprint_kib=footprint,
                   hot_footprint_kib=16,
                   hot_probability=_perturb(name + "h", 0.35, 0.6)),
        StreamSpec(kind="random", weight=0.2, footprint_kib=footprint),
        # A prefetchable cold stride (real mcf has array sweeps Berti
        # covers with ~51-93% accuracy; Fig. 13 discussion).
        StreamSpec(kind="stride", weight=0.3, footprint_kib=footprint,
                   stride=64, dep_alu=2),
    ], alu_filler_weight=6.0)


def _lbm(name: str) -> WorkloadSpec:
    footprint = int(_perturb(name, 24_000, 48_000))
    return WorkloadSpec(name=name, streams=[
        StreamSpec(kind="random", weight=5.0, footprint_kib=4, dep_alu=1),
        StreamSpec(kind="stream_store", weight=0.8,
                   footprint_kib=footprint, stride=64, dep_alu=3, ips=2),
        StreamSpec(kind="stride", weight=0.6, footprint_kib=footprint,
                   stride=64, dep_alu=3, ips=2),
        StreamSpec(kind="stride", weight=0.3, footprint_kib=footprint,
                   stride=128, dep_alu=2),
    ], alu_filler_weight=4.0)


def _hpc_strided(name: str, strides: List[int],
                 footprint_low: int = 12_000,
                 footprint_high: int = 32_000) -> WorkloadSpec:
    footprint = int(_perturb(name, footprint_low, footprint_high))
    streams = [
        StreamSpec(kind="stride", weight=0.5, footprint_kib=footprint,
                   stride=stride, dep_alu=2, ips=1 + i % 2)
        for i, stride in enumerate(strides)
    ]
    streams.append(StreamSpec(kind="random", weight=7.0, footprint_kib=4,
                              dep_alu=1))
    streams.append(StreamSpec(kind="spatial", weight=1.0, footprint_kib=128,
                              region_bytes=2048, spatial_density=0.6,
                              dep_alu=1))
    return WorkloadSpec(name=name, streams=streams, alu_filler_weight=5.0)


def _irregular_int(name: str, phases: int = 1) -> WorkloadSpec:
    footprint = int(_perturb(name, 4_000, 16_000))
    return WorkloadSpec(name=name, streams=[
        StreamSpec(kind="random", weight=8.0, footprint_kib=4, dep_alu=1),
        StreamSpec(kind="spatial", weight=1.0, footprint_kib=96,
                   region_bytes=1024, spatial_density=0.4, dep_alu=1),
        StreamSpec(kind="pointer", weight=0.3, footprint_kib=footprint,
                   dep_alu=2),
        StreamSpec(kind="hotcold", weight=0.25, footprint_kib=footprint,
                   hot_footprint_kib=16,
                   hot_probability=_perturb(name + "h", 0.4, 0.7)),
        StreamSpec(kind="stride", weight=0.25, footprint_kib=footprint,
                   stride=64, dep_alu=1),
    ], alu_filler_weight=7.0, phases=phases)


def _gap(name: str) -> WorkloadSpec:
    footprint = int(_perturb(name, 24_000, 64_000))
    return WorkloadSpec(name=name, streams=[
        StreamSpec(kind="random", weight=7.0, footprint_kib=4, dep_alu=1),
        StreamSpec(kind="random", weight=0.5, footprint_kib=footprint,
                   dep_alu=1, ips=3),
        StreamSpec(kind="pointer", weight=0.4, footprint_kib=footprint,
                   dep_alu=1, ips=2),
        StreamSpec(kind="stride", weight=0.3, footprint_kib=footprint,
                   stride=64, ips=1),
        StreamSpec(kind="hotcold", weight=0.25, footprint_kib=footprint,
                   hot_footprint_kib=32,
                   hot_probability=_perturb(name + "h", 0.5, 0.8)),
    ], alu_filler_weight=5.0)


def _cloud(name: str) -> WorkloadSpec:
    # Mostly cache-resident; few and irregular off-chip misses, so
    # prefetchers struggle to find patterns (paper Fig. 17).
    return WorkloadSpec(name=name, streams=[
        StreamSpec(kind="random", weight=6.0, footprint_kib=6, dep_alu=1),
        StreamSpec(kind="spatial", weight=1.5, footprint_kib=64,
                   region_bytes=1024, spatial_density=0.5, dep_alu=1),
        StreamSpec(kind="random", weight=0.25,
                   footprint_kib=int(_perturb(name, 8_000, 24_000)),
                   dep_alu=1),
        StreamSpec(kind="pointer", weight=0.15,
                   footprint_kib=int(_perturb(name + "p", 4_000, 12_000))),
    ], alu_filler_weight=8.0)


def _spec_model(name: str) -> WorkloadSpec:
    benchmark = name.split(".", 1)[1].split("_", 1)[0] if "." in name else name
    if benchmark == "mcf":
        return _mcf(name)
    if benchmark == "lbm":
        return _lbm(name)
    if benchmark == "bwaves":
        return _hpc_strided(name, [64, 128, 192])
    if benchmark == "cactuBSSN":
        return _hpc_strided(name, [64, 256, 512, 1024],
                            footprint_low=12_000, footprint_high=24_000)
    if benchmark == "wrf":
        return _hpc_strided(name, [64, 128])
    if benchmark == "pop2":
        spec = _hpc_strided(name, [64, 256])
        spec.phases = 2
        return spec
    if benchmark == "fotonik3d":
        return _hpc_strided(name, [64, 64, 128],
                            footprint_low=16_000, footprint_high=28_000)
    if benchmark == "roms":
        return _hpc_strided(name, [64, 128, 256])
    if benchmark == "gcc":
        return _irregular_int(name, phases=2)
    if benchmark == "perlbench":
        return _irregular_int(name, phases=2)
    if benchmark == "omnetpp":
        return _irregular_int(name)
    if benchmark == "xalancbmk":
        return _irregular_int(name)
    if benchmark == "xz":
        return _irregular_int(name)
    raise KeyError(f"no model for SPEC benchmark {benchmark!r}")


#: The 45 memory-intensive SPEC CPU2017 SimPoint traces from Figs. 10-16.
SPEC_HOMOGENEOUS_MIXES: List[str] = [
    "600.perlbench_s-570B",
    "602.gcc_s-1850B", "602.gcc_s-2226B", "602.gcc_s-734B",
    "603.bwaves_s-1740B", "603.bwaves_s-2609B", "603.bwaves_s-2931B",
    "603.bwaves_s-891B",
    "605.mcf_s-1152B", "605.mcf_s-1536B", "605.mcf_s-1554B",
    "605.mcf_s-1644B", "605.mcf_s-472B", "605.mcf_s-484B",
    "605.mcf_s-665B", "605.mcf_s-782B", "605.mcf_s-994B",
    "607.cactuBSSN_s-2421B", "607.cactuBSSN_s-3477B", "607.cactuBSSN_s-4004B",
    "619.lbm_s-2676B", "619.lbm_s-2677B", "619.lbm_s-3766B",
    "619.lbm_s-4268B",
    "620.omnetpp_s-141B", "620.omnetpp_s-874B",
    "621.wrf_s-6673B", "621.wrf_s-8065B",
    "623.xalancbmk_s-10B", "623.xalancbmk_s-165B", "623.xalancbmk_s-202B",
    "628.pop2_s-17B",
    "649.fotonik3d_s-10881B", "649.fotonik3d_s-1176B",
    "649.fotonik3d_s-7084B", "649.fotonik3d_s-8225B",
    "654.roms_s-1007B", "654.roms_s-1070B", "654.roms_s-1390B",
    "654.roms_s-1613B", "654.roms_s-293B", "654.roms_s-294B",
    "654.roms_s-523B",
    "657.xz_s-1306B", "657.xz_s-2302B",
]

#: GAP benchmark suite traces (graph analytics).
GAP_WORKLOADS: List[str] = [
    "bfs-14", "bfs-22", "pr-14", "pr-22", "cc-14", "cc-22",
    "bc-14", "bc-22", "sssp-14", "sssp-22", "tc-14", "tc-22",
]

#: CloudSuite traces (paper Fig. 17).
CLOUDSUITE_WORKLOADS: List[str] = [
    "cassandra", "classification", "cloud9", "nutch", "streaming",
]

#: CVP-1 championship client/server traces (paper Fig. 17).
CVP_WORKLOADS: List[str] = [
    "client_001", "client_005", "server_013", "server_021", "server_036",
]


def _build_registry() -> Dict[str, WorkloadSpec]:
    registry: Dict[str, WorkloadSpec] = {}
    for name in SPEC_HOMOGENEOUS_MIXES:
        registry[name] = _spec_model(name)
    for name in GAP_WORKLOADS:
        registry[name] = _gap(name)
    for name in CLOUDSUITE_WORKLOADS + CVP_WORKLOADS:
        registry[name] = _cloud(name)
    return registry


_REGISTRY = _build_registry()


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload model by its trace name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; see workload_names()") from None


def workload_names() -> List[str]:
    """All registered workload names."""
    return sorted(_REGISTRY)
