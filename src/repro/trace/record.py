"""Instruction trace records.

A :class:`TraceRecord` is the unit the core model consumes.  It carries the
minimum architectural information the paper's mechanisms need:

* instruction pointer (``ip``) -- signature input for every IP-indexed
  structure (prefetchers, criticality filter, branch history);
* operation kind -- load/store/branch/ALU;
* virtual address for memory operations;
* branch outcome (``taken``) -- the simulator is trace-driven, so outcomes
  come from the trace and the branch predictor only decides whether a
  mispredict bubble is charged;
* register dataflow (``dst``/``srcs``) -- drives issue timing (a
  pointer-chasing load cannot issue before the load producing its address
  returns) and the data-dependency graphs used by CATCH and FVP.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Sequence, Tuple


class Op(IntEnum):
    """Instruction operation kinds."""

    LOAD = 0
    STORE = 1
    BRANCH = 2
    ALU = 3


#: Register id meaning "no register".
NO_REG = -1


class TraceRecord:
    """One dynamic instruction.

    ``srcs`` lists the registers the instruction must wait for before it can
    execute; for loads these are the address-generation sources.  ``dst`` is
    the produced register (``NO_REG`` for stores and branches).
    """

    __slots__ = ("ip", "op", "address", "taken", "dst", "srcs")

    def __init__(self, ip: int, op: Op, address: int = 0,
                 taken: bool = False, dst: int = NO_REG,
                 srcs: Tuple[int, ...] = ()) -> None:
        self.ip = ip
        self.op = op
        self.address = address
        self.taken = taken
        self.dst = dst
        self.srcs = srcs

    @property
    def is_memory(self) -> bool:
        return self.op == Op.LOAD or self.op == Op.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecord(ip={self.ip:#x}, op={self.op.name}, "
                f"address={self.address:#x}, taken={self.taken}, "
                f"dst={self.dst}, srcs={self.srcs})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.ip == other.ip and self.op == other.op
                and self.address == other.address
                and self.taken == other.taken
                and self.dst == other.dst and self.srcs == other.srcs)

    def __hash__(self) -> int:
        return hash((self.ip, self.op, self.address, self.taken,
                     self.dst, self.srcs))


def validate_trace(records: Sequence[TraceRecord]) -> None:
    """Raise ``ValueError`` if a trace violates basic well-formedness.

    Checks that memory operations carry addresses, branches carry no
    destination register, and every source register was produced earlier in
    the stream (or is a preset register, id < 0 excluded).
    """
    produced = set()
    for index, record in enumerate(records):
        if record.is_memory and record.address == 0:
            raise ValueError(f"record {index}: memory op without address")
        if record.op == Op.BRANCH and record.dst != NO_REG:
            raise ValueError(f"record {index}: branch with destination")
        for src in record.srcs:
            if src != NO_REG and src not in produced:
                raise ValueError(
                    f"record {index}: source r{src} never produced")
        if record.dst != NO_REG:
            produced.add(record.dst)
