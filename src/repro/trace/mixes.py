"""Workload mix construction (paper section 5, "Workloads").

The paper evaluates 45 homogeneous 64-core mixes (every core runs the same
SPEC trace, rate mode) and 200 randomly generated heterogeneous mixes drawn
from SPEC CPU2017 and GAP with "no bias towards any specific benchmark".
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.trace.workloads import GAP_WORKLOADS, SPEC_HOMOGENEOUS_MIXES


def homogeneous_mix(name: str, num_cores: int) -> List[str]:
    """Every core runs the same workload (SPEC-rate style)."""
    if num_cores < 1:
        raise ValueError("num_cores must be positive")
    return [name] * num_cores


def heterogeneous_mixes(count: int, num_cores: int,
                        seed: int = 2023,
                        pool: Sequence[str] | None = None,
                        ) -> List[List[str]]:
    """Randomly generated heterogeneous mixes (paper: 200 mixes).

    Each mix assigns every core an independent uniform draw from the SPEC +
    GAP pool, mirroring the paper's unbiased random generation.  The same
    ``(count, num_cores, seed)`` always yields the same mixes.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if num_cores < 1:
        raise ValueError("num_cores must be positive")
    rng = random.Random(seed)
    candidates = list(pool) if pool is not None else (
        SPEC_HOMOGENEOUS_MIXES + GAP_WORKLOADS)
    if not candidates:
        raise ValueError("empty workload pool")
    return [
        [rng.choice(candidates) for _ in range(num_cores)]
        for _ in range(count)
    ]
