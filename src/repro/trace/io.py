"""Trace serialisation.

Traces regenerate deterministically, but callers running many experiments
over the same workloads can cache them on disk.  The format is a compact
NumPy ``.npz`` bundle: five parallel arrays plus a ragged source-register
encoding (offsets + flattened values), the same trick ChampSim-style tools
use for variable-length fields.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.trace.record import Op, TraceRecord


def save_trace(path: Union[str, Path],
               records: Sequence[TraceRecord]) -> None:
    """Write ``records`` to ``path`` as a ``.npz`` bundle."""
    if not records:
        raise ValueError("refusing to save an empty trace")
    ips = np.fromiter((r.ip for r in records), dtype=np.uint64,
                      count=len(records))
    ops = np.fromiter((int(r.op) for r in records), dtype=np.uint8,
                      count=len(records))
    addresses = np.fromiter((r.address for r in records), dtype=np.uint64,
                            count=len(records))
    taken = np.fromiter((r.taken for r in records), dtype=np.bool_,
                        count=len(records))
    dsts = np.fromiter((r.dst for r in records), dtype=np.int16,
                       count=len(records))
    offsets = np.zeros(len(records) + 1, dtype=np.int64)
    flat_srcs: List[int] = []
    for i, record in enumerate(records):
        flat_srcs.extend(record.srcs)
        offsets[i + 1] = len(flat_srcs)
    np.savez_compressed(
        path, ips=ips, ops=ops, addresses=addresses, taken=taken,
        dsts=dsts, src_offsets=offsets,
        src_values=np.asarray(flat_srcs, dtype=np.int16))


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path) as data:
        ips = data["ips"]
        ops = data["ops"]
        addresses = data["addresses"]
        taken = data["taken"]
        dsts = data["dsts"]
        offsets = data["src_offsets"]
        values = data["src_values"]
        records = []
        for i in range(len(ips)):
            srcs = tuple(int(v) for v in values[offsets[i]:offsets[i + 1]])
            records.append(TraceRecord(
                ip=int(ips[i]), op=Op(int(ops[i])),
                address=int(addresses[i]), taken=bool(taken[i]),
                dst=int(dsts[i]), srcs=srcs))
    return records
