"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        simulate one configuration and print a result summary
``figure``     regenerate one of the paper's figures/tables by name
``sweep``      run a (scheme x workload x channel) grid in parallel,
               with results persisted in the on-disk cache
``serve``      coordinate a distributed sweep campaign over the
               repro.serve HTTP/JSON worker protocol (docs/serving.md)
``worker``     pull and simulate jobs from a ``serve`` coordinator
``workloads``  list the available workload models
``storage``    print CLIP's Table-2 storage accounting
``characterize``  static characterisation of one workload model
``lint``       run the simulator static-analysis passes (repro.analysis)
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro import experiments
from repro.config import scaled_config
from repro.sim.stats import weighted_speedup
from repro.sim.system import run_system
from repro.trace import homogeneous_mix, workload_names

FIGURES = {
    "fig1": experiments.figure1, "fig2": experiments.figure2,
    "fig3": experiments.figure3, "fig4": experiments.figure4,
    "fig5": experiments.figure5, "fig6": experiments.figure6,
    "fig9": experiments.figure9, "fig10": experiments.figure10,
    "fig11": experiments.figure11, "fig12": experiments.figure12,
    "fig13": experiments.figure13, "fig14": experiments.figure14,
    "fig15": experiments.figure15, "fig16": experiments.figure16,
    "fig17": experiments.figure17, "fig18": experiments.figure18,
    "fig19": experiments.figure19, "fig20": experiments.figure20,
    "fig21": experiments.figure21,
    "energy": experiments.energy_study,
    "power": experiments.power_budget_study,
    "learned": experiments.learned_study,
    "llc": experiments.llc_sensitivity,
    "cores": experiments.core_count_sensitivity,
    "ablation": experiments.ablation_study,
}
TABLES = {"table2": experiments.table2, "table3": experiments.table3}


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Grid + cache options shared by ``sweep`` and ``serve``."""
    parser.add_argument("--schemes", nargs="+", default=None,
                        help="scheme names, e.g. berti berti+clip "
                             "(default: the Fig. 19-20 comparison "
                             "space)")
    parser.add_argument("--workloads", nargs="+", default=None,
                        help="workload model names (default: the "
                             "scale's homogeneous sample)")
    parser.add_argument("--channels", nargs="+", type=int, default=None,
                        help="channel counts (default: the Fig. 19-20 "
                             "sweep, 1 2 4)")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--instructions", type=int, default=8_000)
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             ".repro-cache/, or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk cache")
    parser.add_argument("--backend", choices=["event", "batch"],
                        default=None,
                        help="simulation engine (bit-identical "
                             "results; also: REPRO_BACKEND)")


def _build_grid(args: argparse.Namespace):
    """The (schemes, mixes, channels, Sweep-with-baselines) a ``sweep``
    or ``serve`` invocation describes."""
    from repro.experiments.figures import channel_sweep_schemes
    from repro.experiments.sweep import Scheme, Sweep
    from repro.trace import homogeneous_mix

    scale = experiments.BenchScale(num_cores=args.cores,
                                   sim_instructions=args.instructions)
    if args.schemes is not None:
        schemes = {name: Scheme.parse(name) for name in args.schemes}
    else:
        schemes = channel_sweep_schemes()
    workloads = args.workloads or scale.sample_homogeneous()
    channels = args.channels or list(scale.channel_sweep[:3])
    mixes = [homogeneous_mix(w, args.cores) for w in workloads]
    grid = Sweep.product(list(schemes.values()), mixes, channels,
                         num_cores=args.cores,
                         sim_instructions=args.instructions)
    return schemes, mixes, channels, grid.with_baselines()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CLIP (MICRO 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one configuration")
    run.add_argument("--workload", default="605.mcf_s-1536B",
                     help="workload model name (see `workloads`)")
    run.add_argument("--cores", type=int, default=8)
    run.add_argument("--channels", type=int, default=1)
    run.add_argument("--instructions", type=int, default=10_000)
    run.add_argument("--prefetcher", default="berti",
                     choices=["none", "berti", "ipcp", "stride",
                              "streamer"])
    run.add_argument("--l2-prefetcher", default="none",
                     choices=["none", "spp_ppf", "bingo"])
    run.add_argument("--clip", action="store_true",
                     help="enable CLIP filtering")
    run.add_argument("--dynamic-clip", action="store_true",
                     help="enable Dynamic CLIP (section 5.3)")
    run.add_argument("--baseline", action="store_true",
                     help="also run no-prefetching and report weighted "
                          "speedup")
    run.add_argument("--latency-report", action="store_true",
                     help="capture per-load latencies and print "
                          "percentiles/histogram")
    run.add_argument("--markdown-report", metavar="PATH", default=None,
                     help="write a full markdown report of the run")
    run.add_argument("--tlb", action="store_true",
                     help="model the Table-3 TLB hierarchy (DTLB/STLB + "
                          "page walks)")
    run.add_argument("--sanitize", action="store_true",
                     help="install the runtime invariant sanitizer "
                          "(also: REPRO_SANITIZE=1)")

    compare = sub.add_parser(
        "compare", help="compare schemes on one workload (markdown table)")
    compare.add_argument("--workload", default="605.mcf_s-1536B")
    compare.add_argument("--cores", type=int, default=8)
    compare.add_argument("--channels", type=int, default=1)
    compare.add_argument("--instructions", type=int, default=8_000)
    compare.add_argument("--schemes", nargs="+",
                         default=["none", "berti", "berti+clip"])

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", choices=sorted(FIGURES) + sorted(TABLES))
    figure.add_argument("--cores", type=int, default=None)
    figure.add_argument("--instructions", type=int, default=None)
    figure.add_argument("--jobs", "-j", type=int, default=1,
                        help="simulate independent sweep points across "
                             "this many processes")
    figure.add_argument("--cache", action="store_true",
                        help="persist/reuse results in the on-disk cache "
                             "(.repro-cache/)")
    figure.add_argument("--backend", choices=["event", "batch"],
                        default=None,
                        help="simulation engine (bit-identical results; "
                             "also: REPRO_BACKEND)")

    sweep = sub.add_parser(
        "sweep", help="run a (scheme x workload x channel) grid, "
                      "parallel and disk-cached")
    _add_grid_arguments(sweep)
    sweep.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for independent points")
    sweep.add_argument("--executor", choices=["local", "distributed"],
                       default="local",
                       help="how misses run: a local process pool, or "
                            "the repro.serve coordinator + worker "
                            "subprocesses (bit-identical results)")
    sweep.add_argument("--csv", metavar="PATH", default=None,
                       help="also export the speedup series as CSV")

    serve = sub.add_parser(
        "serve", help="coordinate a distributed sweep campaign "
                      "(workers connect with `repro worker`)")
    _add_grid_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="protocol port (default: an ephemeral one, "
                            "printed at startup)")
    serve.add_argument("--workers", type=int, default=0,
                       help="also spawn this many local worker "
                            "subprocesses (0: wait for `repro worker`)")
    serve.add_argument("--manifest", default=None, metavar="PATH",
                       help="persist the resumable campaign manifest "
                            "here (written at startup and on shutdown)")
    serve.add_argument("--resume", action="store_true",
                       help="load the campaign from --manifest instead "
                            "of the grid options")
    serve.add_argument("--lease-timeout", type=float, default=30.0,
                       help="seconds a claimed job stays leased "
                            "without a heartbeat (default 30)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="failures (incl. lease expiries) before a "
                            "job is quarantined (default 3)")
    serve.add_argument("--status-json", default=None, metavar="PATH",
                       help="write the final /status document here")

    worker = sub.add_parser(
        "worker", help="pull and simulate jobs from a `repro serve` "
                       "coordinator")
    worker.add_argument("--url", required=True,
                        help="coordinator base URL, e.g. "
                             "http://127.0.0.1:8377")
    worker.add_argument("--id", default=None,
                        help="worker id (default: <hostname>-<pid>)")
    worker.add_argument("--backend", choices=["event", "batch"],
                        default=None,
                        help="simulation engine override (default: the "
                             "coordinator's choice)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after completing this many jobs")
    worker.add_argument("--verbose", action="store_true",
                        help="print one line per completed job")

    sub.add_parser("workloads", help="list workload models")
    sub.add_parser("storage", help="print Table 2 (CLIP storage)")

    lint = sub.add_parser(
        "lint", help="run the simulator static-analysis passes")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--format",
                      choices=["text", "json", "github", "sarif"],
                      default="text")
    lint.add_argument("--baseline", default="analysis-baseline.toml")
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--write-baseline", action="store_true")
    lint.add_argument("--update-baseline", action="store_true")
    lint.add_argument("--list-rules", action="store_true")

    characterize = sub.add_parser(
        "characterize", help="static characterisation of a workload model")
    characterize.add_argument("--workload", default="605.mcf_s-1536B")
    characterize.add_argument("--instructions", type=int, default=20_000)

    bench = sub.add_parser(
        "bench", help="run the hot-path performance benchmarks")
    bench.add_argument("--repeats", type=int, default=3,
                       help="end-to-end point repeats (best is reported)")
    bench.add_argument("-o", "--output", metavar="JSON",
                       help="write the results payload to this file")
    bench.add_argument("--check", metavar="BASELINE",
                       help="compare against a baseline JSON "
                            "(e.g. BENCH_PR7.json); exit 1 when the "
                            "end-to-end point regresses past --tolerance")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed end-to-end slowdown vs the baseline "
                            "(default 0.25 = 25%%)")
    bench.add_argument("--backend", choices=["event", "batch", "both"],
                       default="both",
                       help="which engine(s) to bench end-to-end "
                            "(default: both)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = scaled_config(num_cores=args.cores, channels=args.channels,
                           sim_instructions=args.instructions)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name=args.prefetcher)
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                               name=args.l2_prefetcher)
    config.clip = dataclasses.replace(config.clip,
                                      enabled=args.clip or args.dynamic_clip,
                                      dynamic=args.dynamic_clip)
    if args.latency_report:
        config.capture_request_trace = 200_000
    if args.tlb:
        config.tlb = dataclasses.replace(config.tlb, enabled=True)
    if args.sanitize:
        config.sanitize = True
    mix = homogeneous_mix(args.workload, args.cores)
    from repro.sim.system import MulticoreSystem
    system = MulticoreSystem(config, mix)
    result = system.run()
    print(f"workload        : {args.workload} x{args.cores} cores, "
          f"{args.channels} channel(s)")
    print(f"instructions    : {result.total_instructions}")
    print(f"cycles          : {result.total_cycles}")
    print(f"aggregate IPC   : {sum(result.ipc_per_core):.3f}")
    print(f"L1 miss latency : {result.average_l1_miss_latency():.1f} cycles")
    print(f"DRAM reads/writes: {result.dram.reads}/{result.dram.writes} "
          f"(util {result.dram.utilization:.2f})")
    if result.prefetch.issued:
        print(f"prefetches      : {result.prefetch.issued} issued, "
              f"accuracy {result.prefetch.accuracy:.2f}, "
              f"lateness {result.prefetch.lateness:.2f}")
    if result.clip is not None:
        print(f"CLIP            : kept "
              f"{result.clip.prefetches_allowed}/"
              f"{result.clip.prefetches_seen} candidates, prediction "
              f"accuracy {result.clip.prediction_accuracy:.2f}, coverage "
              f"{result.clip.prediction_coverage:.2f}")
    if args.markdown_report:
        from repro.experiments.report import run_report
        from pathlib import Path
        text = run_report(result,
                          title=f"{args.workload} x{args.cores} cores, "
                                f"{args.channels} channel(s)",
                          trace=system.request_trace)
        Path(args.markdown_report).write_text(text)
        print(f"wrote {args.markdown_report}")
    if args.latency_report and system.request_trace is not None:
        from repro.sim.tracing import format_latency_report
        print("\n-- latency report --")
        print(format_latency_report(system.request_trace))
    if args.baseline:
        config_base = scaled_config(num_cores=args.cores,
                                    channels=args.channels,
                                    sim_instructions=args.instructions)
        config_base.l1_prefetcher = dataclasses.replace(
            config_base.l1_prefetcher, name="none")
        baseline = run_system(config_base, mix)
        print(f"weighted speedup vs no-prefetching: "
              f"{weighted_speedup(result, baseline):.3f}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name in TABLES:
        TABLES[args.name]()
        return 0
    scale_fields = {}
    if args.cores is not None:
        scale_fields["num_cores"] = args.cores
    if args.instructions is not None:
        scale_fields["sim_instructions"] = args.instructions
    scale = dataclasses.replace(experiments.BenchScale(), **scale_fields)
    store = experiments.ResultStore() if args.cache else None
    runner = experiments.ExperimentRunner(scale, store=store,
                                          jobs=args.jobs,
                                          backend=args.backend)
    FIGURES[args.name](runner)
    # Cache accounting in the same shape `repro sweep` prints, so CI can
    # assert a warm rerun simulated nothing.
    print(f"simulated {runner.runs} point(s)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.statistics import geometric_mean
    from repro.experiments.sweep import ResultStore, run_sweep
    from repro.sim.stats import weighted_speedup

    schemes, mixes, channels, sweep = _build_grid(args)
    workloads = args.workloads or [mix[0] for mix in mixes]
    store = None if args.no_cache else ResultStore(args.cache_dir)
    outcome = run_sweep(sweep, jobs=args.jobs, store=store,
                        backend=args.backend, executor=args.executor)

    def speedup(scheme, mix, ch) -> float:
        spec = experiments.RunSpec(scheme=scheme, mix=tuple(mix),
                                   channels=ch, num_cores=args.cores,
                                   sim_instructions=args.instructions)
        base = dataclasses.replace(spec, scheme=scheme.baseline())
        return weighted_speedup(outcome[spec], outcome[base])

    series = {
        name: [geometric_mean([speedup(scheme, mix, ch) for mix in mixes])
               for ch in channels]
        for name, scheme in schemes.items()
    }
    from repro.experiments.report import print_figure
    print_figure(f"Sweep: weighted speedup vs no-prefetching "
                 f"({args.cores} cores, {len(workloads)} workload(s))",
                 ["scheme"] + [f"ch={c}" for c in channels],
                 [[name] + series[name] for name in schemes])
    if args.csv:
        from repro.experiments.export import export_series_csv
        export_series_csv(series, channels, args.csv)
        print(f"wrote {args.csv}")
    print(f"\nsimulated {outcome.simulated} point(s); "
          f"{outcome.cache_hits} of {len(sweep)} served from the disk "
          f"cache")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run one distributed campaign to completion (or interruption).

    SIGTERM/SIGINT trigger a graceful shutdown: in-flight jobs get a
    short drain window, the campaign manifest is persisted, and every
    completed point is already durable in the result store -- so a
    rerun (``--resume`` or the same grid) recomputes nothing.
    """
    import asyncio
    import json as json_mod
    from pathlib import Path

    from repro.experiments.sweep import ResultStore
    from repro.serve.coordinator import Coordinator, ServeSettings
    from repro.serve.manifest import load_manifest
    from repro.serve.queue import QueuePolicy

    quarantined = {}
    backend = args.backend
    if args.resume:
        if not args.manifest:
            print("--resume requires --manifest PATH")
            return 2
        state = load_manifest(args.manifest)
        specs = state["specs"]
        backend = backend or state["backend"]
        quarantined = state["quarantined"]
    else:
        specs = list(_build_grid(args)[3])
    store = None if args.no_cache else ResultStore(args.cache_dir)
    settings = ServeSettings(
        host=args.host, port=args.port,
        policy=QueuePolicy(lease_timeout=args.lease_timeout,
                           max_attempts=args.max_attempts))
    coordinator = Coordinator(specs, store=store, backend=backend,
                              settings=settings,
                              manifest_path=args.manifest,
                              quarantined=quarantined,
                              progress=print)
    interrupted = asyncio.run(_serve_campaign(coordinator,
                                              args.workers))
    status = coordinator.status()
    if args.status_json:
        Path(args.status_json).write_text(
            json_mod.dumps(status, indent=2, sort_keys=True))
        print(f"wrote {args.status_json}")
    print(f"simulated {coordinator.simulated} point(s); "
          f"{coordinator.cache_hits} of {status['total']} served from "
          f"the disk cache")
    for item in status["quarantine"]:
        error = (item["error"] or "unknown error").strip()
        print(f"quarantined: {item['label']} after {item['attempts']} "
              f"attempt(s): {error.splitlines()[-1]}")
    if interrupted:
        print("interrupted; campaign is resumable"
              + (f" from {args.manifest}" if args.manifest else ""))
        return 130
    return 2 if status["quarantine"] else 0


async def _serve_campaign(coordinator, local_workers: int) -> bool:
    """Serve until the campaign is terminal or a signal arrives;
    returns True when interrupted."""
    import asyncio
    import signal

    from repro.serve.executor import spawn_worker

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    await coordinator.start()
    print(f"serving campaign on {coordinator.url} "
          f"({len(coordinator.queue)} point(s), "
          f"{coordinator.cache_hits} already cached)")
    # Durable from the start, so a kill at any point is resumable.
    coordinator.write_manifest()
    workers = [spawn_worker(coordinator.url, f"local-{index}",
                            coordinator.backend)
               for index in range(local_workers)]
    interrupted = False
    try:
        while True:
            if stop.is_set():
                interrupted = True
                break
            if await coordinator.wait_finished(timeout=0.2):
                break
            if workers and not coordinator.queue.finished and \
                    all(w.poll() is not None for w in workers):
                print("all local workers exited with work outstanding; "
                      "waiting for external workers (Ctrl-C to stop)")
                workers = []
    finally:
        await coordinator.stop()
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=5.0)
            except Exception:
                worker.kill()
    return interrupted


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.serve.worker import worker_loop
    return worker_loop(args.url, worker_id=args.id,
                       backend=args.backend, max_jobs=args.max_jobs,
                       progress=print if args.verbose else None)


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments import hotpath

    backends = (("event", "batch") if args.backend == "both"
                else (args.backend,))
    payload = hotpath.run_suite(repeats=args.repeats, backends=backends)
    if args.output:
        hotpath.write_payload(payload, Path(args.output))
        print(f"wrote {args.output}")
    if args.check:
        baseline = hotpath.load_baseline(Path(args.check))
        if baseline is None:
            print(f"no baseline at {args.check}; nothing to check against")
            return 1
        failures = hotpath.compare_to_baseline(payload, baseline,
                                               args.tolerance)
        for failure in failures:
            print(failure)
        if failures:
            return 1
        print(f"end-to-end point within +{args.tolerance:.0%} of "
              f"{args.check}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "lint":
        from repro.analysis.lint import main as lint_main
        forwarded: List[str] = list(args.paths)
        forwarded += ["--format", args.format, "--baseline", args.baseline]
        for flag in ("no_baseline", "write_baseline", "update_baseline",
                     "list_rules"):
            if getattr(args, flag):
                forwarded.append("--" + flag.replace("_", "-"))
        return lint_main(forwarded)
    if args.command == "workloads":
        for name in workload_names():
            print(name)
        return 0
    if args.command == "storage":
        experiments.table2()
        return 0
    if args.command == "compare":
        from repro.experiments.report import comparison_report
        from repro.experiments.runner import ExperimentRunner, BenchScale
        from repro.experiments.sweep import Scheme
        runner = ExperimentRunner(BenchScale(
            num_cores=args.cores, sim_instructions=args.instructions))
        results = {
            scheme: runner.run_homogeneous(Scheme.parse(scheme),
                                           args.workload, args.channels)
            for scheme in args.schemes
        }
        baseline = "none" if "none" in results else args.schemes[0]
        print(comparison_report(
            results, baseline=baseline,
            title=f"{args.workload} x{args.cores} cores, "
                  f"{args.channels} channel(s)"))
        return 0
    if args.command == "characterize":
        from repro.trace.analysis import format_profile, profile_trace
        from repro.trace.synthetic import SyntheticWorkload
        from repro.trace.workloads import get_workload
        trace = SyntheticWorkload(get_workload(args.workload)).generate(
            args.instructions)
        print(format_profile(profile_trace(trace), name=args.workload))
        return 0
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
