"""Project call graph for the whole-program lint passes.

The per-file AST rules (SIM001-SIM008) judge each construct in
isolation; the determinism passes (SIM009-SIM011) instead ask a
*reachability* question: does this function's behaviour feed the
simulation state the golden-equivalence matrix pins?  This module
builds the call graph those passes walk.

Construction is name-based and deliberately over-approximate:

* a ``Name`` call (``helper()``) links to every function of that name
  defined in the same module, plus the target of an explicit
  ``from m import helper``;
* an ``Attribute`` call (``obj.method()``) links to *every* method of
  that name anywhere in the project (types are not tracked), plus the
  top-level function when the base resolves to an imported module;
* constructing an imported class links to its ``__init__``;
* defining a nested function links the enclosing function to it (the
  closure is almost always scheduled or returned to be called later).

Over-approximation errs on the safe side for the determinism rules --
a function is only exempt from them when *no* resolution reaches
simulation state.

A function *touches simulation state* directly when it

* calls an attribute named ``schedule``/``replay``/``defer`` (the
  :class:`~repro.sim.engine.Engine` and
  :class:`~repro.sim.hierarchy.port.Port` surfaces),
* constructs a ``*Stats``/``*Result`` class, or
* stores through a ``stats``-named attribute base
  (``self.stats.x = ...``, ``core.dram_stats.y += 1``).

:meth:`CallGraph.reaches_sim_state` is the transitive closure of those
roots over the call edges, memoised at build time.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Scope qualname used for statements at module level.
MODULE_SCOPE = "<module>"

#: Attribute calls that hand work to the engine/port scheduling seam.
_SCHEDULE_ATTRS = frozenset({"schedule", "replay", "defer"})

#: Class names whose construction counts as touching result state.
_RESULT_CLASS_RE = re.compile(r"(Stats|Result)$")

#: Attribute bases that hold simulation statistics (mirrors the SIM005
#: idiom): ``stats``, ``*_stats``, ``result``, ``*_result``.
_STATS_BASE_RE = re.compile(r"(^stats$)|(_stats$)|(^result$)|(_result$)")


@dataclass(frozen=True)
class FunctionRef:
    """Identity of one function in the project: file + dotted qualname."""

    path: str
    qualname: str

    def __str__(self) -> str:
        return f"{self.path}::{self.qualname}"


@dataclass
class _FunctionFacts:
    """Per-function raw facts collected in one pass over its body."""

    ref: FunctionRef
    line: int
    #: Bare-name call targets (``helper()``).
    name_calls: Set[str] = field(default_factory=set)
    #: Attribute call targets (``obj.method()`` -> ``method``), paired
    #: with the terminal name of the base (``obj``) when it is simple.
    attr_calls: Set[Tuple[str, str]] = field(default_factory=set)
    #: Nested functions defined inside this one.
    nested: Set[FunctionRef] = field(default_factory=set)
    #: Directly touches simulation state (see module docstring).
    touches_sim_state: bool = False


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _module_dotted(path: str) -> str:
    """``src/repro/sim/engine.py`` -> ``repro.sim.engine`` (best effort)."""
    norm = path.replace("\\", "/")
    if norm.endswith(".py"):
        norm = norm[:-3]
    if norm.endswith("/__init__"):
        norm = norm[: -len("/__init__")]
    parts = [p for p in norm.split("/") if p]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return ".".join(parts)


class _ModuleCollector:
    """One walk of a module: functions, classes, imports, sink facts."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.functions: Dict[str, _FunctionFacts] = {}
        #: Class qualnames defined at any level of this module.
        self.classes: Set[str] = set()
        #: from-imports: local name -> (source module, original name).
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: plain imports: local alias -> module dotted name.
        self.module_imports: Dict[str, str] = {}
        module_facts = self._new_function(MODULE_SCOPE, 1)
        self._collect_imports(tree)
        for stmt in tree.body:
            self._visit(stmt, [], module_facts)

    # -- plumbing ------------------------------------------------------

    def _new_function(self, qualname: str, line: int) -> _FunctionFacts:
        facts = _FunctionFacts(FunctionRef(self.path, qualname), line)
        self.functions[qualname] = facts
        return facts

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.module_imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        node.module, alias.name)

    # -- the walk ------------------------------------------------------

    def _visit(self, node: ast.AST, qual: List[str],
               facts: _FunctionFacts) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = ".".join(qual + [node.name])
            inner = self._new_function(qualname, node.lineno)
            facts.nested.add(inner.ref)
            # Decorators and defaults evaluate in the enclosing scope.
            for expr in (node.decorator_list
                         + node.args.defaults
                         + [d for d in node.args.kw_defaults
                            if d is not None]):
                self._scan_expr(expr, facts)
            for stmt in node.body:
                self._visit(stmt, qual + [node.name], inner)
            return
        if isinstance(node, ast.ClassDef):
            self.classes.add(".".join(qual + [node.name]))
            for expr in node.decorator_list + list(node.bases):
                self._scan_expr(expr, facts)
            # Class-level statements run in the enclosing scope; methods
            # become their own functions under the class qualname.
            for stmt in node.body:
                self._visit(stmt, qual + [node.name], facts)
            return
        self._scan_stmt(node, facts)

    def _scan_stmt(self, node: ast.AST, facts: _FunctionFacts) -> None:
        """Record calls/sinks for one statement (no nested functions)."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and _STATS_BASE_RE.search(
                            _terminal_name(target.value))):
                    facts.touches_sim_state = True
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                self._visit(child, self._qual_of(facts), facts)
            elif isinstance(child, ast.expr):
                self._scan_expr(child, facts)
            else:
                self._scan_stmt(child, facts)

    def _qual_of(self, facts: _FunctionFacts) -> List[str]:
        qualname = facts.ref.qualname
        return [] if qualname == MODULE_SCOPE else qualname.split(".")

    def _scan_expr(self, node: ast.expr, facts: _FunctionFacts) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                continue  # body scanned via walk anyway (expressions)
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                facts.name_calls.add(func.id)
                if _RESULT_CLASS_RE.search(func.id):
                    facts.touches_sim_state = True
            elif isinstance(func, ast.Attribute):
                base = _terminal_name(func.value)
                facts.attr_calls.add((func.attr, base))
                if func.attr in _SCHEDULE_ATTRS:
                    facts.touches_sim_state = True
                if _RESULT_CLASS_RE.search(func.attr):
                    facts.touches_sim_state = True


class CallGraph:
    """Name-resolved call edges plus sim-state reachability."""

    def __init__(self, modules: Sequence[Tuple[str, ast.Module]]) -> None:
        self._collectors: Dict[str, _ModuleCollector] = {}
        for path, tree in modules:
            self._collectors[path] = _ModuleCollector(path, tree)
        #: dotted module name -> path, for from-import resolution.
        self._by_dotted: Dict[str, str] = {
            _module_dotted(path): path for path in self._collectors}
        #: terminal function name -> refs, project-wide (methods and
        #: module functions alike), for attribute-call resolution.
        self._by_name: Dict[str, Set[FunctionRef]] = {}
        for collector in self._collectors.values():
            for qualname, facts in collector.functions.items():
                name = qualname.rsplit(".", 1)[-1]
                self._by_name.setdefault(name, set()).add(facts.ref)
        self.edges: Dict[FunctionRef, Set[FunctionRef]] = {}
        for collector in self._collectors.values():
            for facts in collector.functions.values():
                self.edges[facts.ref] = self._resolve_edges(collector,
                                                            facts)
        self._reaching = self._compute_reaching()

    # -- construction --------------------------------------------------

    def _functions_in(self, path: str,
                      name: str) -> List[FunctionRef]:
        collector = self._collectors.get(path)
        if collector is None:
            return []
        return [facts.ref
                for qualname, facts in collector.functions.items()
                if qualname.rsplit(".", 1)[-1] == name]

    def _resolve_edges(self, collector: _ModuleCollector,
                       facts: _FunctionFacts) -> Set[FunctionRef]:
        out: Set[FunctionRef] = set(facts.nested)
        for name in facts.name_calls:
            # Same-module definition (module-level or nested sibling).
            out.update(self._functions_in(collector.path, name))
            # Explicit from-import.
            imported = collector.from_imports.get(name)
            if imported is not None:
                src_path = self._by_dotted.get(imported[0])
                if src_path is not None:
                    target = imported[1]
                    out.update(self._functions_in(src_path, target))
                    # Constructing an imported class calls __init__.
                    src = self._collectors[src_path]
                    if target in src.classes:
                        out.update(self._functions_in(
                            src_path, "__init__"))
        for attr, base in facts.attr_calls:
            # Imported module attribute: resolve precisely.
            dotted = collector.module_imports.get(base)
            if dotted is not None:
                src_path = self._by_dotted.get(dotted)
                if src_path is not None:
                    out.update(self._functions_in(src_path, attr))
                    continue
            # Method call on an unknown object: every project function
            # of that terminal name (type-blind over-approximation).
            out.update(self._by_name.get(attr, ()))
        out.discard(facts.ref)
        return out

    def _compute_reaching(self) -> Set[FunctionRef]:
        reverse: Dict[FunctionRef, Set[FunctionRef]] = {}
        roots: List[FunctionRef] = []
        for collector in self._collectors.values():
            for facts in collector.functions.values():
                if facts.touches_sim_state:
                    roots.append(facts.ref)
        for src, dsts in self.edges.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        reaching: Set[FunctionRef] = set()
        stack = list(roots)
        while stack:
            ref = stack.pop()
            if ref in reaching:
                continue
            reaching.add(ref)
            stack.extend(reverse.get(ref, ()))
        return reaching

    # -- queries -------------------------------------------------------

    def functions(self) -> List[FunctionRef]:
        return sorted(self.edges, key=str)

    def callees_of(self, ref: FunctionRef) -> Set[FunctionRef]:
        return self.edges.get(ref, set())

    def touches_sim_state(self, ref: FunctionRef) -> bool:
        collector = self._collectors.get(ref.path)
        if collector is None:
            return False
        facts = collector.functions.get(ref.qualname)
        return facts is not None and facts.touches_sim_state

    def reaches_sim_state(self, ref: FunctionRef) -> bool:
        """True when ``ref`` (or anything it may call, transitively)
        schedules events, replays a port, or writes result/stats state.

        Unknown functions answer True: a function the graph has never
        seen gets the conservative treatment.
        """
        if ref in self.edges:
            return ref in self._reaching
        return True


def build_callgraph(
        modules: Sequence[Tuple[str, ast.Module]]) -> CallGraph:
    """Build the project call graph over ``(path, parsed module)`` pairs."""
    return CallGraph(modules)


def function_ref(path: str, scope_parts: Sequence[str],
                 name: Optional[str] = None) -> FunctionRef:
    """Ref for the function ``name`` defined under ``scope_parts``
    (the lint walker's scope stack), or the enclosing scope itself."""
    parts = list(scope_parts)
    if name is not None:
        parts.append(name)
    return FunctionRef(path, ".".join(parts) or MODULE_SCOPE)
