"""Forward dataflow / taint framework for the whole-program passes.

A :class:`TaintSpec` names the *sources* that introduce a taint label
(``set(...)``, ``os.listdir(...)``, ``time.time()``, ...), the calls
that *sanitize* it (``sorted(...)``), and the calls that *propagate* it
(``list(...)`` keeps a set's arbitrary order; ``len(...)`` does not).
:class:`TaintAnalysis` then interprets one function body forward,
tracking an abstract environment ``variable -> frozenset[label]`` and
recording the label set of **every expression it evaluates**, keyed by
node identity.  Rules query :meth:`TaintResult.of` on the nodes they
care about (a ``for`` loop's iterable, ``sum()``'s argument, an
assignment's value) and raise findings.

Design points, chosen for lint-grade precision rather than soundness
proofs:

* branches are joined with set union; ``for``/``while`` bodies are
  interpreted twice so loop-carried taint reaches a fixpoint for the
  label lattices rules actually use (small, no infinite ascending
  chains);
* nested ``def``/``class`` bodies are *skipped* -- the lint walker
  visits them separately, each with a fresh environment;
* calls are untainted by default: only spec-listed propagators carry
  taint through, so ``len(tainted)`` or ``min(tainted)`` (order-
  insensitive reductions) do not smear labels over the function;
* comprehensions inherit the labels of their iterables -- a list built
  from a set (``[x for x in s]``) is itself nondeterministically
  ordered -- except when the element expression is a constant, whose
  accumulation cannot depend on order.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

Labels = FrozenSet[str]
EMPTY: Labels = frozenset()


class TaintSpec:
    """Sources, sanitizers, and propagation policy for one analysis."""

    #: ``Name`` calls that preserve their first argument's taint
    #: (they keep iteration order as-is).
    propagate_functions: FrozenSet[str] = frozenset(
        {"list", "tuple", "iter", "reversed", "enumerate"})
    #: Method calls that preserve their base object's taint.
    propagate_methods: FrozenSet[str] = frozenset(
        {"copy", "union", "intersection", "difference",
         "symmetric_difference"})
    #: ``Name`` calls that erase taint by imposing an order.
    sanitizer_functions: FrozenSet[str] = frozenset({"sorted"})

    def source(self, node: ast.expr) -> Optional[str]:
        """Label introduced by ``node`` itself, or ``None``."""
        return None

    def sanitizes(self, call: ast.Call) -> bool:
        func = call.func
        return (isinstance(func, ast.Name)
                and func.id in self.sanitizer_functions)


class TaintResult:
    """Label sets recorded per evaluated expression node."""

    def __init__(self) -> None:
        self._labels: Dict[int, Labels] = {}

    def record(self, node: ast.AST, labels: Labels) -> None:
        if labels:
            self._labels[id(node)] = labels

    def of(self, node: ast.AST) -> Labels:
        return self._labels.get(id(node), EMPTY)


#: Statement types whose bodies are skipped (analysed separately).
_SKIPPED_BODIES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class TaintAnalysis:
    """Forward abstract interpretation of one function body."""

    def __init__(self, spec: TaintSpec) -> None:
        self.spec = spec
        self.result = TaintResult()

    def run(self, body: Sequence[ast.stmt],
            initial: Optional[Dict[str, Labels]] = None) -> TaintResult:
        self.result = TaintResult()
        env: Dict[str, Labels] = dict(initial or {})
        self._exec_block(body, env)
        return self.result

    # -- statements ----------------------------------------------------

    def _exec_block(self, body: Iterable[ast.stmt],
                    env: Dict[str, Labels]) -> None:
        for stmt in body:
            self._exec(stmt, env)

    @staticmethod
    def _join(env: Dict[str, Labels],
              other: Dict[str, Labels]) -> Dict[str, Labels]:
        joined = dict(env)
        for name, labels in other.items():
            joined[name] = joined.get(name, EMPTY) | labels
        return joined

    def _exec(self, stmt: ast.stmt, env: Dict[str, Labels]) -> None:
        if isinstance(stmt, _SKIPPED_BODIES):
            for expr in stmt.decorator_list:
                self._eval(expr, env)
            return
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, labels, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, env), env)
            return
        if isinstance(stmt, ast.AugAssign):
            labels = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = (env.get(stmt.target.id, EMPTY)
                                       | labels)
            else:
                self._bind(stmt.target, labels, env)
            return
        if isinstance(stmt, (ast.If,)):
            self._eval(stmt.test, env)
            then_env = dict(env)
            self._exec_block(stmt.body, then_env)
            else_env = dict(env)
            self._exec_block(stmt.orelse, else_env)
            env.clear()
            env.update(self._join(then_env, else_env))
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._eval(stmt.iter, env)
            loop_env = dict(env)
            self._bind(stmt.target, iter_labels, loop_env)
            # Two passes: the second sees loop-carried taint.
            self._exec_block(stmt.body, loop_env)
            self._bind(stmt.target, iter_labels, loop_env)
            self._exec_block(stmt.body, loop_env)
            merged = self._join(env, loop_env)
            self._exec_block(stmt.orelse, merged)
            env.clear()
            env.update(merged)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            loop_env = dict(env)
            self._exec_block(stmt.body, loop_env)
            self._exec_block(stmt.body, loop_env)
            merged = self._join(env, loop_env)
            self._exec_block(stmt.orelse, merged)
            env.clear()
            env.update(merged)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels, env)
            self._exec_block(stmt.body, env)
            return
        if isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            joined = body_env
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env)
                joined = self._join(joined, handler_env)
            env.clear()
            env.update(joined)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
                else:
                    self._eval(target, env)
            return
        # Return / Expr / Raise / Assert / everything else: evaluate
        # any expression children so their labels are recorded.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, env)
            elif isinstance(child, ast.stmt):
                self._exec(child, env)

    def _bind(self, target: ast.expr, labels: Labels,
              env: Dict[str, Labels]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels, env)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Evaluate the pieces so stores like ``d[id(x)] = v`` leave
            # the key's labels queryable; the heap is not modelled.
            for child in ast.iter_child_nodes(target):
                if isinstance(child, ast.expr):
                    self._eval(child, env)

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr, env: Dict[str, Labels]) -> Labels:
        labels = self._eval_inner(node, env)
        self.result.record(node, labels)
        return labels

    def _eval_inner(self, node: ast.expr,
                    env: Dict[str, Labels]) -> Labels:
        spec = self.spec
        source = spec.source(node)
        if isinstance(node, ast.Name):
            base = env.get(node.id, EMPTY)
            return base | {source} if source else base
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                base_labels = self._eval(func.value, env)
            else:
                base_labels = EMPTY
            arg_labels = EMPTY
            for arg in node.args:
                arg_labels |= self._eval(arg, env)
            for keyword in node.keywords:
                arg_labels |= self._eval(keyword.value, env)
            if spec.sanitizes(node):
                return EMPTY
            if source is not None:
                return frozenset({source})
            if (isinstance(func, ast.Name)
                    and func.id in spec.propagate_functions):
                return arg_labels
            if (isinstance(func, ast.Attribute)
                    and func.attr in spec.propagate_methods):
                return base_labels | arg_labels
            return EMPTY
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env)
            return frozenset({source}) if source else EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            comp_labels = EMPTY
            comp_env = dict(env)
            for generator in node.generators:
                gen_labels = self._eval(generator.iter, comp_env)
                self._bind(generator.target, gen_labels, comp_env)
                for cond in generator.ifs:
                    self._eval(cond, comp_env)
                comp_labels |= gen_labels
            if isinstance(node, ast.DictComp):
                self._eval(node.key, comp_env)
                self._eval(node.value, comp_env)
            else:
                element = self._eval(node.elt, comp_env)
                if source is None and isinstance(node.elt, ast.Constant):
                    # Accumulating a constant per element cannot depend
                    # on iteration order.
                    return element
            if source is not None:
                # The comprehension is itself a source (a SetComp under
                # the unordered-provenance spec) regardless of what it
                # iterates.
                return frozenset({source})
            return comp_labels
        if isinstance(node, ast.Lambda):
            return EMPTY  # analysed when the lint walker reaches it
        if isinstance(node, ast.Subscript):
            self._eval(node.value, env)
            self._eval(node.slice, env)
            return EMPTY
        if source is not None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return frozenset({source})
        # Generic expression: union over child expressions (BinOp,
        # BoolOp, Compare, IfExp, Starred, f-strings, literals, ...).
        labels = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self._eval(child, env)
        return labels


def walk_excluding_nested(body: Sequence[ast.stmt]) -> List[ast.AST]:
    """Every node under ``body`` except nested function/class bodies.

    The lint walker dispatches nested scopes separately; rules pairing
    a per-function :class:`TaintAnalysis` with a node scan use this to
    stay aligned with what the analysis actually interpreted.
    """
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SKIPPED_BODIES):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out
