"""Baseline suppression file for the lint passes.

New rules land against an existing codebase; the baseline file
(``analysis-baseline.toml`` at the repo root) records every *accepted*
pre-existing violation so the lint gate can be red-for-new-violations
from day one while the backlog is burned down incrementally.

Format -- one array of fingerprints per rule::

    # analysis-baseline.toml
    [suppressions]
    SIM002 = [
        "src/repro/sim/engine.py::Engine.run",
    ]

A fingerprint is ``<path>::<scope>`` (scope = dotted class/function
qualname, or ``<module>``), deliberately *line-number free*: unrelated
edits moving code around a file do not invalidate the baseline, while
moving the violation to a different function surfaces it again.

``python -m repro.analysis --write-baseline`` regenerates the file from
the current findings.  Parsing uses :mod:`tomllib` when available
(Python >= 3.11) and falls back to a minimal parser for the restricted
subset this module itself emits, keeping Python 3.10 supported without
third-party TOML dependencies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Set

from repro.analysis.framework import Violation

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

_HEADER = """\
# Lint baseline: accepted pre-existing violations, one list per rule.
# Entries are "<path>::<scope>" fingerprints (line-number independent).
# Regenerate with: python -m repro.analysis --write-baseline
# Burn-down: fix a violation, then delete its entry (or regenerate).
"""


class Baseline:
    """Suppressions keyed by rule id."""

    def __init__(self,
                 suppressions: Dict[str, Set[str]] | None = None) -> None:
        self.suppressions: Dict[str, Set[str]] = suppressions or {}

    def is_suppressed(self, violation: Violation) -> bool:
        return violation.fingerprint in self.suppressions.get(
            violation.rule_id, ())

    @property
    def entry_count(self) -> int:
        return sum(len(v) for v in self.suppressions.values())

    def unused(self, violations: Iterable[Violation]) -> List[
            "tuple[str, str]"]:
        """Baseline entries no current violation matches (stale
        fingerprints: the violation was fixed but the suppression
        stayed behind).  Returns sorted ``(rule_id, fingerprint)``
        pairs."""
        used: Dict[str, Set[str]] = {}
        for violation in violations:
            used.setdefault(violation.rule_id, set()).add(
                violation.fingerprint)
        stale = [
            (rule_id, fingerprint)
            for rule_id, fingerprints in self.suppressions.items()
            for fingerprint in fingerprints
            if fingerprint not in used.get(rule_id, ())
        ]
        return sorted(stale)

    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load ``path``; a missing file yields an empty baseline."""
        if not path.is_file():
            return cls()
        text = path.read_text()
        if tomllib is not None:
            data = tomllib.loads(text)
            raw = data.get("suppressions", {})
        else:  # pragma: no cover - exercised only on Python 3.10
            raw = _parse_restricted_toml(text)
        suppressions: Dict[str, Set[str]] = {}
        for rule_id, fingerprints in raw.items():
            if not isinstance(fingerprints, list):
                raise ValueError(
                    f"baseline entry {rule_id!r} must be a list of "
                    f"fingerprints")
            suppressions[rule_id] = {str(f) for f in fingerprints}
        return cls(suppressions)

    @classmethod
    def from_violations(cls,
                        violations: Iterable[Violation]) -> "Baseline":
        suppressions: Dict[str, Set[str]] = {}
        for violation in violations:
            suppressions.setdefault(violation.rule_id, set()).add(
                violation.fingerprint)
        return cls(suppressions)

    def dump(self, path: Path) -> None:
        """Write the baseline in the restricted TOML subset we parse."""
        lines: List[str] = [_HEADER, "[suppressions]"]
        for rule_id in sorted(self.suppressions):
            fingerprints = sorted(self.suppressions[rule_id])
            if not fingerprints:
                continue
            lines.append(f"{rule_id} = [")
            for fingerprint in fingerprints:
                lines.append(f'    "{fingerprint}",')
            lines.append("]")
        path.write_text("\n".join(lines) + "\n")


def _parse_restricted_toml(text: str) -> Dict[str, List[str]]:
    """Parse the exact subset :meth:`Baseline.dump` emits (3.10 fallback).

    Supports ``[suppressions]`` with ``KEY = [ "string", ... ]`` arrays,
    possibly spanning lines, plus comments and blank lines.
    """
    raw: Dict[str, List[str]] = {}
    in_table = False
    current_key: str | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("["):
            in_table = stripped == "[suppressions]"
            continue
        if not in_table:
            continue
        if current_key is None:
            key, _, rest = stripped.partition("=")
            current_key = key.strip()
            raw[current_key] = []
            stripped = rest.strip()
        while stripped:
            if stripped.startswith("["):
                stripped = stripped[1:].strip()
                continue
            if stripped.startswith("]"):
                current_key = None
                break
            if stripped.startswith('"') and current_key is not None:
                end = stripped.index('"', 1)
                raw[current_key].append(stripped[1:end])
                stripped = stripped[end + 1:].lstrip(", ").strip()
                continue
            raise ValueError(f"cannot parse baseline line: {line!r}")
    return raw
