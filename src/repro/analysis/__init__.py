"""Correctness net for the simulator: static lint passes + runtime
invariant sanitizer.

Two halves (docs/static_analysis.md has the full catalogue):

* :mod:`repro.analysis.lint` -- AST passes enforcing simulator
  discipline (determinism, integral time, registered counters, ...),
  run as ``python -m repro.analysis`` or ``repro lint`` and gated in CI
  against the ``analysis-baseline.toml`` suppression file;
* :mod:`repro.analysis.sanitizer` -- an opt-in
  (``REPRO_SANITIZE=1`` / ``SystemConfig.sanitize``) checker layer that
  wraps the engine, MSHRs, caches, DRAM channels, NoC, and cores with
  invariant assertions; when disabled, nothing is wrapped and the hot
  paths are untouched.

Only the dependency-free invariant primitives are imported eagerly, so
hot simulator modules can ``from repro.analysis.invariants import
check`` without pulling in the AST machinery.
"""

from repro.analysis.invariants import SimulationInvariantError, check

__all__ = ["SimulationInvariantError", "check"]
