"""Lint driver: file collection, project pass, baseline, CLI.

Entry points:

* ``python -m repro.analysis`` (see :mod:`repro.analysis.__main__`);
* ``repro lint`` (see :mod:`repro.cli`);
* :func:`run_lint` for programmatic use (tests, CI glue).

Exit status is 0 when every violation is either fixed or listed in the
baseline file, 1 otherwise -- the contract CI relies on.
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.framework import (ProjectIndex, iter_python_files,
                                      lint_tree)
from repro.analysis.report import (LintReport, render_github, render_json,
                                   render_rule_catalogue, render_sarif,
                                   render_text)
from repro.analysis.rules import default_rules

DEFAULT_BASELINE = "analysis-baseline.toml"


def _default_paths() -> List[Path]:
    """``src/repro`` under the current directory, else the package dir."""
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    import repro
    return [Path(repro.__file__).resolve().parent]


def _display_path(path: Path, root: Path) -> str:
    """Stable, baseline-friendly path: root-relative POSIX when possible."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(paths: Optional[Sequence[Path]] = None,
             root: Optional[Path] = None,
             baseline: Optional[Baseline] = None) -> LintReport:
    """Lint ``paths`` (defaults to ``src/repro``) against ``baseline``."""
    root = root or Path.cwd()
    targets = list(paths) if paths else _default_paths()
    for target in targets:
        if not target.exists():
            raise SystemExit(f"no such file or directory: {target}")
    files = iter_python_files(targets)
    baseline = baseline or Baseline()
    rules = default_rules()
    report = LintReport()
    project = ProjectIndex()
    parsed = []
    for path in files:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise SystemExit(f"cannot parse {path}: {exc}") from exc
        display = _display_path(path, root)
        project.collect(tree, display)
        parsed.append((display, tree, source))
    # Cross-file structures (call graph) need every module collected
    # before any whole-program rule fires.
    project.finalize()
    for display, tree, source in parsed:
        for violation in lint_tree(display, tree, source, rules, project):
            if baseline.is_suppressed(violation):
                report.suppressed.append(violation)
            else:
                report.violations.append(violation)
    report.checked_files = len(parsed)
    report.unused_suppressions = baseline.unused(
        report.violations + report.suppressed)
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator-discipline static analysis for src/repro")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format",
                        choices=["text", "json", "github", "sarif"],
                        default="text",
                        help="output format (github = GitHub Actions "
                             "::error annotations, sarif = SARIF 2.1.0 "
                             "JSON for code-scanning upload)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(DEFAULT_BASELINE),
                        help=f"baseline suppression file "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every violation, ignoring the "
                             "baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write all current violations to the "
                             "baseline file and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings: new violations are added, "
                             "stale (unused) suppressions are dropped; "
                             "running it twice yields an identical "
                             "file")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_catalogue())
        return 0
    baseline = Baseline()
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(args.baseline)
    report = run_lint(args.paths or None, baseline=baseline)
    if args.write_baseline:
        Baseline.from_violations(report.violations).dump(args.baseline)
        print(f"wrote {len(report.violations)} suppression(s) to "
              f"{args.baseline}")
        return 0
    if args.update_baseline:
        refreshed = Baseline.from_violations(report.violations
                                             + report.suppressed)
        refreshed.dump(args.baseline)
        print(f"updated {args.baseline}: {refreshed.entry_count} "
              f"entr(ies) ({len(report.violations)} added, "
              f"{len(report.unused_suppressions)} stale removed)")
        return 0
    if args.format == "json":
        print(render_json(report))
    elif args.format == "github":
        print(render_github(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1
