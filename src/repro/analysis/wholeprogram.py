"""Whole-program determinism and compilation-readiness passes.

SIM001-SIM008 judge constructs file-locally; the passes here combine
the project :mod:`call graph <repro.analysis.callgraph>` with the
forward :mod:`taint framework <repro.analysis.dataflow>` to answer the
question the golden-equivalence matrix silently depends on: *can this
construct perturb simulation state between two runs of the same
configuration?*

========  ========================  ====================================
ID        Name                      Enforces
========  ========================  ====================================
SIM009    nondet-iteration          no iteration over unordered
                                    collections on sim-state paths
SIM010    rng-outside-trace         RNG construction/use only in
                                    ``repro.trace`` generators
SIM011    entropy-in-sim-state      no wall-clock/``id()``/``hash()``
                                    values influencing sim state
SIM012    unordered-reduction       no ``sum()``-style reductions over
                                    unordered collections
SIM013    compile-readiness         hot-set modules stay free of the
                                    dynamic tricks that block mypyc
========  ========================  ====================================

The first three are *gated* on call-graph reachability: the construct
is flagged only inside a function from which engine scheduling, port
replay, or ``*Stats``/``*Result`` writes are reachable, so utility and
reporting code stays lintable without noise.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import function_ref
from repro.analysis.dataflow import (TaintAnalysis, TaintResult, TaintSpec,
                                     walk_excluding_nested)
from repro.analysis.framework import LintContext, Rule, Violation

#: Modules that must stay compilable by a mypyc/Cython backend
#: (ROADMAP: the vectorized/compiled fast path for the 64-core config).
COMPILE_HOT_SET = (
    "src/repro/sim/engine.py",
    "src/repro/cache/",
    "src/repro/sim/hierarchy/",
)

#: Path fragment marking the sanctioned home of randomness.
_TRACE_PATH_RE = re.compile(r"(^|/)trace/")

#: ``random`` module functions drawing from the process-global state
#: (kept in sync with SIM001's list).
_GLOBAL_RNG_FUNCS = {
    "random", "randrange", "randint", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "randbytes", "getrandbits", "seed",
}

_WALLCLOCK_TIME_FUNCS = {"time", "monotonic", "perf_counter",
                         "process_time", "monotonic_ns", "time_ns",
                         "perf_counter_ns"}

_LISTDIR_ATTRS = {"listdir", "scandir", "iterdir", "glob", "rglob"}
_LISTDIR_NAMES = {"listdir", "scandir", "glob", "iglob"}

_REDUCTION_NAMES = {"sum", "fsum", "fmean", "mean"}
_REDUCTION_ATTRS = {"fsum", "mean", "fmean", "geometric_mean",
                    "harmonic_mean"}


def _scoped_violation(rule: Rule, ctx: LintContext, node: ast.AST,
                      scope: str, message: str) -> Violation:
    """A violation whose fingerprint scope is supplied explicitly.

    The function-granular rules dispatch on ``FunctionDef`` nodes, so
    ``ctx.scope`` still names the *enclosing* scope; fingerprints must
    use the analysed function's own qualname to stay stable.
    """
    return Violation(rule_id=rule.id, message=message, path=ctx.path,
                     line=getattr(node, "lineno", 0),
                     column=getattr(node, "col_offset", 0), scope=scope)


def _function_scope_and_body(
        node: ast.AST,
        ctx: LintContext) -> Optional[Tuple[str, Sequence[ast.stmt]]]:
    """(qualname, body) when ``node`` opens an analysable code body."""
    if isinstance(node, ast.Module):
        return "<module>", node.body
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qualname = ".".join(list(ctx.scope_stack) + [node.name])
        return qualname, node.body
    return None


def _reaches_sim_state(ctx: LintContext, qualname: str) -> bool:
    """Call-graph gate; unknown graphs answer True (conservative)."""
    graph = ctx.project.callgraph
    if graph is None:
        return True
    scope = [] if qualname == "<module>" else qualname.split(".")
    return graph.reaches_sim_state(function_ref(ctx.path, scope))


class UnorderedProvenanceSpec(TaintSpec):
    """Taints values whose iteration order Python does not define:
    (frozen)sets and unsorted directory listings."""

    def __init__(self, ctx: LintContext) -> None:
        self._set_attributes = ctx.project.set_attributes

    def source(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Attribute):
            if node.attr in self._set_attributes:
                return f"set-typed attribute {node.attr!r}"
            return None
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
            if func.id in _LISTDIR_NAMES:
                return f"an unsorted {func.id}(...) listing"
        elif isinstance(func, ast.Attribute):
            if func.attr in _LISTDIR_ATTRS:
                return f"an unsorted .{func.attr}(...) listing"
        return None


class NondeterministicIterationRule(Rule):
    """SIM009: no unordered iteration on a simulation-state path.

    Iterating a ``set`` (or an unsorted ``os.listdir``/``Path.glob``
    listing) yields elements in an order that varies with insertion
    history and ``PYTHONHASHSEED``.  When such a loop feeds
    ``Engine.schedule``, port replay, or a ``*Stats``/``*Result``
    field -- directly or through any function it calls -- two runs of
    the same configuration can diverge, which is exactly the failure
    the golden-equivalence matrix cannot localise.  Taint is tracked
    through assignments, order-preserving conversions (``list``,
    ``tuple``, ``.copy()``, ...) and comprehensions; ``sorted(...)``
    sanitizes.  Functions from which no sim-state sink is reachable in
    the project call graph are exempt.
    """

    id = "SIM009"
    name = "nondet-iteration"
    summary = "iteration over an unordered collection on a sim-state path"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        scoped = _function_scope_and_body(node, ctx)
        if scoped is None:
            return
        qualname, body = scoped
        if not _reaches_sim_state(ctx, qualname):
            return
        result = TaintAnalysis(UnorderedProvenanceSpec(ctx)).run(body)
        for sub in walk_excluding_nested(body):
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                labels = result.of(sub.iter)
                if labels:
                    yield _scoped_violation(
                        self, ctx, sub, qualname,
                        f"iterates {' / '.join(sorted(labels))} on a "
                        f"path that reaches simulation state; wrap the "
                        f"iterable in sorted(...) for a defined order")
            elif isinstance(sub, (ast.ListComp, ast.SetComp,
                                  ast.GeneratorExp, ast.DictComp)):
                for generator in sub.generators:
                    labels = result.of(generator.iter)
                    if labels:
                        yield _scoped_violation(
                            self, ctx, sub, qualname,
                            f"comprehension iterates "
                            f"{' / '.join(sorted(labels))} on a path "
                            f"that reaches simulation state; wrap the "
                            f"iterable in sorted(...)")
                        break


class RngOutsideTraceRule(Rule):
    """SIM010: randomness lives only in the ``repro.trace`` generators.

    The simulator proper must be a pure function of its configuration;
    only workload *generation* is sanctioned to consume (seeded)
    randomness, because its draws are part of the configuration-keyed
    trace.  Constructing any RNG -- even a seeded ``random.Random`` --
    or calling the process-global RNG inside a function from which
    simulation state is reachable, outside ``repro/trace/``, creates a
    second entropy source the sweep cache keys and golden pins know
    nothing about.  SIM001 already rejects *unseeded* RNGs everywhere;
    this pass additionally rejects well-seeded ones that leak into the
    model.
    """

    id = "SIM010"
    name = "rng-outside-trace"
    summary = "RNG construction/use outside repro.trace on a sim-state path"

    def __init__(self) -> None:
        #: Local names bound to ``random.Random``/``SystemRandom`` via
        #: from-imports (the framework's index deliberately skips
        #: ``Random`` for SIM001; this pass needs it).  Per-file state,
        #: rebuilt by :meth:`prepare`.
        self._rng_classes: Set[str] = set()

    def prepare(self, ctx: LintContext) -> None:
        self._rng_classes = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.ImportFrom)
                    and node.module in ("random", "numpy.random")):
                for alias in node.names:
                    if alias.name in ("Random", "SystemRandom",
                                     "default_rng"):
                        self._rng_classes.add(alias.asname or alias.name)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        if _TRACE_PATH_RE.search(ctx.path):
            return
        described = self._describe_rng(node, ctx)
        if described is None:
            return
        if not _reaches_sim_state(ctx, ctx.scope or "<module>"):
            return
        yield self.violation(
            ctx, node,
            f"{described} on a path that reaches simulation state; "
            f"randomness belongs in the repro.trace generators (pass "
            f"precomputed values into the model instead)")

    def _describe_rng(self, node: ast.Call,
                      ctx: LintContext) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._rng_classes:
                return f"RNG construction {func.id}(...)"
            if func.id in ctx.random_functions:
                return (f"module-global RNG call "
                        f"{ctx.random_functions[func.id]!r}")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name) and base.id in ctx.random_modules:
            if func.attr in ("Random", "SystemRandom"):
                return f"RNG construction random.{func.attr}(...)"
            if func.attr in _GLOBAL_RNG_FUNCS:
                return f"module-global RNG call random.{func.attr}()"
            return None
        if (isinstance(base, ast.Attribute) and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ctx.numpy_modules
                and func.attr == "default_rng"):
            return "RNG construction numpy.random.default_rng(...)"
        return None


class EntropySpec(TaintSpec):
    """Taints wall-clock reads, ``id()`` results, and ``hash()`` of
    anything that is not a literal (str hashes vary with
    ``PYTHONHASHSEED``; object hashes fall back to ``id``)."""

    propagate_functions = TaintSpec.propagate_functions | frozenset(
        {"int", "abs", "round", "str", "hex"})
    sanitizer_functions = frozenset()

    def __init__(self, ctx: LintContext) -> None:
        self._ctx = ctx

    def source(self, node: ast.expr) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        ctx = self._ctx
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                return "an id(...) value"
            if func.id == "hash" and not self._literal_args(node):
                return "a hash(...) value"
            if func.id in ctx.time_functions:
                return f"wall-clock {ctx.time_functions[func.id]}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if (isinstance(base, ast.Name) and base.id in ctx.time_modules
                and func.attr in _WALLCLOCK_TIME_FUNCS):
            return f"wall-clock time.{func.attr}()"
        if func.attr in ("now", "utcnow", "today"):
            if (isinstance(base, ast.Name)
                    and base.id in ctx.datetime_modules):
                return f"wall-clock datetime.{func.attr}()"
            if (isinstance(base, ast.Attribute)
                    and base.attr == "datetime"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in ctx.datetime_modules):
                return f"wall-clock datetime.{func.attr}()"
        return None

    @staticmethod
    def _literal_args(node: ast.Call) -> bool:
        def literal(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Constant):
                return True
            if isinstance(expr, ast.Tuple):
                return all(literal(e) for e in expr.elts)
            return False
        return bool(node.args) and all(literal(a) for a in node.args)


class EntropyInSimStateRule(Rule):
    """SIM011: host entropy must not influence simulation state.

    Wall-clock reads, ``id()``-keyed containers, and ``hash()`` of
    non-frozen values all change between runs (ASLR, allocation order,
    ``PYTHONHASHSEED``) while the simulated configuration stays
    identical.  This pass taints those values and flags them flowing
    into state: stored through an attribute, used as a container
    key/index, ordering a sort, or passed to a ``schedule`` call --
    within any function from which simulation state is reachable.
    SIM007 rejects wall-clock *calls* syntactically; this pass catches
    the laundered values and the ``id``/``hash`` family SIM007 cannot
    see.
    """

    id = "SIM011"
    name = "entropy-in-sim-state"
    summary = "wall-clock/id()/hash() value flowing into simulation state"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        scoped = _function_scope_and_body(node, ctx)
        if scoped is None:
            return
        qualname, body = scoped
        if not _reaches_sim_state(ctx, qualname):
            return
        result = TaintAnalysis(EntropySpec(ctx)).run(body)
        seen: Set[int] = set()
        for sub in walk_excluding_nested(body):
            for finding in self._findings_at(sub, result):
                if id(sub) in seen:
                    break
                seen.add(id(sub))
                yield _scoped_violation(self, ctx, sub, qualname, finding)

    def _findings_at(self, sub: ast.AST,
                     result: TaintResult) -> Iterator[str]:
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            if sub.value is None:
                return
            labels = result.of(sub.value)
            if labels and any(isinstance(t, ast.Attribute)
                              for t in targets):
                yield (f"{' / '.join(sorted(labels))} stored into an "
                       f"attribute; simulation state must derive only "
                       f"from the configuration and engine.now")
        elif isinstance(sub, ast.Subscript):
            labels = result.of(sub.slice)
            if labels:
                yield (f"{' / '.join(sorted(labels))} used as a "
                       f"container key/index; keys must be stable "
                       f"across runs (use an explicit field, not "
                       f"id()/hash())")
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (isinstance(func, ast.Attribute)
                    and func.attr == "schedule"):
                for arg in sub.args:
                    labels = result.of(arg)
                    if labels:
                        yield (f"{' / '.join(sorted(labels))} passed "
                               f"into a schedule(...) call; event "
                               f"timing must be a function of "
                               f"simulated time only")
                        return
            if (isinstance(func, ast.Name)
                    and func.id in ("sorted", "min", "max")) or (
                    isinstance(func, ast.Attribute)
                    and func.attr == "sort"):
                for keyword in sub.keywords:
                    if keyword.arg == "key" and self._is_entropy_key(
                            keyword.value):
                        yield ("ordering by id()/hash() is "
                               "allocation-dependent; sort by a stable "
                               "field instead")
                        return

    @staticmethod
    def _is_entropy_key(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name) and expr.id in ("id", "hash"):
            return True
        if isinstance(expr, ast.Lambda):
            return any(isinstance(sub, ast.Call)
                       and isinstance(sub.func, ast.Name)
                       and sub.func.id in ("id", "hash")
                       for sub in ast.walk(expr.body))
        return False


class UnorderedReductionRule(Rule):
    """SIM012: reductions over unordered collections must pick an order.

    Float addition is not associative: ``sum()`` over a set (or any
    unordered provenance) yields results that differ in the last ulp
    between runs, which the bit-identical golden matrix and the sweep
    cache's value-equality checks both surface as flakes.  Statistics
    and metrics reductions must impose an explicit order --
    ``sum(sorted(xs))`` -- or accumulate over an insertion-ordered
    container.  Constant-element accumulations (``sum(1 for _ in s)``)
    are order-insensitive and stay clean.
    """

    id = "SIM012"
    name = "unordered-reduction"
    summary = "sum()/mean() over an unordered collection"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        scoped = _function_scope_and_body(node, ctx)
        if scoped is None:
            return
        qualname, body = scoped
        result = TaintAnalysis(UnorderedProvenanceSpec(ctx)).run(body)
        for sub in walk_excluding_nested(body):
            if not (isinstance(sub, ast.Call) and sub.args):
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                reducer = func.id if func.id in _REDUCTION_NAMES else None
            elif isinstance(func, ast.Attribute):
                reducer = (func.attr if func.attr in _REDUCTION_ATTRS
                           else None)
            else:
                reducer = None
            if reducer is None:
                continue
            labels = result.of(sub.args[0])
            if labels:
                yield _scoped_violation(
                    self, ctx, sub, qualname,
                    f"{reducer}() over {' / '.join(sorted(labels))}: "
                    f"float accumulation order is undefined; reduce "
                    f"over sorted(...) (or an insertion-ordered "
                    f"container) for reproducible results")


class CompilationReadinessRule(Rule):
    """SIM013: the declared hot set stays statically compilable.

    The ROADMAP's compiled fast path (mypyc/Cython over
    ``repro.sim.engine``, ``repro.cache``, ``repro.sim.hierarchy``)
    requires classes with a fixed attribute layout: no ``setattr``/
    ``delattr``/``vars(obj)``, no ``__dict__`` access, no ``import *``,
    no attributes materialised outside ``__init__``, and no writes
    outside a declared ``__slots__``.  This pass flags those blockers
    everywhere (dynamic attribute tricks are a maintenance hazard
    generally) but only hot-set findings are fix-on-sight; elsewhere
    they may be baselined with a justification comment.
    """

    id = "SIM013"
    name = "compile-readiness"
    summary = "dynamic attribute trick that blocks the compiled backend"

    _INIT_LIKE = ("__init__", "__post_init__", "__new__")

    def __init__(self) -> None:
        #: ``id(project)`` of the last-indexed :class:`ProjectIndex`;
        #: the class-declaration index below is rebuilt when it changes.
        self._indexed_project: Optional[int] = None
        #: Simple class name -> attributes it declares itself (class
        #: body, ``__slots__``, init-like self stores), project-wide.
        self._class_declared: Dict[str, Set[str]] = {}
        #: Simple class name -> simple names of its bases, project-wide.
        self._class_bases: Dict[str, Set[str]] = {}

    def prepare(self, ctx: LintContext) -> None:
        project = ctx.project
        if self._indexed_project == id(project):
            return
        self._indexed_project = id(project)
        self._class_declared = {}
        self._class_bases = {}
        for _path, tree in project.modules:
            for sub in ast.walk(tree):
                if not isinstance(sub, ast.ClassDef):
                    continue
                declared, _slots = self._own_declarations(sub)
                self._class_declared.setdefault(
                    sub.name, set()).update(declared)
                bases = self._class_bases.setdefault(sub.name, set())
                for base in sub.bases:
                    if isinstance(base, ast.Name):
                        bases.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.add(base.attr)

    def _inherited_declared(self, node: ast.ClassDef) -> Set[str]:
        """Attributes declared anywhere up the (simple-name) base chain.

        Resolution is by simple class name, so same-named classes merge
        -- an over-approximation that can only hide findings, never
        invent them, matching the rule's lint-grade precision budget.
        """
        declared: Set[str] = set()
        seen: Set[str] = set()
        pending = [base for base in self._class_bases.get(node.name, ())]
        while pending:
            name = pending.pop()
            if name in seen:
                continue
            seen.add(name)
            declared |= self._class_declared.get(name, set())
            pending.extend(self._class_bases.get(name, ()))
        return declared

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        where = (" in the declared compile hot set"
                 if self.in_hot_set(ctx.path) else "")
        if isinstance(node, ast.ImportFrom):
            if any(alias.name == "*" for alias in node.names):
                yield self.violation(
                    ctx, node,
                    f"star import{where} defeats static attribute "
                    f"resolution; import names explicitly")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("setattr", "delattr"):
                    yield self.violation(
                        ctx, node,
                        f"{func.id}(...){where} mutates attribute "
                        f"layout dynamically; assign declared "
                        f"attributes directly")
                elif func.id == "vars" and node.args:
                    yield self.violation(
                        ctx, node,
                        f"vars(obj){where} reads the instance "
                        f"__dict__, which compiled classes do not "
                        f"have; enumerate declared fields instead")
        elif isinstance(node, ast.Attribute):
            if node.attr == "__dict__":
                yield self.violation(
                    ctx, node,
                    f"__dict__ access{where}; compiled classes have "
                    f"no per-instance dict -- use declared attributes "
                    f"or dataclasses.fields()")
        elif isinstance(node, ast.ClassDef):
            yield from self._class_findings(node, ctx, where)

    @staticmethod
    def in_hot_set(path: str) -> bool:
        return any(path.startswith(prefix) or path == prefix.rstrip("/")
                   for prefix in COMPILE_HOT_SET)

    @classmethod
    def _own_declarations(
            cls,
            node: ast.ClassDef) -> Tuple[Set[str], Optional[Set[str]]]:
        """(declared attributes, slots) from this class body alone."""
        declared: Set[str] = set()
        slots: Optional[Set[str]] = None
        for item in node.body:
            if (isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)):
                declared.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        declared.add(target.id)
                        if target.id == "__slots__":
                            slots = cls._slot_names(item.value)
        if slots is not None:
            declared |= slots
        for item in node.body:
            if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in cls._INIT_LIKE):
                declared |= cls._self_stores(item)
        return declared, slots

    def _class_findings(self, node: ast.ClassDef, ctx: LintContext,
                        where: str) -> Iterator[Violation]:
        declared, slots = self._own_declarations(node)
        declared |= self._inherited_declared(node)
        methods = [item for item in node.body
                   if isinstance(item, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))]
        class_scope = ".".join(list(ctx.scope_stack) + [node.name])
        for method in methods:
            if method.name in self._INIT_LIKE:
                if slots is not None:
                    yield from self._slots_violations(
                        method, slots, ctx, class_scope, where)
                continue
            self_name = self._self_name(method)
            if self_name is None:
                continue
            for sub, attr in self._attr_stores(method, self_name):
                if slots is not None and attr not in declared:
                    message = (f"attribute {attr!r} assigned outside "
                               f"__slots__{where}; add it to __slots__ "
                               f"or drop the assignment")
                elif attr not in declared:
                    message = (f"attribute {attr!r} added outside "
                               f"__init__{where}; declare it in "
                               f"__init__ (or as a class annotation) "
                               f"so the layout is static")
                else:
                    continue
                yield _scoped_violation(
                    self, ctx, sub, f"{class_scope}.{method.name}",
                    message)

    def _slots_violations(self, method: ast.FunctionDef,
                          slots: Set[str], ctx: LintContext,
                          class_scope: str,
                          where: str) -> Iterator[Violation]:
        self_name = self._self_name(method)
        if self_name is None:
            return
        for sub, attr in self._attr_stores(method, self_name):
            if attr not in slots:
                yield _scoped_violation(
                    self, ctx, sub, f"{class_scope}.{method.name}",
                    f"attribute {attr!r} assigned outside "
                    f"__slots__{where}; add it to __slots__ or drop "
                    f"the assignment")

    @staticmethod
    def _slot_names(value: ast.expr) -> Set[str]:
        """String constants in a ``__slots__`` assignment; unknown
        constructs yield an empty set (treated as no-slots-match)."""
        names: Set[str] = set()
        if isinstance(value, ast.Constant) and isinstance(value.value,
                                                          str):
            names.add(value.value)
        elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    names.add(element.value)
        return names

    @staticmethod
    def _self_name(
            method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Optional[str]:
        args = method.args.posonlyargs + method.args.args
        if not args:
            return None
        if any(isinstance(d, ast.Name) and d.id == "staticmethod"
               for d in method.decorator_list):
            return None
        return args[0].arg

    @classmethod
    def _self_stores(
            cls,
            method: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
        self_name = cls._self_name(method)
        if self_name is None:
            return set()
        return {attr for _, attr in cls._attr_stores(method, self_name)}

    @staticmethod
    def _attr_stores(
            method: ast.FunctionDef | ast.AsyncFunctionDef,
            self_name: str) -> List[Tuple[ast.AST, str]]:
        stores: List[Tuple[ast.AST, str]] = []
        for sub in ast.walk(method):
            if isinstance(sub, (ast.Assign, ast.AugAssign,
                                ast.AnnAssign)):
                targets = (sub.targets if isinstance(sub, ast.Assign)
                           else [sub.target])
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name
                            and isinstance(target.ctx, ast.Store)):
                        stores.append((sub, target.attr))
        return stores


#: Whole-program rules in catalogue order.
WHOLE_PROGRAM_RULES: List[Rule] = [
    NondeterministicIterationRule(),
    RngOutsideTraceRule(),
    EntropyInSimStateRule(),
    UnorderedReductionRule(),
    CompilationReadinessRule(),
]
