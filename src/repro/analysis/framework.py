"""AST-walking lint framework for simulator discipline.

The framework is two-phase:

1. a *project* pass (:class:`ProjectIndex`) collects cross-file facts --
   e.g. every counter attribute registered by a ``*Stats``/``*Result``
   class -- before any rule fires;
2. a *check* pass walks every file's AST once, maintaining scope and loop
   context (:class:`LintContext`), and fans each node out to the
   registered rules.

Rules (see :mod:`repro.analysis.rules`) are small classes with an ``id``,
a one-line ``summary``, and a ``visit`` hook yielding
:class:`Violation` objects.  Violations carry a line-number-independent
*fingerprint* (``path::scope``) so the baseline file keeps suppressing a
known violation while unrelated edits move it around the file.

Inline escapes: a line ending in ``# sim-lint: ignore`` suppresses every
rule on that line; ``# sim-lint: ignore[SIM001]`` suppresses one rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.analysis.callgraph import CallGraph

_IGNORE_RE = re.compile(r"#\s*sim-lint:\s*ignore(?:\[([A-Z0-9, ]+)\])?")

#: AST nodes that open a new naming scope.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True)
class Violation:
    """One finding of one rule."""

    rule_id: str
    message: str
    path: str
    line: int
    column: int
    scope: str

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        return f"{self.path}::{self.scope or '<module>'}"

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule_id} {self.message}")


#: Annotation substrings marking an attribute as set-typed.
_SET_ANNOTATION_RE = re.compile(r"\b(Set|FrozenSet|set|frozenset)\b")


class ProjectIndex:
    """Cross-file facts every rule may consult during the check pass."""

    def __init__(self) -> None:
        #: Counter attributes registered by any ``*Stats``/``*Result``
        #: class: assignments to ``self.X`` in ``__init__`` plus dataclass
        #: field annotations.
        self.stats_counters: Set[str] = set()
        #: Names of the stats-style classes themselves.
        self.stats_classes: Set[str] = set()
        #: Attribute names with set provenance anywhere in the project
        #: (assigned from a set literal/constructor/comprehension or
        #: annotated ``Set[...]``): iterating them is unordered.
        self.set_attributes: Set[str] = set()
        #: Every collected module, for the whole-program passes.
        self.modules: List[Tuple[str, ast.Module]] = []
        #: Project call graph; built by :meth:`finalize` once every
        #: module has been collected.  ``None`` until then -- rules
        #: treat that conservatively.
        self.callgraph: Optional["CallGraph"] = None

    def finalize(self) -> None:
        """Build the cross-file structures (call graph) over every
        module :meth:`collect` has seen so far."""
        from repro.analysis.callgraph import build_callgraph
        self.callgraph = build_callgraph(self.modules)

    def collect(self, tree: ast.Module, path: str = "<unknown>") -> None:
        self.modules.append((path, tree))
        self._collect_set_attributes(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name.endswith("Stats")
                    or node.name.endswith("Result")):
                continue
            self.stats_classes.add(node.name)
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name):
                    # Dataclass-style field.
                    self.stats_counters.add(item.target.id)
                elif (isinstance(item, ast.FunctionDef)
                      and item.name == "__init__"):
                    for stmt in ast.walk(item):
                        if isinstance(stmt, ast.Assign):
                            for target in stmt.targets:
                                if (isinstance(target, ast.Attribute)
                                        and isinstance(target.value,
                                                       ast.Name)
                                        and target.value.id == "self"):
                                    self.stats_counters.add(target.attr)

    def _collect_set_attributes(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if not _is_set_expr(node.value):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self.set_attributes.add(target.attr)
            elif isinstance(node, ast.AnnAssign):
                annotated_set = _SET_ANNOTATION_RE.search(
                    ast.unparse(node.annotation)) is not None
                value_set = (node.value is not None
                             and _is_set_expr(node.value))
                if not (annotated_set or value_set):
                    continue
                if isinstance(node.target, ast.Attribute):
                    self.set_attributes.add(node.target.attr)
                elif (isinstance(node.target, ast.Name)
                      and isinstance(node, ast.AnnAssign)):
                    # Class-body field annotation (dataclass style).
                    self.set_attributes.add(node.target.id)


def _is_set_expr(value: ast.expr) -> bool:
    """Does ``value`` evaluate to a (frozen)set?"""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset"))


class LintContext:
    """Per-file state the walker maintains for the rules."""

    def __init__(self, path: str, tree: ast.Module, source: str,
                 project: ProjectIndex) -> None:
        self.path = path
        self.tree = tree
        self.source_lines = source.splitlines()
        self.project = project
        self.scope_stack: List[str] = []
        #: Loop-variable names of ``for`` loops enclosing the current node
        #: *within the current function scope* (reset on scope entry).
        self.loop_vars: List[Set[str]] = []
        #: Names bound to the ``random`` module in this file.
        self.random_modules: Set[str] = set()
        #: Names bound to the ``numpy`` module (``numpy``, ``np``).
        self.numpy_modules: Set[str] = set()
        #: Module-level RNG functions imported directly
        #: (``from random import randrange``): local name -> origin.
        self.random_functions: Dict[str, str] = {}
        #: Names bound to ``time``/``datetime`` modules.
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        #: Wall-clock functions imported directly: local name -> origin.
        self.time_functions: Dict[str, str] = {}

    @property
    def scope(self) -> str:
        return ".".join(self.scope_stack)

    def active_loop_vars(self) -> Set[str]:
        merged: Set[str] = set()
        for names in self.loop_vars:
            merged |= names
        return merged

    def is_ignored(self, line: int, rule_id: str) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        match = _IGNORE_RE.search(self.source_lines[line - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        return rule_id in {part.strip() for part in listed.split(",")}


class Rule:
    """Base class for one lint pass."""

    #: Stable identifier, e.g. ``"SIM001"``.
    id: str = "SIM000"
    #: Short kebab-ish name used in listings.
    name: str = "unnamed"
    #: One-line description shown by ``--list-rules``.
    summary: str = ""

    def prepare(self, ctx: LintContext) -> None:
        """Per-file pre-pass hook (imports have been indexed already)."""

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        """Yield violations for ``node``; called for every AST node."""
        return iter(())

    def violation(self, ctx: LintContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(rule_id=self.id, message=message, path=ctx.path,
                         line=getattr(node, "lineno", 0),
                         column=getattr(node, "col_offset", 0),
                         scope=ctx.scope)


def _index_imports(ctx: LintContext) -> None:
    """Record which local names refer to RNG / wall-clock modules."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    ctx.random_modules.add(local)
                elif alias.name in ("numpy", "numpy.random"):
                    ctx.numpy_modules.add(local)
                elif alias.name == "time":
                    ctx.time_modules.add(local)
                elif alias.name == "datetime":
                    ctx.datetime_modules.add(local)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        ctx.random_functions[alias.asname or alias.name] = (
                            f"random.{alias.name}")
            elif node.module in ("numpy", "numpy.random"):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if node.module == "numpy" and alias.name == "random":
                        ctx.numpy_modules.add(local)
                    elif node.module == "numpy.random":
                        ctx.random_functions[local] = (
                            f"numpy.random.{alias.name}")
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "monotonic", "perf_counter",
                                      "process_time"):
                        ctx.time_functions[alias.asname or alias.name] = (
                            f"time.{alias.name}")
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name == "datetime":
                        ctx.datetime_modules.add(alias.asname or alias.name)


class _Walker:
    """Single AST walk maintaining scope/loop context for all rules."""

    def __init__(self, rules: Sequence[Rule], ctx: LintContext) -> None:
        self.rules = rules
        self.ctx = ctx
        self.violations: List[Violation] = []

    def run(self) -> List[Violation]:
        _index_imports(self.ctx)
        for rule in self.rules:
            rule.prepare(self.ctx)
        self._walk(self.ctx.tree)
        return self.violations

    def _dispatch(self, node: ast.AST) -> None:
        ctx = self.ctx
        for rule in self.rules:
            for violation in rule.visit(node, ctx):
                if not ctx.is_ignored(violation.line, rule.id):
                    self.violations.append(violation)

    def _walk(self, node: ast.AST) -> None:
        self._dispatch(node)
        if isinstance(node, _SCOPE_NODES):
            self.ctx.scope_stack.append(node.name)
            # A nested scope captures by reference, not by iteration --
            # loop variables of *enclosing* functions stay interesting to
            # the capture rule, but a fresh function restarts tracking of
            # its own loops; push a frame boundary only for functions.
            for child in ast.iter_child_nodes(node):
                self._walk(child)
            self.ctx.scope_stack.pop()
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names = {n.id for n in ast.walk(node.target)
                     if isinstance(n, ast.Name)}
            self.ctx.loop_vars.append(names)
            for child in ast.iter_child_nodes(node):
                self._walk(child)
            self.ctx.loop_vars.pop()
        else:
            for child in ast.iter_child_nodes(node):
                self._walk(child)


def lint_tree(path: str, tree: ast.Module, source: str,
              rules: Sequence[Rule],
              project: Optional[ProjectIndex] = None) -> List[Violation]:
    """Run ``rules`` over one parsed module."""
    if project is None:
        project = ProjectIndex()
        project.collect(tree, path)
        project.finalize()
    ctx = LintContext(path, tree, source, project)
    return _Walker(rules, ctx).run()


def lint_source(source: str, rules: Sequence[Rule],
                path: str = "<string>",
                project: Optional[ProjectIndex] = None) -> List[Violation]:
    """Convenience entry point used heavily by the rule unit tests."""
    tree = ast.parse(source)
    return lint_tree(path, tree, source, rules, project)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)
