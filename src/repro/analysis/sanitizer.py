"""Runtime invariant sanitizer for :class:`repro.sim.system.MulticoreSystem`.

Opt-in via ``REPRO_SANITIZE=1`` in the environment or
``SystemConfig.sanitize = True``.  When enabled, :func:`install_sanitizer`
wraps the *instances* of the hot components with checking shims:

* ``Engine.schedule`` / event drain -- integral, monotonic time;
* ``MshrFile`` allocate/merge/release -- occupancy never exceeds the
  Table-3 bound, no duplicate or phantom entries;
* ``Cache.fill`` / ``invalidate`` -- set occupancy <= associativity and
  tag-map/way agreement;
* ``DramChannel._service`` -- tRP/tRCD/tCAS spacing and data-bus
  serialisation (one burst on the bus at a time);
* ``MeshNoc.send`` -- per-link flit conservation and monotonic link
  reservations;
* ``Core`` retirement -- strict ROB FIFO order, nothing retires before
  it completes.

Zero overhead when off: the enable flag is consulted **once at wiring
time** -- a disabled run installs no wrappers, adds no per-event
branches, and leaves every method the plain class attribute (tests
assert ``"schedule" not in vars(engine)``).

A violated invariant raises
:class:`repro.analysis.invariants.SimulationInvariantError` at the
first broken event, pointing at the component and the numbers involved.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Tuple

from repro.analysis.invariants import SimulationInvariantError, check

__all__ = ["Sanitizer", "SimulationInvariantError", "install_sanitizer",
           "sanitize_enabled"]

_FALSEY = ("", "0", "false", "no", "off")


def sanitize_enabled(config: Any = None,
                     environ: Any = None) -> bool:
    """Should the sanitizer be installed?  Checked once at wiring time."""
    if config is not None and getattr(config, "sanitize", False):
        return True
    env = os.environ if environ is None else environ
    return env.get("REPRO_SANITIZE", "").strip().lower() not in _FALSEY


class Sanitizer:
    """Bookkeeping plus the wrapper installers.

    ``checks_run`` counts every individual invariant evaluated, broken
    down per category in ``checks_by_category`` -- the sanitizer tests
    use it to prove the hooks actually fired.
    """

    def __init__(self) -> None:
        self.checks_run = 0
        self.checks_by_category: Dict[str, int] = {}
        #: Flits injected per directed NoC link (conservation ledger).
        self.link_flits: Dict[Tuple[int, int], int] = {}
        self._total_link_flits = 0
        self._expected_link_flits = 0

    def _count(self, category: str, n: int = 1) -> None:
        self.checks_run += n
        self.checks_by_category[category] = (
            self.checks_by_category.get(category, 0) + n)

    # ------------------------------------------------------------------
    # Engine: integral, monotonic time
    # ------------------------------------------------------------------

    def wrap_engine(self, engine: Any) -> None:
        orig_schedule = engine.schedule
        orig_drain = engine._drain_events_at

        def schedule(cycle: int, callback: Any, *args: Any) -> None:
            self._count("engine", 2)
            check(isinstance(cycle, int),
                  "engine.schedule: non-integer cycle %r violates time "
                  "discipline (only next_wake may be float)", cycle)
            check(cycle >= engine.now,
                  "engine.schedule: cycle %d is in the past (now=%d)",
                  cycle, engine.now)
            orig_schedule(cycle, callback, *args)

        last_drain = {"now": engine.now}

        def drain(cycle: int) -> None:
            self._count("engine", 2)
            check(engine.now >= last_drain["now"],
                  "engine time moved backwards: now=%d after %d",
                  engine.now, last_drain["now"])
            check(cycle == engine.now,
                  "event drain at cycle %d != engine.now %d",
                  cycle, engine.now)
            last_drain["now"] = engine.now
            orig_drain(cycle)

        engine.schedule = schedule
        engine._drain_events_at = drain

    # ------------------------------------------------------------------
    # MSHR files: Table-3 occupancy bounds, entry consistency
    # ------------------------------------------------------------------

    def wrap_mshr(self, mshr_file: Any, label: str) -> None:
        orig_allocate = mshr_file.allocate
        orig_merge = mshr_file.merge
        orig_release = mshr_file.release

        def allocate(line: int, is_prefetch: bool, crit: bool,
                     trigger_ip: int, now: int) -> Any:
            self._count("mshr", 3)
            check(line not in mshr_file.entries,
                  "%s: allocate of line %#x already outstanding",
                  label, line)
            check(len(mshr_file.entries) < mshr_file.capacity,
                  "%s: allocate while full (occupancy %d, capacity %d); "
                  "caller must check .full first", label,
                  len(mshr_file.entries), mshr_file.capacity)
            mshr = orig_allocate(line, is_prefetch, crit, trigger_ip, now)
            check(len(mshr_file.entries) <= mshr_file.capacity,
                  "%s: occupancy %d exceeds Table-3 bound %d", label,
                  len(mshr_file.entries), mshr_file.capacity)
            return mshr

        def merge(mshr: Any, waiter: Any, is_prefetch: bool) -> None:
            self._count("mshr", 1)
            check(mshr_file.entries.get(mshr.line) is mshr,
                  "%s: merge into an entry not in the file (line %#x)",
                  label, getattr(mshr, "line", -1))
            orig_merge(mshr, waiter, is_prefetch)

        def release(line: int) -> Any:
            self._count("mshr", 1)
            check(line in mshr_file.entries,
                  "%s: release of line %#x with no outstanding entry",
                  label, line)
            return orig_release(line)

        mshr_file.allocate = allocate
        mshr_file.merge = merge
        mshr_file.release = release

    # ------------------------------------------------------------------
    # Caches: associativity bound + tag-map/way agreement
    # ------------------------------------------------------------------

    def wrap_cache(self, cache: Any, label: str) -> None:
        orig_fill = cache.fill
        orig_invalidate = cache.invalidate

        def _check_set(set_index: int) -> None:
            tag_map = cache._map[set_index]
            ways = cache._lines[set_index]
            self._count("cache", 2 + len(tag_map))
            check(len(tag_map) <= cache.ways,
                  "%s: set %d holds %d lines, associativity is %d",
                  label, set_index, len(tag_map), cache.ways)
            occupied = sum(1 for state in ways if state is not None)
            check(occupied == len(tag_map),
                  "%s: set %d way states (%d) disagree with tag map (%d)",
                  label, set_index, occupied, len(tag_map))
            for tag, way in tag_map.items():
                state = ways[way]
                check(state is not None and state.tag == tag,
                      "%s: set %d way %d does not hold mapped tag %#x",
                      label, set_index, way, tag)

        def fill(line: int, pc: int, now: int, **kwargs: Any) -> Any:
            evicted = orig_fill(line, pc, now, **kwargs)
            self._count("cache", 1)
            check(cache.probe(line),
                  "%s: line %#x absent immediately after fill",
                  label, line)
            _check_set(cache.set_index(line))
            return evicted

        def invalidate(line: int) -> Any:
            evicted = orig_invalidate(line)
            self._count("cache", 1)
            check(not cache.probe(line),
                  "%s: line %#x still resident after invalidate",
                  label, line)
            _check_set(cache.set_index(line))
            return evicted

        cache.fill = fill
        cache.invalidate = invalidate

    # ------------------------------------------------------------------
    # DRAM: tRP/tRCD/tCAS spacing and bus serialisation
    # ------------------------------------------------------------------

    def wrap_dram_channel(self, channel: Any) -> None:
        orig_service = channel._service
        config = channel.config

        def service(request: Any, now: int) -> None:
            bank = channel.banks[request.bank]
            pre_open = bank.open_row
            pre_ready = bank.ready_at
            pre_bus = channel.bus_busy_until
            orig_service(request, now)
            start = max(now, pre_ready)
            if pre_open == request.row:
                array = config.cas_cycles
                busy = config.burst_cycles
            elif pre_open is None:
                array = config.trcd_cycles + config.cas_cycles
                busy = config.trcd_cycles + config.burst_cycles
            else:
                array = (config.trp_cycles + config.trcd_cycles
                         + config.cas_cycles)
                busy = (config.trp_cycles + config.trcd_cycles
                        + config.burst_cycles)
            self._count("dram", 3)
            check(bank.open_row == request.row,
                  "DRAM ch%d bank %d: open row %r after servicing row %d",
                  channel.channel_id, request.bank, bank.open_row,
                  request.row)
            check(bank.ready_at == start + busy,
                  "DRAM ch%d bank %d: tRP/tRCD spacing violated -- bank "
                  "ready at %d, expected %d (start %d + busy %d)",
                  channel.channel_id, request.bank, bank.ready_at,
                  start + busy, start, busy)
            expected_bus = (max(start + array, pre_bus)
                            + config.burst_cycles)
            check(channel.bus_busy_until == expected_bus,
                  "DRAM ch%d: data-bus serialisation violated -- bus "
                  "busy until %d, expected %d (tCAS-gated data at %d, "
                  "previous burst until %d)",
                  channel.channel_id, channel.bus_busy_until,
                  expected_bus, start + array, pre_bus)

        channel._service = service

    # ------------------------------------------------------------------
    # NoC: flit conservation + monotonic link reservations
    # ------------------------------------------------------------------

    def wrap_noc(self, noc: Any) -> None:
        orig_send = noc.send

        def send(src: int, dst: int, now: int, flits: int,
                 high_priority: bool) -> int:
            route = noc.route(src, dst) if src != dst else []
            pre_links = {
                link: list(noc._links.get(link, (0, 0)))
                for link in route
            }
            pre_flits = noc.stats.flits
            arrival = orig_send(src, dst, now, flits, high_priority)
            self._count("noc", 2 + 2 * len(route))
            # Local slice accesses (src == dst) never enter the mesh and
            # are deliberately excluded from link/flit accounting.
            expected_flits = pre_flits + (flits if route else 0)
            check(noc.stats.flits == expected_flits,
                  "NoC flit conservation violated: %d flits injected "
                  "over %d link(s) but accounting moved %d -> %d", flits,
                  len(route), pre_flits, noc.stats.flits)
            check(arrival >= now,
                  "NoC packet arrives at %d before injection at %d",
                  arrival, now)
            for link, (pre_high, pre_any) in pre_links.items():
                reserved = noc._links[link]
                check(reserved[1] >= pre_any and reserved[0] >= pre_high,
                      "NoC link %r reservation moved backwards", link)
                check(reserved[0] <= reserved[1],
                      "NoC link %r: priority reservation %d beyond total "
                      "window %d", link, reserved[0], reserved[1])
                self.link_flits[link] = (
                    self.link_flits.get(link, 0) + flits)
                self._total_link_flits += flits
            self._expected_link_flits += flits * len(route)
            return arrival

        noc.send = send

    # ------------------------------------------------------------------
    # Cores: strict ROB FIFO retirement
    # ------------------------------------------------------------------

    def wrap_core(self, core: Any) -> None:
        orig_account = core._account_retire
        state = {"last_seq": -1}

        def account_retire(entry: Any, cycle: int) -> None:
            self._count("rob", 2)
            check(entry.seq == state["last_seq"] + 1,
                  "core %d: ROB retirement out of FIFO order -- seq %d "
                  "retired after seq %d", core.core_id, entry.seq,
                  state["last_seq"])
            check(entry.done_at is not None and entry.done_at <= cycle,
                  "core %d: instruction seq %d retired at cycle %d "
                  "before completing (done_at=%r)", core.core_id,
                  entry.seq, cycle, entry.done_at)
            state["last_seq"] = entry.seq
            orig_account(entry, cycle)

        core._account_retire = account_retire

    # ------------------------------------------------------------------
    # End-of-run quiescence
    # ------------------------------------------------------------------

    def final_check(self, system: Any) -> None:
        """After the drain the hardware must be quiescent and consistent."""
        self._count("final", 2)
        check(system.engine.pending_events == 0,
              "engine finished with %d undrained event(s)",
              system.engine.pending_events)
        check(self._total_link_flits == self._expected_link_flits,
              "NoC link-flit ledger inconsistent: %d recorded vs %d "
              "expected", self._total_link_flits,
              self._expected_link_flits)
        for node in system.nodes:
            for label, mshr_file in (("L1", node.l1_mshr),
                                     ("L2", node.l2_mshr)):
                self._count("final", 2)
                check(not mshr_file.entries,
                      "core %d %s MSHR not quiescent: %d entries "
                      "outstanding after drain", node.core_id, label,
                      len(mshr_file.entries))
                check(not mshr_file.pending,
                      "core %d %s MSHR left %d queued misses unreplayed",
                      node.core_id, label, len(mshr_file.pending))
        for slice_id, mshr_file in enumerate(system.llc_mshr):
            self._count("final", 2)
            check(not mshr_file.entries,
                  "LLC slice %d MSHR not quiescent: %d entries",
                  slice_id, len(mshr_file.entries))
            check(not mshr_file.pending,
                  "LLC slice %d MSHR left %d queued misses", slice_id,
                  len(mshr_file.pending))
        errors = system.prefetch_stats.consistency_errors()
        self._count("final", 1)
        check(not errors, "prefetch statistics inconsistent: %s",
              "; ".join(errors))

    # ------------------------------------------------------------------

    def summary(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in
                          sorted(self.checks_by_category.items()))
        return f"sanitizer: {self.checks_run} checks ({parts})"


def install_sanitizer(system: Any) -> Sanitizer:
    """Wrap every checked component of ``system``; returns the sanitizer.

    Call once, right after construction.  The system's ``run`` invokes
    :meth:`Sanitizer.final_check` after the event drain.
    """
    sanitizer = Sanitizer()
    sanitizer.wrap_engine(system.engine)
    sanitizer.wrap_noc(system.noc)
    for channel in system.dram.channels:
        sanitizer.wrap_dram_channel(channel)
    for slice_id, (cache, mshr_file) in enumerate(
            zip(system.llc, system.llc_mshr)):
        sanitizer.wrap_cache(cache, f"LLC[{slice_id}]")
        sanitizer.wrap_mshr(mshr_file, f"LLC[{slice_id}] MSHR")
    for node in system.nodes:
        sanitizer.wrap_cache(node.l1d, f"core{node.core_id}.L1D")
        sanitizer.wrap_cache(node.l2_cache, f"core{node.core_id}.L2")
        sanitizer.wrap_mshr(node.l1_mshr, f"core{node.core_id}.L1 MSHR")
        sanitizer.wrap_mshr(node.l2_mshr, f"core{node.core_id}.L2 MSHR")
    for core in system.cores:
        sanitizer.wrap_core(core)
    return sanitizer
