"""Simulator-specific lint rules.

Each rule has a stable ``SIMxxx`` identifier, a one-line summary, and a
docstring describing what it enforces and why the simulator needs it.
The catalogue (also rendered in ``docs/static_analysis.md``):

========  =======================  =============================================
ID        Name                     Enforces
========  =======================  =============================================
SIM001    unseeded-rng             no module-level ``random``/``numpy.random``
SIM002    float-cycle-arithmetic   cycle counters stay integral outside
                                   ``next_wake``
SIM003    mutable-default-arg      no mutable default arguments
SIM004    loop-variable-capture    no callbacks capturing loop variables
SIM005    unregistered-counter     stats counters registered before increment
SIM006    bare-assert              invariants survive ``python -O``
SIM007    wall-clock               no wall-clock reads in simulation code
SIM008    port-bypass              hierarchy components schedule via Port,
                                   not the engine
========  =======================  =============================================

The whole-program passes SIM009-SIM013 (call-graph + dataflow based)
live in :mod:`repro.analysis.wholeprogram` and are registered into the
same catalogue below.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Sequence

from repro.analysis.framework import LintContext, Rule, Violation

#: ``random`` module functions that consume the *global* (unseeded) state.
_GLOBAL_RNG_FUNCS = {
    "random", "randrange", "randint", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "randbytes", "getrandbits", "seed",
}

#: Identifiers that denote simulated-time quantities (cycle counters).
_CYCLE_NAME_RE = re.compile(
    r"(^(cycle|cycles|now|t0|done|start|finish|arrival|ready|deadline"
    r"|horizon)$)"
    r"|(_(cycle|cycles|at|until|deadline|horizon)$)")

#: Attribute bases that hold a stats object (``self.stats.reads += 1``,
#: ``channel.stats...``, ``self.prefetch_stats...``) or a bare local
#: alias (``stats = self.stats; stats.reads += 1``).
_STATS_BASE_RE = re.compile(r"(^stats$)|(_stats$)")

_WALLCLOCK_TIME_FUNCS = {"time", "monotonic", "perf_counter",
                         "process_time", "monotonic_ns", "time_ns",
                         "perf_counter_ns"}


def _target_name(node: ast.expr) -> str:
    """Terminal identifier of an assignment target (name or attribute)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class UnseededRandomRule(Rule):
    """SIM001: forbid the process-global / unseeded RNG.

    A simulator must be a pure function of its configuration: the same
    config and trace must produce the same cycle counts on every run, or
    A/B experiments (paper Figs. 9-21) measure noise instead of the
    mechanism.  Module-level ``random.*`` / ``numpy.random.*`` calls and
    ``random.Random()`` / ``default_rng()`` constructed *without a seed*
    draw from process-global or OS entropy; thread a seeded
    ``random.Random(seed)`` through instead (see
    ``repro.trace.synthetic._stable_seed``).
    """

    id = "SIM001"
    name = "unseeded-rng"
    summary = "module-level or unseeded random/numpy.random use"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        # from random import randrange; randrange(...)
        if isinstance(func, ast.Name) and func.id in ctx.random_functions:
            yield self.violation(
                ctx, node,
                f"call to module-level RNG "
                f"{ctx.random_functions[func.id]!r}; thread a seeded "
                f"random.Random through instead")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # random.<func>(...) on the module itself.
        if isinstance(base, ast.Name) and base.id in ctx.random_modules:
            if func.attr in _GLOBAL_RNG_FUNCS:
                yield self.violation(
                    ctx, node,
                    f"module-level random.{func.attr}() uses the "
                    f"process-global RNG; thread a seeded random.Random "
                    f"through instead")
            elif func.attr == "Random" and not node.args:
                yield self.violation(
                    ctx, node,
                    "random.Random() without a seed draws from OS "
                    "entropy; pass an explicit seed")
            return
        # numpy.random.<func>(...) / np.random.default_rng().
        if (isinstance(base, ast.Attribute) and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ctx.numpy_modules):
            if func.attr == "default_rng" and node.args:
                return  # seeded generator: fine
            yield self.violation(
                ctx, node,
                f"numpy.random.{func.attr}() is module-level/unseeded; "
                f"use numpy.random.default_rng(seed)")


class FloatCycleArithmeticRule(Rule):
    """SIM002: cycle counters are integers; floats only in ``next_wake``.

    Event times and cycle counters must stay exact integers -- a float
    creeping into ``Engine.schedule`` or an ``*_at`` field silently breaks
    event ordering and heap determinism once values exceed 2**53 or pick
    up rounding error.  The single sanctioned exception is the cores'
    ``next_wake`` estimate, which uses ``float("inf")`` as its idle
    sentinel (DESIGN.md section 2).

    Flags assignments (``=``, ``+=``, annotated) to a cycle-named target
    whose right-hand side contains a float literal, a true division
    ``/``, or a ``float(...)`` cast.
    """

    id = "SIM002"
    name = "float-cycle-arithmetic"
    summary = "float arithmetic on cycle counters outside next_wake"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if isinstance(node, ast.Assign):
            targets: Sequence[ast.expr] = node.targets
            value = node.value
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
            value = node.value
        else:
            return
        if value is None:
            return
        if any("next_wake" in part for part in ctx.scope_stack):
            return
        for target in targets:
            name = _target_name(target)
            if name == "next_wake":
                return
            if not _CYCLE_NAME_RE.search(name):
                continue
            taint = self._float_taint(value)
            if taint:
                yield self.violation(
                    ctx, node,
                    f"cycle counter {name!r} assigned from {taint}; "
                    f"simulated time must stay integral (use // or int "
                    f"math; only next_wake may be float)")
                return

    @staticmethod
    def _float_taint(value: ast.expr) -> str:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Constant) and isinstance(sub.value,
                                                            float):
                return f"float literal {sub.value!r}"
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return "true division ('/')"
            if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                    and sub.func.id == "float"):
                return "a float(...) cast"
        return ""


class MutableDefaultArgRule(Rule):
    """SIM003: forbid mutable default arguments.

    A ``def f(x, acc=[])`` default is evaluated once at definition time
    and shared across calls -- in a simulator this turns per-request
    scratch state into cross-request (and cross-*experiment*) leakage
    that corrupts statistics without crashing.  Use ``None`` plus an
    in-body default instead.
    """

    id = "SIM003"
    name = "mutable-default-arg"
    summary = "mutable default argument (list/dict/set/call)"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            return
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None]
        for default in defaults:
            label = self._mutable_label(default)
            if label:
                yield self.violation(
                    ctx, node,
                    f"mutable default argument ({label}) is shared "
                    f"across calls; default to None and construct inside "
                    f"the body")

    @staticmethod
    def _mutable_label(default: ast.expr) -> str:
        if isinstance(default, ast.List):
            return "list literal"
        if isinstance(default, ast.Dict):
            return "dict literal"
        if isinstance(default, ast.Set):
            return "set literal"
        if isinstance(default, ast.ListComp):
            return "list comprehension"
        if isinstance(default, ast.DictComp):
            return "dict comprehension"
        if isinstance(default, ast.SetComp):
            return "set comprehension"
        if isinstance(default, ast.Call):
            func = default.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            if name in ("list", "dict", "set", "bytearray", "deque",
                        "defaultdict", "Counter", "OrderedDict"):
                return f"{name}() call"
        return ""


class LoopVariableCaptureRule(Rule):
    """SIM004: no closures capturing a live loop variable.

    ``for req in queue: engine.schedule(t, lambda: retire(req))`` binds
    ``req`` *by reference*: every callback sees the final iteration's
    value when the event fires cycles later.  This is the classic
    deferred-callback bug of event-driven simulators.  Bind explicitly
    (``lambda req=req: ...``) or build the closure in a helper function.
    """

    id = "SIM004"
    name = "loop-variable-capture"
    summary = "closure in a loop captures the loop variable late-bound"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if not isinstance(node, (ast.Lambda, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            return
        live = ctx.active_loop_vars()
        if not live:
            return
        args = node.args
        bound = {a.arg for a in (args.args + args.posonlyargs
                                 + args.kwonlyargs)}
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        body = node.body if isinstance(node.body, list) else [node.body]
        assigned = {
            n.id
            for stmt in body for n in ast.walk(stmt)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }
        captured = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in live
                        and sub.id not in bound
                        and sub.id not in assigned):
                    captured.add(sub.id)
        if captured:
            names = ", ".join(sorted(captured))
            kind = ("lambda" if isinstance(node, ast.Lambda)
                    else f"function {node.name!r}")
            yield self.violation(
                ctx, node,
                f"{kind} captures loop variable(s) {names} by reference; "
                f"a deferred callback will see the last iteration's value "
                f"-- bind via a default argument ({names}={names})")


class UnregisteredCounterRule(Rule):
    """SIM005: stats counters must be registered before being incremented.

    Statistics objects (``*Stats``/``*Result`` classes) declare every
    counter in ``__init__`` or as a dataclass field, so result collection
    and reports can enumerate them.  ``obj.stats.typo_counter += 1``
    would otherwise raise ``AttributeError`` mid-simulation -- or worse,
    create an attribute the reports never read.  The project pass indexes
    every registered counter; this rule flags augmented assignments
    through a ``stats``-named attribute whose counter is unknown.
    """

    id = "SIM005"
    name = "unregistered-counter"
    summary = "increment of a stats counter no Stats class registers"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if not isinstance(node, ast.AugAssign):
            return
        target = node.target
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if isinstance(base, ast.Attribute):
            base_name = base.attr
        elif isinstance(base, ast.Name):
            base_name = base.id
        else:
            return
        if not _STATS_BASE_RE.search(base_name):
            return
        if not ctx.project.stats_counters:
            return  # no Stats classes in scope: nothing to check against
        if target.attr not in ctx.project.stats_counters:
            yield self.violation(
                ctx, node,
                f"counter {target.attr!r} incremented through "
                f"{base_name!r} but never registered in a *Stats/*Result "
                f"class __init__ (typo, or add the field)")


class BareAssertRule(Rule):
    """SIM006: no bare ``assert`` for simulator invariants.

    ``python -O`` strips ``assert`` statements, so an invariant guarded
    only by ``assert`` silently vanishes in optimised runs -- the exact
    runs used for benchmarking.  Use
    :func:`repro.analysis.invariants.check` (or raise
    :class:`~repro.analysis.invariants.SimulationInvariantError`
    explicitly), which also produces a typed, catchable failure.
    """

    id = "SIM006"
    name = "bare-assert"
    summary = "bare assert is stripped under python -O"

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if isinstance(node, ast.Assert):
            yield self.violation(
                ctx, node,
                "bare assert is stripped under python -O; use "
                "repro.analysis.invariants.check(...) or raise "
                "SimulationInvariantError")


class WallClockRule(Rule):
    """SIM007: no wall-clock reads inside simulation code.

    ``time.time()`` / ``datetime.now()`` inside ``src/repro`` makes
    behaviour (or worse, a result) depend on host speed and run order.
    Simulated time comes from the engine (``engine.now``); host-time
    measurement belongs in the benchmark harness, not the model --
    which is why ``experiments/hotpath.py`` (the wall-clock benchmark
    suite behind ``repro bench``) is exempt, as is the distributed
    sweep coordinator (``serve/coordinator.py``), whose lease deadlines
    and progress cadence are genuinely host time: it schedules worker
    processes, never simulated events.
    """

    id = "SIM007"
    name = "wall-clock"
    summary = "wall-clock read (time.time/datetime.now) in sim code"

    _EXEMPT = ("src/repro/experiments/hotpath.py",
               "src/repro/serve/coordinator.py")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        if ctx.path in self._EXEMPT:
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id in ctx.time_functions:
            yield self.violation(
                ctx, node,
                f"wall-clock read {ctx.time_functions[func.id]!r}; "
                f"simulation code must use engine.now")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if (isinstance(base, ast.Name) and base.id in ctx.time_modules
                and func.attr in _WALLCLOCK_TIME_FUNCS):
            yield self.violation(
                ctx, node,
                f"wall-clock read time.{func.attr}(); simulation code "
                f"must use engine.now")
        elif (func.attr in ("now", "utcnow", "today")
              and isinstance(base, ast.Name)
              and base.id in ctx.datetime_modules):
            yield self.violation(
                ctx, node,
                f"wall-clock read datetime.{func.attr}(); simulation "
                f"code must use engine.now")
        elif (func.attr in ("now", "utcnow", "today")
              and isinstance(base, ast.Attribute)
              and base.attr == "datetime"
              and isinstance(base.value, ast.Name)
              and base.value.id in ctx.datetime_modules):
            yield self.violation(
                ctx, node,
                f"wall-clock read datetime.datetime.{func.attr}(); "
                f"simulation code must use engine.now")


class PortBypassRule(Rule):
    """SIM008: hierarchy components never call ``engine.schedule``.

    In :mod:`repro.sim.hierarchy` all latency and back-pressure is owned
    by :class:`~repro.sim.hierarchy.port.Port`: components schedule
    future work through ``port.schedule`` (or a ``NocLink`` delivery),
    never against the engine directly.  A direct ``engine.schedule``
    bypasses the port seam -- the runtime sanitizer's wrappers, any
    future port-level arbitration, and the single place where MSHR
    replay interleaves with timing.  ``port.py`` itself is the one
    sanctioned caller.
    """

    id = "SIM008"
    name = "port-bypass"
    summary = "direct engine.schedule call in a hierarchy component"

    #: The Port implementation is the one sanctioned engine caller.
    _EXEMPT = ("src/repro/sim/hierarchy/port.py",)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if "sim/hierarchy/" not in ctx.path or ctx.path in self._EXEMPT:
            return
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "schedule"):
            return
        base = func.value
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        else:
            return
        if base_name == "engine":
            yield self.violation(
                ctx, node,
                "hierarchy component schedules directly against the "
                "engine; route latency through its Port "
                "(port.schedule/NocLink) so back-pressure and replay "
                "stay in one place")


from repro.analysis.wholeprogram import (  # noqa: E402
    WHOLE_PROGRAM_RULES, CompilationReadinessRule,
    EntropyInSimStateRule, NondeterministicIterationRule,
    RngOutsideTraceRule, UnorderedReductionRule)

#: The default rule set, in catalogue order.
ALL_RULES: List[Rule] = [
    UnseededRandomRule(),
    FloatCycleArithmeticRule(),
    MutableDefaultArgRule(),
    LoopVariableCaptureRule(),
    UnregisteredCounterRule(),
    BareAssertRule(),
    WallClockRule(),
    PortBypassRule(),
    *WHOLE_PROGRAM_RULES,
]

__all__ = [
    "UnseededRandomRule", "FloatCycleArithmeticRule",
    "MutableDefaultArgRule", "LoopVariableCaptureRule",
    "UnregisteredCounterRule", "BareAssertRule", "WallClockRule",
    "PortBypassRule", "NondeterministicIterationRule",
    "RngOutsideTraceRule", "EntropyInSimStateRule",
    "UnorderedReductionRule", "CompilationReadinessRule",
    "ALL_RULES", "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [type(rule)() for rule in ALL_RULES]
