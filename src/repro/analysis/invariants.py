"""Simulation invariant primitives.

This module is deliberately dependency-free: the hot simulator layers
(:mod:`repro.sim.engine`, :mod:`repro.cache.cache`, ...) import it to raise
structural-invariant failures, and the opt-in sanitizer
(:mod:`repro.analysis.sanitizer`) builds its checks on top of it.

Unlike a bare ``assert``, :func:`check` survives ``python -O`` -- exactly
the property the static pass ``SIM006`` (no-bare-assert) enforces for
invariants that guard the simulator's correctness rather than its tests.
"""

from __future__ import annotations


class SimulationInvariantError(RuntimeError):
    """A structural invariant of the simulator was violated.

    Subclasses :class:`RuntimeError` so existing callers that defensively
    catch engine/MSHR misuse keep working; the distinct type lets tests and
    the sanitizer assert that a failure is an *invariant* violation rather
    than an ordinary error.
    """


def check(condition: object, message: str, *args: object) -> None:
    """Raise :class:`SimulationInvariantError` unless ``condition`` holds.

    ``message`` is an ``%``-style format string; formatting is deferred so
    the passing path costs one truthiness test and a call.
    """
    if not condition:
        raise SimulationInvariantError(message % args if args else message)
