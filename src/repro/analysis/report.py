"""Rendering of lint results: text, JSON, GitHub annotations, SARIF."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.framework import Violation
from repro.analysis.rules import ALL_RULES


@dataclass
class LintReport:
    """Outcome of one lint run, before/after baseline filtering."""

    checked_files: int = 0
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    #: Baseline entries no current finding matches (stale
    #: fingerprints), as ``(rule_id, fingerprint)`` pairs.  Reported
    #: as warnings; they do not fail the gate.
    unused_suppressions: List[Tuple[str, str]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    for violation in sorted(report.violations,
                            key=lambda v: (v.path, v.line, v.rule_id)):
        lines.append(violation.format())
    for rule_id, fingerprint in report.unused_suppressions:
        lines.append(
            f"warning: unused suppression {rule_id} {fingerprint} "
            f"(rule no longer fires here; delete the entry or run "
            f"--update-baseline)")
    counts = report.counts_by_rule()
    if counts:
        summary = ", ".join(f"{rule}: {n}"
                            for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.checked_files} file(s) ({summary}); "
            f"{len(report.suppressed)} baseline-suppressed")
    else:
        lines.append(
            f"OK: {report.checked_files} file(s) clean "
            f"({len(report.suppressed)} baseline-suppressed)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "ok": report.ok,
        "checked_files": report.checked_files,
        "suppressed": len(report.suppressed),
        "unused_suppressions": [
            {"rule": rule_id, "fingerprint": fingerprint}
            for rule_id, fingerprint in report.unused_suppressions
        ],
        "counts": report.counts_by_rule(),
        "violations": [
            {
                "rule": v.rule_id,
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "column": v.column,
                "scope": v.scope,
                "fingerprint": v.fingerprint,
            }
            for v in sorted(report.violations,
                            key=lambda v: (v.path, v.line, v.rule_id))
        ],
    }
    return json.dumps(payload, indent=2)


def render_github(report: LintReport) -> str:
    """GitHub Actions workflow-command annotations.

    One ``::error`` line per violation (rendered inline on the PR
    diff) and one ``::warning`` per stale baseline entry, followed by
    the human summary as plain text.
    """

    def escape(text: str) -> str:
        # Workflow-command data: %, CR and LF must be URL-style escaped.
        return (text.replace("%", "%25").replace("\r", "%0D")
                .replace("\n", "%0A"))

    lines: List[str] = []
    for v in sorted(report.violations,
                    key=lambda v: (v.path, v.line, v.rule_id)):
        lines.append(
            f"::error file={v.path},line={v.line},col={v.column + 1},"
            f"title={v.rule_id}::{escape(v.message)}")
    for rule_id, fingerprint in report.unused_suppressions:
        detail = escape(fingerprint + " no longer fires; delete the "
                        "baseline entry or run --update-baseline")
        lines.append(
            f"::warning title={rule_id} unused suppression::{detail}")
    lines.append(
        f"{len(report.violations)} violation(s), "
        f"{len(report.suppressed)} baseline-suppressed, "
        f"{len(report.unused_suppressions)} unused suppression(s) in "
        f"{report.checked_files} file(s)")
    return "\n".join(lines)


_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 for GitHub code-scanning / artifact upload.

    Unsuppressed violations become ``error`` results; baseline-
    suppressed ones are included with a ``suppressions`` entry so the
    accepted backlog stays visible in scanning UIs.
    """

    def result(v: Violation, suppressed: bool) -> Dict:
        entry: Dict = {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path},
                    "region": {"startLine": max(v.line, 1),
                               "startColumn": v.column + 1},
                },
            }],
            "partialFingerprints": {"simLint/v1": v.fingerprint},
        }
        if suppressed:
            entry["suppressions"] = [{
                "kind": "external",
                "justification": "listed in analysis-baseline.toml",
            }]
        return entry

    fired = {v.rule_id for v in report.violations}
    fired.update(v.rule_id for v in report.suppressed)
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-sim-lint",
                    "informationUri": ("https://example.invalid/repro/"
                                       "docs/static_analysis.md"),
                    "rules": [
                        {
                            "id": rule.id,
                            "name": rule.name,
                            "shortDescription": {"text": rule.summary},
                        }
                        for rule in ALL_RULES if rule.id in fired
                    ],
                },
            },
            "results": ([result(v, False) for v in sorted(
                            report.violations,
                            key=lambda v: (v.path, v.line, v.rule_id))]
                        + [result(v, True) for v in sorted(
                            report.suppressed,
                            key=lambda v: (v.path, v.line, v.rule_id))]),
        }],
    }
    return json.dumps(payload, indent=2)


def render_rule_catalogue() -> str:
    """The ``--list-rules`` output."""
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.name:<24} {rule.summary}")
    return "\n".join(lines)
