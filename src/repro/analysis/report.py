"""Text and JSON rendering of lint results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.framework import Violation
from repro.analysis.rules import ALL_RULES


@dataclass
class LintReport:
    """Outcome of one lint run, before/after baseline filtering."""

    checked_files: int = 0
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    for violation in sorted(report.violations,
                            key=lambda v: (v.path, v.line, v.rule_id)):
        lines.append(violation.format())
    counts = report.counts_by_rule()
    if counts:
        summary = ", ".join(f"{rule}: {n}"
                            for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.checked_files} file(s) ({summary}); "
            f"{len(report.suppressed)} baseline-suppressed")
    else:
        lines.append(
            f"OK: {report.checked_files} file(s) clean "
            f"({len(report.suppressed)} baseline-suppressed)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "ok": report.ok,
        "checked_files": report.checked_files,
        "suppressed": len(report.suppressed),
        "counts": report.counts_by_rule(),
        "violations": [
            {
                "rule": v.rule_id,
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "column": v.column,
                "scope": v.scope,
                "fingerprint": v.fingerprint,
            }
            for v in sorted(report.violations,
                            key=lambda v: (v.path, v.line, v.rule_id))
        ],
    }
    return json.dumps(payload, indent=2)


def render_rule_catalogue() -> str:
    """The ``--list-rules`` output."""
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.name:<24} {rule.summary}")
    return "\n".join(lines)
