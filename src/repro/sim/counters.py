"""Typed per-component counter layer.

Every hierarchy component (L1 node, L2 node, prefetch filter chain, LLC
slice, NoC link, DRAM port) exposes its activity counters through a
``counters()`` method returning a flat ``{name: int}`` mapping -- one
:class:`CounterGroup` per component instance.  The groups are *pulled*,
not pushed: components keep plain integer attributes on their hot paths
(exactly as before this layer existed) and the registry reads them once,
at result-collection time.  That keeps the refactor free on the hot path
and bit-identical on timing, while making per-structure access counts --
the inputs the paper feeds to CACTI-P and the Micron DRAM power
calculator -- first-class outputs on ``SimulationResult.counters``.

Both simulation backends share the same hierarchy component instances,
so the snapshot is identical across backends by construction; the
cross-backend equivalence suite asserts it anyway.

Group naming convention (stable; the energy model keys off the suffix):

* ``core{N}.l1d`` / ``core{N}.l2``  -- private cache levels of core N;
* ``core{N}.chain``                 -- prefetch filter chain (drop
  accounting plus CLIP filter/predictor/utility-CAM accesses);
* ``llc.slice{N}``                  -- one shared-LLC bank;
* ``noc``                           -- mesh totals including exact
  flit-hops (real XY route lengths);
* ``dram.ch{N}``                    -- one DRAM channel, including
  per-bank activate counts (``bank{J}_activates``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

#: A component's counter snapshot: flat counter name -> value.
CounterDict = Dict[str, int]
#: Pull hook: zero-argument callable producing a component's snapshot.
CollectFn = Callable[[], CounterDict]


class CounterGroup:
    """One component's registered counter source.

    Wraps the component's ``counters()`` method (or any zero-argument
    callable) under a stable group name.  The group performs no
    bookkeeping of its own -- it is a named handle the registry
    snapshots on demand.
    """

    __slots__ = ("name", "collect")

    def __init__(self, name: str, collect: CollectFn) -> None:
        self.name = name
        self.collect = collect

    def snapshot(self) -> CounterDict:
        """The component's current counter values (a fresh dict)."""
        values = self.collect()
        for key, value in values.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(
                    f"counter group {self.name!r} produced non-integer "
                    f"counter {key!r} = {value!r}")
        return dict(values)


class CounterRegistry:
    """Ordered collection of every component's :class:`CounterGroup`.

    The hierarchy builder registers one group per component at wiring
    time; :meth:`snapshot` reads them all at result-collection time.
    Registration order is preserved so the snapshot's group order is
    deterministic (construction order: cores, LLC slices, NoC, DRAM).
    """

    __slots__ = ("_groups",)

    def __init__(self) -> None:
        self._groups: List[CounterGroup] = []

    def register(self, name: str, collect: CollectFn) -> CounterGroup:
        """Register a component's counter source under ``name``.

        Names must be unique: two components may not claim the same
        group (that would silently shadow one of them in the snapshot).
        """
        if any(group.name == name for group in self._groups):
            raise ValueError(f"counter group {name!r} already registered")
        group = CounterGroup(name, collect)
        self._groups.append(group)
        return group

    def groups(self) -> Tuple[str, ...]:
        """Registered group names, in registration order."""
        return tuple(group.name for group in self._groups)

    def snapshot(self) -> Dict[str, CounterDict]:
        """Every group's current counters: ``{group: {counter: value}}``."""
        return {group.name: group.snapshot() for group in self._groups}


__all__ = ["CounterDict", "CounterGroup", "CounterRegistry"]
