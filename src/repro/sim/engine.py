"""Discrete-event / cycle-hybrid simulation engine.

Cores are cycle-stepped components exposing ``tick(cycle)`` and a
``next_wake`` estimate; everything in the memory system is event-driven.
Each iteration the engine jumps straight to the earliest interesting cycle
(the next event or the next core wake), drains that cycle's events, then
ticks every core due at that cycle.  Skipping the dead cycles in which all
cores wait on memory is what makes a pure-Python many-core simulation
tractable (DESIGN.md section 2).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Protocol, Tuple

from repro.analysis.invariants import SimulationInvariantError


class Tickable(Protocol):
    """A cycle-stepped component (a core)."""

    next_wake: float
    done: bool

    def tick(self, cycle: int) -> None: ...


class Engine:
    """Event heap plus the skip-ahead main loop."""

    def __init__(self) -> None:
        self.now = 0
        self._events: List[Tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0
        self.events_processed = 0
        #: Cycle at which the post-run quiescence drain finished (the last
        #: in-flight memory event); equals the finish cycle when nothing
        #: was in flight.  ``now`` stays monotonic through the drain and
        #: ends here -- it is never rewound.
        self.quiesce_cycle = 0

    def schedule(self, cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``cycle`` (>= now)."""
        if cycle < self.now:
            raise ValueError(
                f"cannot schedule at {cycle}, now is {self.now}")
        heapq.heappush(self._events, (cycle, self._sequence, callback))
        self._sequence += 1

    def _drain_events_at(self, cycle: int) -> None:
        events = self._events
        while events and events[0][0] <= cycle:
            _, _, callback = heapq.heappop(events)
            self.events_processed += 1
            callback()

    def run(self, cores: List[Tickable],
            max_cycles: int = 1_000_000_000) -> int:
        """Run until every core is done; returns the final cycle.

        After the last core retires, remaining memory events (in-flight
        prefetches, writebacks) are drained so the hardware ends quiescent
        and statistics are complete.  ``now`` advances monotonically
        through that drain (the sanitizer's time-monotonicity invariant
        holds end to end) and is left at :attr:`quiesce_cycle`; the
        *returned* value is still the cycle the last core retired.
        """
        while True:
            active = [core for core in cores if not core.done]
            if not active:
                finish = self.now
                while self._events:
                    self.now = max(self.now, self._events[0][0])
                    self._drain_events_at(self.now)
                self.quiesce_cycle = self.now
                return finish
            next_cycle = float("inf")
            if self._events:
                next_cycle = self._events[0][0]
            for core in active:
                if core.next_wake < next_cycle:
                    next_cycle = core.next_wake
            if next_cycle == float("inf"):
                raise SimulationInvariantError(
                    "deadlock: no pending events and no core can progress "
                    f"(cycle {self.now}, "
                    f"{sum(1 for c in cores if not c.done)} cores active)")
            cycle = max(self.now, int(next_cycle))
            if cycle > max_cycles:
                raise SimulationInvariantError(
                    f"exceeded max_cycles={max_cycles}; likely livelock")
            self.now = cycle
            self._drain_events_at(cycle)
            for core in active:
                if not core.done and core.next_wake <= cycle:
                    core.tick(cycle)
