"""Discrete-event / cycle-hybrid simulation engine.

Cores are cycle-stepped components exposing ``tick(cycle)`` and a
``next_wake`` estimate; everything in the memory system is event-driven.
Each iteration the engine jumps straight to the earliest interesting cycle
(the next event or the next core wake), drains that cycle's events, then
ticks every core due at that cycle.  Skipping the dead cycles in which all
cores wait on memory is what makes a pure-Python many-core simulation
tractable (DESIGN.md section 2).

Events live in per-cycle FIFO buckets plus a heap of the distinct
pending cycles, instead of one heap of ``(cycle, seq, callback)``
tuples.  Same-cycle events -- the common case, since the hierarchy
batches at fixed latencies -- then cost one list append to schedule and
one list index to drain, with no per-event tuple.  Zero-argument
callbacks (the nodes' pre-bound completion methods) are stored bare;
``schedule(cycle, cb, *args)`` keeps closure-free call sites for the
few callbacks that need arguments.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Protocol

from repro.analysis.invariants import SimulationInvariantError


class Tickable(Protocol):
    """A cycle-stepped component (a core)."""

    next_wake: float
    done: bool

    def tick(self, cycle: int) -> None: ...


class Engine:
    """Bucketed event queue plus the skip-ahead main loop."""

    def __init__(self) -> None:
        self.now = 0
        #: cycle -> FIFO of events due then.  An entry is either a bare
        #: zero-argument callable or a ``(callable, args)`` pair.
        self._buckets: Dict[int, List] = {}
        #: Min-heap of the distinct cycles present in ``_buckets``; each
        #: cycle appears exactly once (pushed when its bucket is
        #: created, popped when the bucket is drained and deleted).
        self._cycle_heap: List[int] = []
        self.events_processed = 0
        #: Cycle at which the post-run quiescence drain finished (the last
        #: in-flight memory event); equals the finish cycle when nothing
        #: was in flight.  ``now`` stays monotonic through the drain and
        #: ends here -- it is never rewound.
        self.quiesce_cycle = 0

    def schedule(self, cycle: int, callback: Callable[..., None],
                 *args) -> None:
        """Run ``callback(*args)`` at ``cycle`` (>= now)."""
        if cycle < self.now:
            raise ValueError(
                f"cannot schedule at {cycle}, now is {self.now}")
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [(callback, args) if args else callback]
            heapq.heappush(self._cycle_heap, cycle)
        elif args:
            bucket.append((callback, args))
        else:
            bucket.append(callback)

    @property
    def pending_events(self) -> int:
        """Number of scheduled events not yet drained."""
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def next_event_cycle(self) -> int:
        """Cycle of the earliest pending event; -1 when none pending."""
        return self._cycle_heap[0] if self._cycle_heap else -1

    def _drain_events_at(self, cycle: int) -> None:
        heap = self._cycle_heap
        buckets = self._buckets
        heappop = heapq.heappop
        processed = 0
        while heap and heap[0] <= cycle:
            front = heappop(heap)
            bucket = buckets[front]
            # The bucket can grow while we walk it: a callback may
            # schedule at the cycle being drained, and FIFO order says
            # it runs after everything already queued there.  A list
            # iterator re-checks the length each step, so it visits
            # entries appended behind the cursor -- exactly that order.
            for event in bucket:
                if event.__class__ is tuple:
                    callback, args = event
                    callback(*args)
                else:
                    event()
            processed += len(bucket)
            del buckets[front]
        self.events_processed += processed

    def run(self, cores: List[Tickable],
            max_cycles: int = 1_000_000_000) -> int:
        """Run until every core is done; returns the final cycle.

        After the last core retires, remaining memory events (in-flight
        prefetches, writebacks) are drained so the hardware ends quiescent
        and statistics are complete.  ``now`` advances monotonically
        through that drain (the sanitizer's time-monotonicity invariant
        holds end to end) and is left at :attr:`quiesce_cycle`; the
        *returned* value is still the cycle the last core retired.
        """
        heap = self._cycle_heap
        active = [core for core in cores if not core.done]
        while active:
            next_cycle = heap[0] if heap else float("inf")
            for core in active:
                wake = core.next_wake
                if wake < next_cycle:
                    next_cycle = wake
            if next_cycle == float("inf"):
                raise SimulationInvariantError(
                    "deadlock: no pending events and no core can progress "
                    f"(cycle {self.now}, {len(active)} cores active)")
            cycle = int(next_cycle)
            if cycle < self.now:
                cycle = self.now
            if cycle > max_cycles:
                raise SimulationInvariantError(
                    f"exceeded max_cycles={max_cycles}; likely livelock")
            self.now = cycle
            # Dynamic attribute lookup on purpose: the sanitizer installs
            # a checking shim as an instance attribute.  Draining is
            # skipped outright when no event is due by ``cycle`` (a
            # core-wake iteration): the call would be a no-op.
            if heap and heap[0] <= cycle:
                self._drain_events_at(cycle)
            retired = False
            for core in active:
                if not core.done and core.next_wake <= cycle:
                    core.tick(cycle)
                    retired = retired or core.done
            if retired:
                active = [core for core in active if not core.done]
        finish = self.now
        while heap:
            front = heap[0]
            if front > self.now:
                self.now = front
            self._drain_events_at(self.now)
        self.quiesce_cycle = self.now
        return finish
