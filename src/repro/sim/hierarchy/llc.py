"""Shared LLC slice: cache bank + MSHR port + DRAM-side traffic.

Each slice owns ``1/num_slices`` of the shared LLC.  Lines are mapped
slice-local before touching the bank (the slice-selection bits are
stripped so the set index uses fresh bits); dirty victims reconstruct
the global line address before the DRAM write.  Responses travel back
to the requesting core's L2 node as data packets over the NoC.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.cache.cache import Cache
from repro.cpu.core_model import ServiceLevel
from repro.sim.hierarchy.dram_port import DramPort
from repro.sim.hierarchy.messages import MemoryRequest, MemoryResponse
from repro.sim.hierarchy.noc_link import NocLink
from repro.sim.hierarchy.port import Port

if TYPE_CHECKING:
    from repro.sim.hierarchy.node import CoreNode

_LEVEL_LLC = ServiceLevel.LLC
_LEVEL_DRAM = ServiceLevel.DRAM


class LlcSlice:
    """One bank of the shared LLC plus its MSHR and DRAM gateway."""

    __slots__ = ("slice_id", "cache", "port", "latency", "num_slices",
                 "link", "dram")

    def __init__(self, slice_id: int, cache: Cache, port: Port,
                 latency: int, num_slices: int, link: NocLink,
                 dram: DramPort) -> None:
        self.slice_id = slice_id
        self.cache = cache
        self.port = port
        self.latency = latency
        self.num_slices = num_slices
        self.link = link
        self.dram = dram

    def counters(self) -> Dict[str, int]:
        """This slice's counter group (``llc.slice{N}``): bank activity."""
        stats = self.cache.stats
        return {
            "demand_accesses": stats.demand_accesses,
            "demand_hits": stats.demand_hits,
            "demand_misses": stats.demand_misses,
            "prefetch_fills": stats.prefetch_fills,
            "useful_prefetches": stats.useful_prefetches,
            "useless_evictions": stats.useless_evictions,
            "writebacks": stats.writebacks,
        }

    def _local(self, line: int) -> int:
        """Slice-local line address: the slice-selection bits are stripped
        so the slice's set index uses fresh bits (otherwise only 1-in-
        num_slices of each slice's sets would ever be used)."""
        return line // self.num_slices

    def lookup(self, req: MemoryRequest, origin: "CoreNode") -> None:
        """Serve ``req`` for ``origin``'s L2: hit, merge, or go to DRAM."""
        now = self.port.now
        line = req.line
        high = req.high_priority
        hit = self.cache.access(self._local(line), req.ip, now,
                                is_demand=not req.is_prefetch)
        if hit:
            ready = now + self.latency
            self.link.data(self.slice_id, origin.core_id, ready, high,
                           self._deliver, origin, line, _LEVEL_LLC)
            return
        # Hermes may already have the line in flight from DRAM.
        if origin.hermes is not None and line in origin.hermes_pending:
            origin.hermes_pending[line].append(
                lambda t: self._return_data(origin, line,
                                            max(t, now + self.latency),
                                            high, _LEVEL_DRAM))
            return
        mshr = self.port.lookup(line)
        # DRAM-side waiters are stored as plain (origin, high) pairs --
        # :meth:`_dram_done` knows how to route them -- so the hot miss
        # path allocates no closures.
        if mshr is not None:
            self.port.merge(mshr, (origin, high), req.is_prefetch)
            return
        if self.port.full:
            # Every request reaching the LLC holds an L2 MSHR upstream, so
            # nothing may be dropped here -- queue until a register frees.
            self.port.defer(lambda: self.lookup(req, origin))
            return
        mshr = self.port.allocate(line, req.is_prefetch, req.crit, req.ip,
                                  now)
        mshr.waiters.append((origin, high))
        ready = now + self.latency
        self.port.schedule(ready, self._issue_dram_read, line,
                           req.is_prefetch, req.crit)

    def _issue_dram_read(self, line: int, is_prefetch: bool,
                         crit: bool) -> None:
        self.dram.read(line, self.port.now,
                       lambda t: self._dram_done(line, t),
                       is_prefetch=is_prefetch, crit=crit)

    def _dram_done(self, line: int, t: int) -> None:
        mshr = self.port.release(line)
        prefetch_fill = mshr.is_prefetch and not mshr.demand_merged
        self.fill(line, t, pc=mshr.trigger_ip, prefetch=prefetch_fill)
        for origin, high in mshr.waiters:
            self._return_data(origin, line, t, high, _LEVEL_DRAM)
        self.port.replay()

    def fill(self, line: int, t: int, pc: int, prefetch: bool,
             dirty: bool = False) -> None:
        """Install ``line`` into the bank; dirty victims write to DRAM."""
        evicted = self.cache.fill(self._local(line), pc, t, dirty=dirty,
                                  prefetch=prefetch)
        if evicted is not None and evicted.dirty:
            # Reconstruct the global line address from the slice-local one.
            victim_line = evicted.line * self.num_slices + self.slice_id
            self.dram.write(victim_line, t)

    def _return_data(self, origin: "CoreNode", line: int, t: int,
                     high: bool, level: ServiceLevel) -> None:
        self.link.data(self.slice_id, origin.core_id, t, high,
                       self._deliver, origin, line, level)

    def _deliver(self, origin: "CoreNode", line: int,
                 level: ServiceLevel) -> None:
        """Arrival handler: hand the fill to the origin core's L2."""
        origin.l2.complete(MemoryResponse(line, self.port.now, level))
