"""Configuration-driven construction of the memory hierarchy.

:class:`Hierarchy` turns a :class:`repro.config.SystemConfig` into the
component graph -- per-core :class:`~repro.sim.hierarchy.node.CoreNode`
(L1 node, L2 node, filter chain), shared :class:`~repro.sim.hierarchy.
llc.LlcSlice` banks, one :class:`~repro.sim.hierarchy.noc_link.NocLink`
and one :class:`~repro.sim.hierarchy.dram_port.DramPort` -- and exposes
the core-facing memory interface (``issue_load`` / ``issue_store``).
All mechanism objects are built here, fully, before any request flows.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

from repro.cache.cache import Cache
from repro.cache.mshr import MshrFile
from repro.config import SystemConfig
from repro.core.clip import Clip
from repro.criticality import make_criticality_predictor
from repro.dram.controller import DramSystem
from repro.mmu.tlb import Mmu
from repro.noc.mesh import MeshNoc
from repro.prefetch.base import make_prefetcher
from repro.prefetch.learned import SelectedPrefetcher, make_policy
from repro.related.dspatch import DspatchModulator
from repro.sim.counters import CounterRegistry
from repro.related.hermes import HermesPredictor
from repro.sim.engine import Engine
from repro.sim.hierarchy.dram_port import DramPort
from repro.sim.hierarchy.filters import PrefetchFilterChain
from repro.sim.hierarchy.l1 import L1Node
from repro.sim.hierarchy.l2 import L2Node
from repro.sim.hierarchy.llc import LlcSlice
from repro.sim.hierarchy.messages import LINE_SHIFT, privatize
from repro.sim.hierarchy.noc_link import NocLink
from repro.sim.hierarchy.node import CoreNode
from repro.sim.hierarchy.port import Port
from repro.sim.stats import PrefetchStats
from repro.sim.tracing import RequestTrace
from repro.throttle import make_throttler


class Hierarchy:
    """The wired memory system below the cores."""

    def __init__(self, config: SystemConfig, engine: Engine, noc: MeshNoc,
                 dram: DramSystem, stats: PrefetchStats,
                 trace: Optional[RequestTrace]) -> None:
        self.config = config
        self.engine = engine
        self.num_slices = config.num_cores
        self.stats = stats
        self.dram_port = DramPort(dram, engine)
        #: Shared NoC adapter; its port carries no MSHR (links do not
        #: back-pressure in this model), only delivery scheduling.
        self.link = NocLink(noc, Port(engine, mshr=None))
        self.slices: List[LlcSlice] = [
            LlcSlice(slice_id, Cache(config.llc_slice),
                     Port(engine, MshrFile(config.llc_slice.mshr_entries)),
                     config.llc_slice.latency, self.num_slices, self.link,
                     self.dram_port)
            for slice_id in range(self.num_slices)]
        self.nodes: List[CoreNode] = [
            self._build_node(core_id, trace)
            for core_id in range(config.num_cores)]
        #: Typed per-component counter layer: one registered
        #: :class:`~repro.sim.counters.CounterGroup` per component,
        #: snapshotted into ``SimulationResult.counters`` at collection
        #: time (pull model -- zero hot-path cost).  Both backends share
        #: these component instances, so the snapshot is backend-
        #: independent by construction.
        self.counters = CounterRegistry()
        self._register_counters()

    def _register_counters(self) -> None:
        registry = self.counters
        for node in self.nodes:
            registry.register(f"core{node.core_id}.l1d", node.l1.counters)
            registry.register(f"core{node.core_id}.l2", node.l2.counters)
            registry.register(f"core{node.core_id}.chain",
                              node.chain.counters)
        for slice_ in self.slices:
            registry.register(f"llc.slice{slice_.slice_id}",
                              slice_.counters)
        registry.register("noc", self.link.counters)
        for channel in range(len(self.dram_port.dram.channels)):
            registry.register(
                f"dram.ch{channel}",
                partial(self.dram_port.channel_counters, channel))

    def slice_of(self, line: int) -> int:
        return line % self.num_slices

    # ------------------------------------------------------------------
    # Core-facing memory interface
    # ------------------------------------------------------------------

    def issue_load(self, core_id: int, address: int, ip: int, cycle: int,
                   callback: Callable) -> None:
        self.nodes[core_id].l1.issue_load(address, ip, cycle, callback)

    def issue_store(self, core_id: int, address: int, ip: int,
                    cycle: int) -> None:
        self.nodes[core_id].l1.issue_store(address, ip, cycle)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_node(self, core_id: int,
                    trace: Optional[RequestTrace]) -> CoreNode:
        config = self.config
        node = CoreNode(core_id)
        l1_pf = l2_pf = None
        policy = None
        if config.learned.policy != "none":
            policy = make_policy(config.learned, core_id)
        if config.learned.policy == "bandit":
            # The selector owns the L1 slot (validate() guarantees the
            # static l1 prefetcher is "none" here).
            l1_pf = SelectedPrefetcher(config.learned.arms,
                                       config.l1_prefetcher.degree)
        elif config.l1_prefetcher.name != "none":
            l1_pf = make_prefetcher(config.l1_prefetcher.name,
                                    config.l1_prefetcher.degree)
        if config.l2_prefetcher.name != "none":
            l2_pf = make_prefetcher(config.l2_prefetcher.name,
                                    config.l2_prefetcher.degree)
        clip = None
        if config.clip.enabled:
            clip = Clip(config.clip)
            clip.bandwidth_probe = self.dram_port.utilization_now
        mmu = None
        if config.tlb.enabled:
            mmu = Mmu(
                dtlb_entries=config.tlb.dtlb_entries,
                dtlb_ways=config.tlb.dtlb_ways,
                stlb_entries=config.tlb.stlb_entries,
                stlb_ways=config.tlb.stlb_ways,
                stlb_latency=config.tlb.stlb_latency,
                page_walk_latency=config.tlb.page_walk_latency,
                page_shift=config.tlb.page_shift)
        hermes = HermesPredictor() if config.related.hermes else None
        chain = PrefetchFilterChain(
            node, self.stats, self.dram_port,
            lambda a: self.dram_port.channel_utilization(
                privatize(core_id, a)),
            gate_enabled=config.criticality.gate)
        if config.criticality.name != "none":
            chain.crit_gate = make_criticality_predictor(
                config.criticality.name)
        if config.throttle.name != "none":
            chain.throttler = make_throttler(config.throttle.name)
        if config.related.dspatch:
            chain.dspatch = DspatchModulator()
        chain.clip = clip
        if policy is not None:
            chain.policy = policy
            chain.policy_epoch = config.learned.epoch_accesses
            chain.noc_flits = self._noc_flit_hops
            if config.learned.policy == "bandit":
                chain.policy_target = l1_pf
        node.chain = chain
        node.l1 = L1Node(node, Cache(config.l1d),
                         Port(self.engine, MshrFile(config.l1d.mshr_entries)),
                         l1_pf, config.l1d.latency, self.stats, trace,
                         mmu=mmu, clip=clip, hermes=hermes)
        node.l2 = L2Node(node, Cache(config.l2),
                         Port(self.engine, MshrFile(config.l2.mshr_entries)),
                         l2_pf, config.l2.latency, self.stats)
        # Inter-layer wiring.
        node.l1.downstream = node.l2
        node.l1.offchip = self.dram_port
        node.l1.slices = self.slices
        node.l2.link = self.link
        node.l2.slices = self.slices
        node.l2.slice_of = self.slice_of
        chain.issue = node.l1.issue_prefetch
        self._wire_feedback(node)
        return node

    def _noc_flit_hops(self) -> int:
        """Policy-feature probe: exact mesh flit-hops so far."""
        return self.link.noc.stats.flit_hops

    def _wire_feedback(self, node: CoreNode) -> None:
        stats = self.stats
        policy = node.chain.policy

        def l1_use(line: int, trigger_ip: int) -> None:
            node.pf_useful += 1
            stats.useful += 1

        def l2_use(line: int, trigger_ip: int) -> None:
            node.pf_useful += 1
            stats.useful += 1
            if node.l2.prefetcher is not None:
                node.l2.prefetcher.on_prefetch_feedback(
                    line << LINE_SHIFT, True)

        def l2_useless(line: int) -> None:
            if node.l2.prefetcher is not None:
                node.l2.prefetcher.on_prefetch_feedback(
                    line << LINE_SHIFT, False)

        if policy is not None:
            # Documented ``update`` points: prefetch-use and
            # useless-eviction fates, at both private levels.  The
            # policy-aware closures exist only on learned runs, so
            # static schemes keep their exact pre-policy listeners.
            # They read ``node.chain.policy`` at call time -- that
            # attribute is the one documented stubbing seam, so a test
            # swapping it redirects *every* hook, not just decide().
            base_l1_use, base_l2_use = l1_use, l2_use
            base_l2_useless = l2_useless
            chain = node.chain

            def l1_use(line: int, trigger_ip: int) -> None:
                base_l1_use(line, trigger_ip)
                chain.policy.update(line, trigger_ip, True)

            def l2_use(line: int, trigger_ip: int) -> None:
                base_l2_use(line, trigger_ip)
                chain.policy.update(line, trigger_ip, True)

            def l2_useless(line: int) -> None:
                base_l2_useless(line)
                chain.policy.update(line, 0, False)

            def l1_useless(line: int) -> None:
                chain.policy.update(line, 0, False)

            node.l1.cache.useless_eviction_listener = l1_useless

        node.l1.cache.prefetch_use_listener = l1_use
        node.l2.cache.prefetch_use_listener = l2_use
        node.l2.cache.useless_eviction_listener = l2_useless
