"""Per-core prefetch filter chain: DSPatch -> CLIP / criticality gate.

Every prefetch candidate a core's prefetchers produce passes through one
:class:`PrefetchFilterChain` before reaching the issuing layer:

1. **DSPatch modulation** (when enabled) rewrites the candidate list
   against its myopic per-channel bandwidth signal;
2. **CLIP** (paper section 4.2) admits only candidates whose trigger is
   predicted load-critical under the current bandwidth regime, tagging
   survivors with the criticality flag; *or*, when a baseline
   criticality predictor is configured as a gate, that predictor admits
   by trigger IP;
3. survivors are handed to the chain's ``issue`` hook -- the L1 node's
   issuing logic (duplicate suppression, MSHR reservation, fill-level
   demotion).

The chain also owns the **throttling epoch** (FDP/HPAC/SPAC/NST): every
``_THROTTLE_EPOCH`` demand L1D accesses it snapshots accuracy/lateness/
pollution/occupancy and rescales the prefetchers' degree.  When a
learned :class:`~repro.prefetch.learned.policy.OnlinePolicy` is
attached, the chain additionally drives the **policy epoch**
(``observe`` with a :class:`~repro.prefetch.learned.policy.
PolicyFeatures` snapshot, applied to the ``policy_target`` arm
multiplexer) and consults ``policy.decide`` on every candidate that
survived the static filters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

from repro.prefetch.base import PrefetchRequest
from repro.prefetch.learned.policy import PolicyFeatures
from repro.sim.hierarchy.messages import privatize
from repro.sim.stats import PrefetchStats
from repro.throttle.base import ThrottleSnapshot

if TYPE_CHECKING:
    from repro.prefetch.learned.bandit import SelectedPrefetcher
    from repro.prefetch.learned.policy import OnlinePolicy
    from repro.sim.hierarchy.dram_port import DramPort
    from repro.sim.hierarchy.node import CoreNode

#: Demand L1D accesses per throttling epoch.
_THROTTLE_EPOCH = 1024


class PrefetchFilterChain:
    """The CLIP / criticality-gate / DSPatch / throttle hook stack."""

    __slots__ = ("node", "clip", "crit_gate", "gate_enabled", "dspatch",
                 "throttler", "stats", "dram", "channel_utilization",
                 "issue", "policy", "policy_target", "policy_epoch",
                 "noc_flits")

    def __init__(self, node: "CoreNode", stats: PrefetchStats,
                 dram: "DramPort",
                 channel_utilization: Callable[[int], float],
                 gate_enabled: bool) -> None:
        self.node = node
        self.clip = None
        self.crit_gate = None
        #: Baseline predictors can *measure* without gating; only a
        #: configured gate may drop candidates.
        self.gate_enabled = gate_enabled
        self.dspatch = None
        self.throttler = None
        self.stats = stats
        self.dram = dram
        self.channel_utilization = channel_utilization
        #: Issuing-layer hook, wired to ``L1Node.issue_prefetch``.
        self.issue: Callable[[PrefetchRequest, int, bool], None] = (
            lambda request, cycle, crit: None)
        #: Learned online policy (None for every static scheme).
        self.policy: "OnlinePolicy | None" = None
        #: The arm multiplexer ``observe`` actions re-target (bandit).
        self.policy_target: "SelectedPrefetcher | None" = None
        #: Demand L1D accesses per policy epoch.
        self.policy_epoch = 0
        #: NoC flit-hop probe (wired by the hierarchy builder).
        self.noc_flits: Callable[[], int] = lambda: 0

    def counters(self) -> Dict[str, int]:
        """This chain's counter group (``core{N}.chain``).

        Per-core prefetch issue/drop accounting, plus CLIP's structure
        accesses (filter, predictor, utility-buffer CAM) when CLIP is
        attached -- the per-structure activity the paper's energy
        accounting charges.
        """
        node = self.node
        values = {
            "pf_issued": node.pf_issued,
            "pf_dropped_filter": node.pf_dropped_filter,
            "pf_dropped_duplicate": node.pf_dropped_duplicate,
            "pf_dropped_mshr": node.pf_dropped_mshr,
            "pf_useful": node.pf_useful,
        }
        if self.clip is not None:
            stats = self.clip.stats
            values["clip_filter_accesses"] = stats.filter_accesses
            values["clip_predictor_accesses"] = stats.predictor_accesses
            values["clip_utility_cam_accesses"] = \
                stats.utility_cam_accesses
        if self.policy is not None:
            values.update(self.policy.counters())
        return values

    # ------------------------------------------------------------------
    # Candidate filtering
    # ------------------------------------------------------------------

    def handle(self, candidates: List[PrefetchRequest], cycle: int,
               dspatch_generated: bool = False) -> None:
        """Filter ``candidates`` and hand survivors to the issuing layer."""
        stats = self.stats
        node = self.node
        if self.dspatch is not None and not dspatch_generated:
            candidates = self.dspatch.filter_candidates(
                candidates, self.channel_utilization)
        for request in candidates:
            stats.candidates += 1
            crit = False
            if self.clip is not None:
                allowed, crit = self.clip.filter_request(
                    request.trigger_ip, request.address, cycle)
                if not allowed:
                    node.pf_dropped_filter += 1
                    stats.dropped_filter += 1
                    continue
            elif self.crit_gate is not None and self.gate_enabled:
                if not self.crit_gate.predicts_critical_ip(
                        request.trigger_ip):
                    node.pf_dropped_filter += 1
                    stats.dropped_filter += 1
                    continue
            if self.policy is not None:
                # Documented ``decide`` point: once per candidate that
                # survived the static filters, keyed by the privatised
                # line so fate feedback finds the same record.
                if not self.policy.decide(
                        request.trigger_ip,
                        privatize(node.core_id, request.address), cycle):
                    node.pf_dropped_filter += 1
                    stats.dropped_filter += 1
                    continue
            self.issue(request, cycle, crit)

    # ------------------------------------------------------------------
    # Throttling epochs
    # ------------------------------------------------------------------

    def note_demand_access(self, cycle: int) -> None:
        """Count one demand L1D access; close epochs when they fill.

        The policy epoch (when a policy is attached) closes before the
        throttling epoch, so an arm switch lands under the degree scale
        the throttler chose for the regime being measured.
        """
        node = self.node
        if self.policy is not None:
            node.policy_accesses += 1
            if node.policy_accesses >= self.policy_epoch:
                node.policy_accesses = 0
                self._close_policy_epoch(cycle)
        if self.throttler is None:
            return
        node.epoch_accesses += 1
        if node.epoch_accesses < _THROTTLE_EPOCH:
            return
        node.epoch_accesses = 0
        l1, l2 = node.l1, node.l2
        late = (l1.port.mshr.late_prefetch_merges
                + l2.port.mshr.late_prefetch_merges)
        pollution = (l1.cache.stats.useless_evictions
                     + l2.cache.stats.useless_evictions)
        issued, useful, base_late, base_pollution = node.epoch_base
        d_issued = node.pf_issued - issued
        d_useful = node.pf_useful - useful
        d_late = late - base_late
        d_pollution = pollution - base_pollution
        node.epoch_base = (node.pf_issued, node.pf_useful, late, pollution)
        accuracy = d_useful / d_issued if d_issued else 0.0
        lateness = d_late / d_useful if d_useful else 0.0
        poll = d_pollution / d_issued if d_issued else 0.0
        occupancy = ((len(l1.port.mshr.entries) + len(l2.port.mshr.entries))
                     / (l1.port.mshr.capacity + l2.port.mshr.capacity))
        snapshot = ThrottleSnapshot(
            accuracy=min(1.0, accuracy), lateness=min(1.0, lateness),
            pollution=min(1.0, poll),
            dram_utilization=self.dram.utilization(cycle),
            mshr_occupancy=occupancy, issued=d_issued)
        scale = self.throttler.decide(snapshot)
        if l1.prefetcher is not None:
            l1.prefetcher.set_degree_scale(scale)
        if l2.prefetcher is not None:
            l2.prefetcher.set_degree_scale(scale)

    # ------------------------------------------------------------------
    # Policy epochs
    # ------------------------------------------------------------------

    def _close_policy_epoch(self, cycle: int) -> None:
        """Documented ``observe`` point: snapshot integer features,
        let the policy digest them, apply any arm-switch action."""
        node = self.node
        l1, l2 = node.l1, node.l2
        occupancy = ((len(l1.port.mshr.entries)
                      + len(l2.port.mshr.entries)) * 1000
                     // (l1.port.mshr.capacity + l2.port.mshr.capacity))
        features = PolicyFeatures(
            cycle=cycle,
            pf_issued=node.pf_issued,
            pf_useful=node.pf_useful,
            pf_dropped=node.pf_dropped_filter,
            demand_misses=node.demand_l1_misses,
            useless_evictions=(l1.cache.stats.useless_evictions
                               + l2.cache.stats.useless_evictions),
            dram_busy_permille=int(self.dram.utilization(cycle) * 1000),
            noc_flit_hops=self.noc_flits(),
            mshr_occupancy_permille=occupancy)
        action = self.policy.observe(features)
        if action >= 0 and self.policy_target is not None:
            self.policy_target.activate(action)
