"""Typed messages exchanged between memory-hierarchy components.

Every request descending the hierarchy (core -> L1 -> L2 -> NoC -> LLC
slice -> DRAM) is a frozen :class:`MemoryRequest`; every completion
climbing back up is a frozen :class:`MemoryResponse`.  Freezing the
messages means a request queued behind a full MSHR (see
:class:`repro.sim.hierarchy.port.Port`) replays later with exactly the
identity it was issued with -- only the *cycle* a handler runs at is
re-read from the port, never the request fields.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.cpu.core_model import ServiceLevel

#: 64 B lines.
LINE_SHIFT = 6
#: High bits carving a private physical address space per core
#: (SPEC-rate style: 64 copies share nothing).
CORE_SPACE_SHIFT = 40


def privatize(core_id: int, address: int) -> int:
    """Per-core private line address for a byte ``address``."""
    return (address >> LINE_SHIFT) | (core_id << CORE_SPACE_SHIFT)


class MemoryRequest(NamedTuple):
    """One request descending the hierarchy.

    ``line`` is the privatised line address used by every shared
    structure; ``address`` keeps the original byte address for
    prefetcher training.  ``crit`` is CLIP's criticality flag: it
    promotes a prefetch into the demand service class at the NoC and
    DRAM (``high_priority``).  ``t0`` is the cycle the originating
    demand issued -- latency accounting and Berti timeliness are
    measured from it even when the request sat in a pending queue first.

    A NamedTuple rather than a frozen dataclass: still immutable (a
    request queued behind a full MSHR replays with exactly the identity
    it was issued with), but construction skips the per-field
    ``object.__setattr__`` frozen dataclasses pay, and one is built per
    miss and per issued prefetch.
    """

    line: int
    address: int
    ip: int
    core_id: int
    is_prefetch: bool = False
    is_store: bool = False
    crit: bool = False
    t0: int = 0

    @property
    def high_priority(self) -> bool:
        """Service class at the NoC and DRAM (demand, or critical)."""
        return (not self.is_prefetch) or self.crit


class MemoryResponse(NamedTuple):
    """One completion climbing back up: ``line`` is filled at ``at``,
    having been serviced at ``level`` of the hierarchy."""

    line: int
    at: int
    level: ServiceLevel
