"""Component-based memory hierarchy: typed messages, ports, layers.

The package decomposes the memory system into explicit components
connected by typed messages (:class:`MemoryRequest` /
:class:`MemoryResponse`), with all back-pressure and latency scheduling
owned by :class:`Port`:

    Core -> L1Node -> L2Node -> NocLink -> LlcSlice -> DramPort

:class:`Hierarchy` builds and wires the graph from a ``SystemConfig``;
:class:`PrefetchFilterChain` stacks the paper's filters (DSPatch, CLIP
or a baseline criticality gate, throttling epochs) in front of
:meth:`L1Node.issue_prefetch`.  See ``docs/simulator.md`` for the
architecture walkthrough.
"""

from repro.sim.hierarchy.dram_port import DramPort
from repro.sim.hierarchy.filters import PrefetchFilterChain
from repro.sim.hierarchy.l1 import L1Node
from repro.sim.hierarchy.l2 import L2Node
from repro.sim.hierarchy.llc import LlcSlice
from repro.sim.hierarchy.messages import (LINE_SHIFT, CORE_SPACE_SHIFT,
                                          MemoryRequest, MemoryResponse,
                                          privatize)
from repro.sim.hierarchy.noc_link import NocLink
from repro.sim.hierarchy.node import CoreNode
from repro.sim.hierarchy.port import Port
from repro.sim.hierarchy.wiring import Hierarchy

__all__ = [
    "CORE_SPACE_SHIFT",
    "CoreNode",
    "DramPort",
    "Hierarchy",
    "L1Node",
    "L2Node",
    "LINE_SHIFT",
    "LlcSlice",
    "MemoryRequest",
    "MemoryResponse",
    "NocLink",
    "Port",
    "PrefetchFilterChain",
    "privatize",
]
