"""Off-chip port: the hierarchy's one gateway to the DRAM system.

Wraps :class:`repro.dram.controller.DramSystem` with the exact surface
the on-chip components need -- line reads/writes plus the two bandwidth
signals the paper's mechanisms consume: global utilization (CLIP's
probe, throttler snapshots) and per-channel utilization (DSPatch's
deliberately myopic local signal).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.dram.controller import DramSystem
from repro.sim.engine import Engine


class DramPort:
    """Read/write access plus bandwidth-utilization probes."""

    __slots__ = ("dram", "engine")

    def __init__(self, dram: DramSystem, engine: Engine) -> None:
        self.dram = dram
        self.engine = engine

    def channel_counters(self, channel: int) -> Dict[str, int]:
        """Counter group of one channel (``dram.ch{N}``).

        Includes the per-bank activate counts (``bank{J}_activates``)
        the Micron-style DRAM power model consumes; ``activates`` is
        their sum (and equals ``row_misses``: every row miss issues
        exactly one ACT).
        """
        stats = self.dram.channels[channel].stats
        values = {
            "reads": stats.reads,
            "writes": stats.writes,
            "prefetch_reads": stats.prefetch_reads,
            "row_hits": stats.row_hits,
            "activates": sum(stats.bank_activates),
            "busy_cycles": stats.busy_cycles,
        }
        for bank, activates in enumerate(stats.bank_activates):
            values[f"bank{bank}_activates"] = activates
        return values

    def read(self, line: int, now: int, callback: Callable[[int], None],
             is_prefetch: bool, crit: bool) -> None:
        self.dram.read(line, now, callback, is_prefetch=is_prefetch,
                       crit=crit)

    def write(self, line: int, now: int) -> None:
        self.dram.write(line, now)

    def utilization(self, at: int) -> float:
        """Global DRAM data-bus utilization up to cycle ``at``."""
        return self.dram.utilization(max(1, at))

    def utilization_now(self) -> float:
        """CLIP's bandwidth probe: utilization at the current cycle."""
        return self.dram.utilization(max(1, self.engine.now))

    def channel_utilization(self, line: int) -> float:
        """DSPatch's myopic signal: utilization of ``line``'s channel."""
        where = self.dram.mapping.locate(line)
        channel = self.dram.channels[where.channel]
        return channel.stats.utilization(max(1, self.engine.now))
