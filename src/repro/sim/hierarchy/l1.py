"""L1D node: the hierarchy's issuing layer for one core.

Owns the private L1D cache, its MSHR port, the L1 prefetcher, and the
core-facing mechanisms that act at issue time: MMU translation, CLIP's
access/miss observation, DSPatch's candidate generation, and Hermes'
off-chip prediction.  Demands enter here (``issue_load`` /
``issue_store``); filtered prefetch candidates re-enter through
``issue_prefetch`` (the :class:`~repro.sim.hierarchy.filters.
PrefetchFilterChain`'s issue hook) and descend the same miss path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.cache.cache import Cache
from repro.cpu.core_model import ServiceLevel
from repro.prefetch.base import PrefetchRequest
from repro.sim.hierarchy.messages import MemoryRequest, privatize
from repro.sim.hierarchy.port import Port
from repro.sim.stats import PrefetchStats
from repro.sim.tracing import RequestRecord, RequestTrace

if TYPE_CHECKING:
    from repro.sim.hierarchy.dram_port import DramPort
    from repro.sim.hierarchy.l2 import L2Node
    from repro.sim.hierarchy.llc import LlcSlice
    from repro.sim.hierarchy.node import CoreNode

#: Enum member lookups are attribute loads on the metaclass -- hoisted
#: once, they cost a plain global load on the hit path.
_LEVEL_L1 = ServiceLevel.L1
_LEVEL_DRAM = ServiceLevel.DRAM


class L1Node:
    """Private L1D: cache + MSHR port + prefetcher + issue mechanisms."""

    __slots__ = ("node", "core_id", "cache", "port", "prefetcher",
                 "latency", "mmu", "clip", "hermes", "hermes_pending",
                 "stats", "trace", "downstream", "offchip", "slices")

    def __init__(self, node: "CoreNode", cache: Cache, port: Port,
                 prefetcher, latency: int, stats: PrefetchStats,
                 trace: Optional[RequestTrace], mmu=None, clip=None,
                 hermes=None) -> None:
        self.node = node
        self.core_id = node.core_id
        self.cache = cache
        self.port = port
        self.prefetcher = prefetcher
        self.latency = latency
        self.stats = stats
        self.trace = trace
        self.mmu = mmu
        self.clip = clip
        self.hermes = hermes
        #: Hermes launches in flight: line -> continuations awaiting it.
        self.hermes_pending: Dict[int, List[Callable]] = {}
        # Wired after construction.
        self.downstream: "L2Node"
        self.offchip: "DramPort"
        self.slices: List["LlcSlice"]

    def counters(self) -> Dict[str, int]:
        """This L1D's counter group (``core{N}.l1d``): cache activity."""
        stats = self.cache.stats
        return {
            "demand_accesses": stats.demand_accesses,
            "demand_hits": stats.demand_hits,
            "demand_misses": stats.demand_misses,
            "prefetch_fills": stats.prefetch_fills,
            "useful_prefetches": stats.useful_prefetches,
            "useless_evictions": stats.useless_evictions,
            "writebacks": stats.writebacks,
        }

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------

    def issue_load(self, address: int, ip: int, cycle: int,
                   callback: Callable) -> None:
        if self.mmu is not None:
            translation = self.mmu.translate(address)
            if translation:
                # Re-enter after the TLB/page-walk latency has elapsed.
                self.port.schedule(cycle + translation,
                                   self._load_after_translation,
                                   address, ip, callback)
                return
        self._load_translated(address, ip, cycle, callback)

    def _load_after_translation(self, address: int, ip: int,
                                callback: Callable) -> None:
        self._load_translated(address, ip, self.port.now, callback)

    def _load_translated(self, address: int, ip: int, cycle: int,
                         callback: Callable) -> None:
        node = self.node
        chain = node.chain
        clip = self.clip
        line = privatize(self.core_id, address)
        if clip is not None:
            clip.on_l1d_access(line, cycle)
        chain.note_demand_access(cycle)
        hit = self.cache.access(line, ip, cycle)
        prefetcher = self.prefetcher
        if prefetcher is not None:
            candidates = prefetcher.on_access(ip, address, hit, cycle)
            if candidates:
                chain.handle(candidates, cycle)
        dspatch = chain.dspatch
        if dspatch is not None:
            extra = dspatch.observe(ip, address,
                                    chain.channel_utilization)
            if extra:
                chain.handle(extra, cycle, dspatch_generated=True)
        if self.hermes is not None:
            callback = self._wrap_hermes(ip, address, callback)
        if hit:
            done = cycle + self.latency
            if self.trace is not None:
                self.trace.append(RequestRecord(
                    self.core_id, address, cycle, done, _LEVEL_L1,
                    False))
            self.port.schedule(done, callback, done, _LEVEL_L1)
            return
        node.demand_l1_misses += 1
        if clip is not None:
            clip.on_l1d_miss(cycle)
        if self.hermes is not None and self.hermes.predict_offchip(ip,
                                                                   address):
            self._hermes_launch(line, cycle)
        self.request(
            MemoryRequest(line=line, address=address, ip=ip,
                          core_id=self.core_id, t0=cycle),
            cycle, callback)

    def issue_store(self, address: int, ip: int, cycle: int) -> None:
        if self.mmu is not None:
            translation = self.mmu.translate(address)
            if translation:
                self.port.schedule(cycle + translation,
                                   self._store_after_translation,
                                   address, ip)
                return
        self._store_translated(address, ip, cycle)

    def _store_after_translation(self, address: int, ip: int) -> None:
        self._store_translated(address, ip, self.port.now)

    def _store_translated(self, address: int, ip: int, cycle: int) -> None:
        node = self.node
        line = privatize(self.core_id, address)
        if self.clip is not None:
            self.clip.on_l1d_access(line, cycle)
        node.chain.note_demand_access(cycle)
        hit = self.cache.access(line, ip, cycle, is_write=True)
        if hit:
            return
        node.demand_l1_misses += 1
        if self.clip is not None:
            self.clip.on_l1d_miss(cycle)
        # Write-allocate: fetch the line (RFO) and fill it dirty.
        self.request(
            MemoryRequest(line=line, address=address, ip=ip,
                          core_id=self.core_id, is_store=True, t0=cycle),
            cycle, callback=None)

    # ------------------------------------------------------------------
    # Hermes
    # ------------------------------------------------------------------

    def _wrap_hermes(self, ip: int, address: int,
                     callback: Callable) -> Callable:
        def trained(done: int, level: ServiceLevel) -> None:
            self.hermes.train(ip, address, level == ServiceLevel.DRAM)
            callback(done, level)
        return trained

    def _hermes_launch(self, line: int, cycle: int) -> None:
        if line in self.hermes_pending or len(self.hermes_pending) > 256:
            return
        self.hermes_pending[line] = []
        self.offchip.read(line, cycle,
                          lambda t: self._hermes_done(line, t),
                          is_prefetch=False, crit=False)

    def _hermes_done(self, line: int, t: int) -> None:
        waiters = self.hermes_pending.pop(line, [])
        slice_ = self.slices[line % len(self.slices)]
        slice_.fill(line, t, pc=0, prefetch=not waiters)
        for continuation in waiters:
            continuation(t)

    # ------------------------------------------------------------------
    # Prefetch issuing (the filter chain's issue hook)
    # ------------------------------------------------------------------

    def issue_prefetch(self, request: PrefetchRequest, cycle: int,
                       crit: bool) -> None:
        node = self.node
        stats = self.stats
        line = privatize(self.core_id, request.address)
        # CLIP-selected prefetches from an L1 prefetcher always fill to L1
        # (section 4.2: the requests are known critical and accurate);
        # otherwise the prefetcher's requested fill level stands.
        if self.clip is not None and self.prefetcher is not None:
            fill_level = 1
        else:
            fill_level = request.fill_level
        l2 = self.downstream
        if (self.cache.probe(line) or l2.cache.probe(line)
                or l2.port.lookup(line) is not None
                or self.port.lookup(line) is not None):
            node.pf_dropped_duplicate += 1
            stats.dropped_duplicate += 1
            return
        if fill_level == 1 and self.port.full:
            # Demote to an L2 fill (Berti orchestrates fills across L1..L3;
            # a prefetch that cannot park at L1 still moves the line on
            # chip).
            fill_level = 2
        if fill_level != 1 and l2.port.full:
            node.pf_dropped_mshr += 1
            stats.dropped_mshr += 1
            return
        node.pf_issued += 1
        stats.issued += 1
        if self.clip is not None:
            self.clip.on_prefetch_issued(line, request.trigger_ip)
        req = MemoryRequest(line=line, address=request.address,
                            ip=request.trigger_ip, core_id=self.core_id,
                            is_prefetch=True, crit=crit, t0=cycle)
        if fill_level == 1:
            self.request(req, cycle, callback=None)
        else:
            l2.request(req, cycle, respond=None)

    # ------------------------------------------------------------------
    # Miss path
    # ------------------------------------------------------------------

    def request(self, req: MemoryRequest, cycle: int,
                callback: Optional[Callable]) -> None:
        """Handle an L1 miss (or L1-fill prefetch) for ``req.line``."""
        node = self.node
        line = req.line
        if req.is_prefetch and self.cache.probe(line):
            # A demand fetched the line while this prefetch queued.
            node.pf_dropped_duplicate += 1
            self.stats.dropped_duplicate += 1
            return
        mshr = self.port.lookup(line)
        if mshr is not None:
            waiter = (callback, req.t0) if callback is not None else None
            was_late = mshr.is_prefetch and not mshr.demand_merged
            self.port.merge(mshr, waiter, req.is_prefetch)
            if was_late and not req.is_prefetch:
                # Late but useful: the paper counts these as accurate.
                self.stats.late += 1
                self.stats.useful += 1
                node.pf_useful += 1
            if req.is_store:
                mshr.dirty = True
            return
        if self.port.full:
            if req.is_prefetch:
                # Lost a race with demand allocations since the issue-time
                # check; fall back to the L2 fill path.
                self.downstream.request(req, cycle, respond=None)
                return
            self.port.defer(
                lambda: self.request(req, self.port.now, callback))
            return
        mshr = self.port.allocate(line, req.is_prefetch, req.crit, req.ip,
                                  cycle)
        mshr.address = req.address
        mshr.dirty = req.is_store
        # Berti times deltas against the *demand* cycle; when the miss sat
        # in the pending queue first, allocation time would understate the
        # latency and invert the timeliness test.
        mshr.allocated_at = req.t0
        if callback is not None:
            mshr.waiters.append((callback, req.t0))
        self.port.schedule(cycle + self.latency, self._forward_to_l2, req)

    def _forward_to_l2(self, req: MemoryRequest) -> None:
        self.downstream.request(req, self.port.now, respond=self._complete)

    def _complete(self, resp) -> None:
        """Fill from below: release the MSHR, fill the cache, wake waiters."""
        node = self.node
        line, t, level = resp.line, resp.at, resp.level
        mshr = self.port.release(line)
        prefetch_fill = mshr.is_prefetch and not mshr.demand_merged
        evicted = self.cache.fill(line, mshr.trigger_ip, t,
                                  dirty=mshr.dirty, prefetch=prefetch_fill,
                                  trigger_ip=mshr.trigger_ip)
        if evicted is not None and evicted.dirty:
            self.downstream.accept_writeback(evicted.line, t)
        if self.prefetcher is not None and not mshr.is_prefetch:
            more = self.prefetcher.on_fill(mshr.address, t, prefetch=False,
                                           ip=mshr.trigger_ip,
                                           issued_at=mshr.allocated_at)
            if more:
                node.chain.handle(more, t)
        for callback, t0 in mshr.waiters:
            latency = t - t0
            if self.trace is not None:
                self.trace.append(RequestRecord(
                    self.core_id, mshr.address, t0, t, ServiceLevel(level),
                    mshr.is_prefetch))
            for lvl in range(_LEVEL_L1, min(level, _LEVEL_DRAM) + 1):
                if lvl < level:
                    # The load missed at lvl; its latency counts toward
                    # lvl's demand miss latency (Fig. 3 accounting).
                    node.lat_sum[lvl] += latency
                    node.lat_count[lvl] += 1
            callback(t, level)
        self.port.replay()
