"""The port: a component's only connection to time and back-pressure.

A :class:`Port` bundles the two things every hierarchy component needs
and nothing else may touch directly:

* **latency scheduling** against the shared :class:`~repro.sim.engine.
  Engine` -- components call :meth:`Port.schedule`; lint rule SIM008
  flags any hierarchy component calling ``engine.schedule`` itself, so
  the engine-facing surface stays in one reviewable place;
* **MSHR back-pressure** -- when the component's
  :class:`~repro.cache.mshr.MshrFile` is full, requests are deferred
  into its FIFO pending queue (:meth:`defer`) and replayed in order as
  registers free up (:meth:`replay`).  This queueing is the mechanism
  that inflates miss latency under bandwidth constraint (paper Fig. 3).

The port intentionally resolves ``engine.schedule`` and the MSHR
methods *dynamically* (attribute lookup per call): the runtime
sanitizer (:mod:`repro.analysis.sanitizer`) installs its checking shims
as instance attributes after wiring, and a port holding bound methods
would silently bypass them.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.mshr import Mshr, MshrFile
from repro.sim.engine import Engine


class Port:
    """One component's engine access plus (optional) MSHR back-pressure."""

    __slots__ = ("engine", "mshr")

    def __init__(self, engine: Engine,
                 mshr: Optional[MshrFile] = None) -> None:
        self.engine = engine
        self.mshr = mshr

    # -- time ----------------------------------------------------------

    @property
    def now(self) -> int:
        return self.engine.now

    def schedule(self, cycle: int, callback: Callable[..., None],
                 *args) -> None:
        """Run ``callback(*args)`` at ``cycle`` (the sanctioned latency
        path).  Passing ``args`` through the engine's bucketed queue
        keeps hot call sites closure-free."""
        self.engine.schedule(cycle, callback, *args)

    # -- MSHR back-pressure --------------------------------------------

    def _require_mshr(self) -> MshrFile:
        mshr = self.mshr
        if mshr is None:
            raise TypeError("port has no MSHR file attached")
        return mshr

    @property
    def full(self) -> bool:
        return self._require_mshr().full

    def lookup(self, line: int) -> Optional[Mshr]:
        return self._require_mshr().lookup(line)

    def allocate(self, line: int, is_prefetch: bool, crit: bool,
                 trigger_ip: int, now: int) -> Mshr:
        return self._require_mshr().allocate(line, is_prefetch, crit,
                                             trigger_ip, now)

    def merge(self, mshr: Mshr, waiter, is_prefetch: bool) -> None:
        self._require_mshr().merge(mshr, waiter, is_prefetch)

    def release(self, line: int) -> Mshr:
        return self._require_mshr().release(line)

    def defer(self, thunk: Callable[[], None]) -> None:
        """Queue ``thunk`` until an MSHR register frees up (FIFO)."""
        self._require_mshr().pending.append(thunk)

    def replay(self) -> None:
        """Replay deferred requests in FIFO order while registers last.

        A replayed request may re-fill the MSHR immediately; the loop
        re-checks ``full`` before each pop so later entries keep their
        place in line instead of being dropped or reordered.
        """
        mshr = self._require_mshr()
        while mshr.pending and not mshr.full:
            thunk = mshr.pending.popleft()
            thunk()
