"""Per-core vertical slice of the hierarchy: L1 + L2 + filter chain.

:class:`CoreNode` aggregates the two private levels of one core and the
per-core accounting both levels update (prefetch issue/drop counters,
demand-latency sums indexed by service level, throttling-epoch state).
The flow logic lives in the layer components (:class:`~repro.sim.
hierarchy.l1.L1Node`, :class:`~repro.sim.hierarchy.l2.L2Node`); the
node exposes flat views (``l1d``, ``l1_mshr``, ``hermes``, ...) so
result collection, the sanitizer, and tests address per-core state
without caring which layer owns it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.hierarchy.filters import PrefetchFilterChain
    from repro.sim.hierarchy.l1 import L1Node
    from repro.sim.hierarchy.l2 import L2Node


class CoreNode:
    """One core's private memory-side state and counters."""

    __slots__ = ("core_id", "l1", "l2", "chain", "pf_issued",
                 "pf_dropped_filter", "pf_dropped_duplicate",
                 "pf_dropped_mshr", "pf_useful", "lat_sum", "lat_count",
                 "epoch_accesses", "epoch_base", "demand_l1_misses",
                 "policy_accesses")

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        # Layer components, attached by the hierarchy builder right
        # after construction (the node exists first so the layers can
        # hold a back-reference to their shared counters).
        self.l1: "L1Node"
        self.l2: "L2Node"
        self.chain: "PrefetchFilterChain"
        self.pf_issued = 0
        self.pf_dropped_filter = 0
        self.pf_dropped_duplicate = 0
        self.pf_dropped_mshr = 0
        self.pf_useful = 0
        # Demand-latency accounting indexed by ServiceLevel value.
        self.lat_sum = [0, 0, 0, 0, 0]
        self.lat_count = [0, 0, 0, 0, 0]
        self.epoch_accesses = 0
        #: Snapshot of (issued, useful, late, pollution) at last epoch end.
        self.epoch_base = (0, 0, 0, 0)
        self.demand_l1_misses = 0
        #: Demand accesses into the current learned-policy epoch.
        self.policy_accesses = 0

    # -- flat views over the layer components --------------------------

    @property
    def l1d(self):
        return self.l1.cache

    @property
    def l1_mshr(self):
        return self.l1.port.mshr

    @property
    def l2_cache(self):
        return self.l2.cache

    @property
    def l2_mshr(self):
        return self.l2.port.mshr

    @property
    def l1_pf(self):
        return self.l1.prefetcher

    @property
    def l2_pf(self):
        return self.l2.prefetcher

    @property
    def clip(self):
        return self.l1.clip

    @property
    def mmu(self):
        return self.l1.mmu

    @property
    def hermes(self):
        return self.l1.hermes

    @property
    def hermes_pending(self):
        return self.l1.hermes_pending

    @property
    def dspatch(self):
        return self.chain.dspatch

    @property
    def crit_gate(self):
        return self.chain.crit_gate

    @property
    def throttler(self):
        return self.chain.throttler

    @property
    def policy(self):
        return self.chain.policy
