"""NoC adapter: typed send + delivery scheduling for hierarchy traffic.

The mesh itself (:class:`repro.noc.mesh.MeshNoc`) is a timing model --
it answers "when does this packet arrive".  :class:`NocLink` is the
hierarchy-side adapter that turns an arrival time into a delivered
message by scheduling the receiver's handler through a
:class:`~repro.sim.hierarchy.port.Port` (never the engine directly).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.noc.mesh import MeshNoc
from repro.sim.hierarchy.port import Port


class NocLink:
    """Request/data packet transport between L2 nodes and LLC slices."""

    __slots__ = ("noc", "port")

    def __init__(self, noc: MeshNoc, port: Port) -> None:
        self.noc = noc
        self.port = port

    def counters(self) -> Dict[str, int]:
        """The mesh's counter group (``noc``), including exact flit-hops
        (each packet's flits x its real XY route length)."""
        stats = self.noc.stats
        return {
            "packets": stats.packets,
            "flits": stats.flits,
            "total_hops": stats.total_hops,
            "flit_hops": stats.flit_hops,
            "high_priority_packets": stats.high_priority_packets,
        }

    def request(self, src: int, dst: int, now: int, high_priority: bool,
                deliver: Callable[..., None], *args) -> None:
        """Send a single-flit request packet; run ``deliver(*args)`` on
        arrival."""
        arrival = self.noc.send_request(src, dst, now, high_priority)
        self.port.schedule(arrival, deliver, *args)

    def data(self, src: int, dst: int, now: int, high_priority: bool,
             deliver: Optional[Callable[..., None]] = None, *args) -> int:
        """Send a line-sized data packet, returning the arrival cycle.

        Without ``deliver`` the packet only occupies links (fire-and-
        forget writeback traffic); with it, ``deliver(*args)`` runs at
        arrival.
        """
        arrival = self.noc.send_data(src, dst, now, high_priority)
        if deliver is not None:
            self.port.schedule(arrival, deliver, *args)
        return arrival
