"""Private L2 node: cache + MSHR port + L2 prefetcher + NoC egress.

Requests arrive from the core's :class:`~repro.sim.hierarchy.l1.L1Node`
(demand misses and L1-fill prefetches) or directly from the issuing
logic (L2-fill prefetches, ``respond=None``).  Misses cross the NoC to
the line's LLC slice; fills come back through :meth:`complete`, which
wakes every response callback merged into the MSHR entry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.cache.cache import Cache
from repro.cpu.core_model import ServiceLevel
from repro.sim.hierarchy.messages import MemoryRequest, MemoryResponse
from repro.sim.hierarchy.noc_link import NocLink
from repro.sim.hierarchy.port import Port
from repro.sim.stats import PrefetchStats

if TYPE_CHECKING:
    from repro.sim.hierarchy.llc import LlcSlice
    from repro.sim.hierarchy.node import CoreNode

#: A response callback: receives the fill's :class:`MemoryResponse`.
Respond = Callable[[MemoryResponse], None]

_LEVEL_L2 = ServiceLevel.L2


class L2Node:
    """Per-core private L2 between the L1 node and the shared LLC."""

    __slots__ = ("node", "cache", "port", "prefetcher", "latency",
                 "stats", "link", "slices", "slice_of")

    def __init__(self, node: "CoreNode", cache: Cache, port: Port,
                 prefetcher, latency: int, stats: PrefetchStats) -> None:
        self.node = node
        self.cache = cache
        self.port = port
        self.prefetcher = prefetcher
        self.latency = latency
        self.stats = stats
        # Wired after construction.
        self.link: NocLink
        self.slices: List["LlcSlice"]
        self.slice_of: Callable[[int], int]

    def counters(self) -> Dict[str, int]:
        """This L2's counter group (``core{N}.l2``): cache activity."""
        stats = self.cache.stats
        return {
            "demand_accesses": stats.demand_accesses,
            "demand_hits": stats.demand_hits,
            "demand_misses": stats.demand_misses,
            "prefetch_fills": stats.prefetch_fills,
            "useful_prefetches": stats.useful_prefetches,
            "useless_evictions": stats.useless_evictions,
            "writebacks": stats.writebacks,
        }

    def request(self, req: MemoryRequest, cycle: int,
                respond: Optional[Respond]) -> None:
        """Look up ``req.line``; miss descends to the LLC slice."""
        node = self.node
        line = req.line
        hit = self.cache.access(line, req.ip, cycle,
                                is_demand=not req.is_prefetch)
        if not req.is_prefetch and self.prefetcher is not None:
            candidates = self.prefetcher.on_access(req.ip, req.address, hit,
                                                   cycle)
            if candidates:
                node.chain.handle(candidates, cycle)
        if hit:
            if respond is not None:
                done = cycle + self.latency
                self.port.schedule(done, respond,
                                   MemoryResponse(line, done, _LEVEL_L2))
            return
        mshr = self.port.lookup(line)
        if mshr is not None:
            waiter = respond
            was_late = mshr.is_prefetch and not mshr.demand_merged
            self.port.merge(mshr, waiter, req.is_prefetch)
            if was_late and not req.is_prefetch:
                # Late but useful: the paper counts these as accurate.
                self.stats.late += 1
                self.stats.useful += 1
                node.pf_useful += 1
            return
        if self.port.full:
            # A prefetch holding no upstream MSHR (respond is None) may be
            # dropped; one that allocated an L1 MSHR must queue like a
            # demand, or the L1 entry would leak and deadlock its waiters.
            if req.is_prefetch and respond is None:
                node.pf_dropped_mshr += 1
                self.stats.dropped_mshr += 1
                # Un-count it: it never entered the hierarchy.
                node.pf_issued -= 1
                self.stats.issued -= 1
                return
            self.port.defer(
                lambda: self.request(req, self.port.now, respond))
            return
        mshr = self.port.allocate(line, req.is_prefetch, req.crit, req.ip,
                                  cycle)
        mshr.address = req.address
        if respond is not None:
            mshr.waiters.append(respond)
        self.port.schedule(cycle + self.latency, self._to_llc, req)

    def _to_llc(self, req: MemoryRequest) -> None:
        """Cross the NoC to the line's LLC slice."""
        now = self.port.now
        slice_ = self.slices[self.slice_of(req.line)]
        self.link.request(
            self.node.core_id, slice_.slice_id, now, req.high_priority,
            slice_.lookup, req, self.node)

    def complete(self, resp: MemoryResponse) -> None:
        """Fill from the LLC side: release, fill, wake response callbacks."""
        line, t = resp.line, resp.at
        mshr = self.port.release(line)
        prefetch_fill = mshr.is_prefetch and not mshr.demand_merged
        evicted = self.cache.fill(line, mshr.trigger_ip, t,
                                  prefetch=prefetch_fill,
                                  trigger_ip=mshr.trigger_ip)
        if evicted is not None and evicted.dirty:
            self._writeback(evicted.line, t)
        for waiter in mshr.waiters:
            waiter(resp)
        self.port.replay()

    def _writeback(self, line: int, t: int) -> None:
        slice_id = self.slice_of(line)
        # Fire-and-forget data packet occupying NoC links (low priority).
        self.link.data(self.node.core_id, slice_id, t, high_priority=False)
        self.slices[slice_id].fill(line, t, pc=0, prefetch=False,
                                   dirty=True)

    def accept_writeback(self, line: int, t: int) -> None:
        """Absorb an L1 dirty victim (no allocation cascade modeled)."""
        self.cache.fill(line, 0, t, dirty=True)
