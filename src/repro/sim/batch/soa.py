"""Struct-of-arrays trace precompute for the batch backend.

A :class:`TraceSoA` decomposes one core's instruction trace into parallel
columns plus everything about the run that is a pure function of the
trace itself -- independent of memory timing and therefore legal to hoist
out of the simulation loop without changing a single result bit:

* **columns** -- ``ip``/``op``/``address``/``dst``/``taken`` as numpy
  arrays (the canonical store, also used for vectorised census) and as
  plain lists (the interpreter-friendly view the dispatch loop indexes);
* **dependency wiring** -- the producer of instruction *i*'s source
  register is the last earlier instruction writing that register, a
  property of trace order alone.  ``wired_srcs[i]`` keeps only the
  sources that actually have a producer (the event path discovers the
  same set with a dict probe per source, per instruction) and
  ``producers_meta[i]`` is the exact ``(ip, op)`` tuple the event path
  assembles per dispatch;
* **branch outcomes** -- the hashed perceptron sees branches in program
  order with trace-supplied outcomes, so its entire correct/incorrect
  sequence (and final counter values) replays from the trace once, here,
  instead of once per simulated branch per run.

Precompute is cached in a small LRU keyed by trace identity and branch
configuration: a sweep running one workload under many schemes pays it
once.  The cache holds a strong reference to the trace, so the identity
key cannot alias a recycled ``id()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config import BranchPredictorConfig
from repro.cpu.branch import HashedPerceptronPredictor
from repro.trace.record import TraceRecord

_BRANCH = 2  # int(Op.BRANCH); module constant keeps the sweep loop flat


class TraceSoA:
    """Immutable struct-of-arrays view of one core's trace."""

    __slots__ = ("length", "ip", "op", "address", "dst", "taken",
                 "ips", "ops", "addresses", "dsts", "takens",
                 "wired_srcs", "producers_meta", "branch_correct",
                 "branch_count", "branch_mispredicts")

    def __init__(self, records: Sequence[TraceRecord],
                 branch: BranchPredictorConfig) -> None:
        n = len(records)
        self.length = n
        # Canonical numpy columns (shared dtype idiom with repro.trace.io).
        self.ip = np.fromiter((r.ip for r in records), dtype=np.int64,
                              count=n)
        self.op = np.fromiter((int(r.op) for r in records), dtype=np.uint8,
                              count=n)
        self.address = np.fromiter((r.address for r in records),
                                   dtype=np.int64, count=n)
        self.dst = np.fromiter((r.dst for r in records), dtype=np.int32,
                               count=n)
        self.taken = np.fromiter((r.taken for r in records),
                                 dtype=np.bool_, count=n)
        # List views: CPython indexes a list faster than a 0-d numpy
        # scalar extraction, and the dispatch loop reads one element at a
        # time.  ``tolist`` yields plain ints/bools, which compare and
        # hash identically to the enum members the event path carries.
        self.ips: List[int] = self.ip.tolist()
        self.ops: List[int] = self.op.tolist()
        self.addresses: List[int] = self.address.tolist()
        self.dsts: List[int] = self.dst.tolist()
        self.takens: List[bool] = self.taken.tolist()
        self._wire(records)
        self._replay_branches(branch)

    # -- dependency wiring ---------------------------------------------

    def _wire(self, records: Sequence[TraceRecord]) -> None:
        """Precompute, per instruction, which sources have a producer.

        Mirrors the event path exactly: a source is wired iff an earlier
        instruction with ``dst >= 0`` wrote it (duplicates preserved, in
        source order), and the metadata tuple collects the producer's
        ``(ip, op)`` pair per wired source.
        """
        last_writer: Dict[int, int] = {}
        wired: List[Tuple[int, ...]] = []
        meta: List[Tuple[Tuple[int, int], ...]] = []
        ips, ops = self.ips, self.ops
        empty: Tuple[int, ...] = ()
        empty_meta: Tuple[Tuple[int, int], ...] = ()
        for index, record in enumerate(records):
            srcs = record.srcs
            if srcs:
                kept = [src for src in srcs if src in last_writer]
                if kept:
                    wired.append(tuple(kept))
                    meta.append(tuple((ips[last_writer[src]],
                                       ops[last_writer[src]])
                                      for src in kept))
                else:
                    wired.append(empty)
                    meta.append(empty_meta)
            else:
                wired.append(empty)
                meta.append(empty_meta)
            dst = record.dst
            if dst >= 0:
                last_writer[dst] = index
        self.wired_srcs = wired
        self.producers_meta = meta

    # -- branch-outcome replay -----------------------------------------

    def _replay_branches(self, branch: BranchPredictorConfig) -> None:
        """Replay the perceptron over the trace's branch stream.

        The event path calls ``predict_and_train`` at dispatch, in
        program order, with trace-supplied outcomes -- nothing about
        memory timing feeds back into it, so the full correct/incorrect
        sequence is a function of (trace, branch config) and replays
        bit-identically here.
        """
        predictor = HashedPerceptronPredictor(branch)
        predict_and_train = predictor.predict_and_train
        correct: List[bool] = [True] * self.length
        ips, takens = self.ips, self.takens
        for index in np.flatnonzero(self.op == _BRANCH).tolist():
            correct[index] = predict_and_train(ips[index], takens[index])
        self.branch_correct = correct
        self.branch_count = predictor.predictions
        self.branch_mispredicts = predictor.mispredictions


#: (trace identity, branch-config repr) -> (trace, TraceSoA).  The trace
#: reference pins the id() key for the entry's lifetime; a bounded LRU
#: matches the trace cache in ``repro.sim.system``.
_SOA_CACHE: "OrderedDict[Tuple[int, str], Tuple[Sequence, TraceSoA]]" = \
    OrderedDict()
_SOA_CACHE_ENTRIES = 128


def trace_soa(records: Sequence[TraceRecord],
              branch: BranchPredictorConfig) -> TraceSoA:
    """The (cached) struct-of-arrays precompute for ``records``."""
    key = (id(records), repr(branch))
    hit = _SOA_CACHE.get(key)
    if hit is not None and hit[0] is records:
        _SOA_CACHE.move_to_end(key)
        return hit[1]
    soa = TraceSoA(records, branch)
    _SOA_CACHE[key] = (records, soa)
    if len(_SOA_CACHE) > _SOA_CACHE_ENTRIES:
        _SOA_CACHE.popitem(last=False)
    return soa
