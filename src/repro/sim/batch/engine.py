"""Wake-scheduled batch-stepping engine.

The event engine's main loop scans every active core twice per
iteration (once to find the next interesting cycle, once to tick the
cores due there).  At 64 cores that scan dominates the loop: the engine
does O(cores) Python attribute reads per distinct cycle even when a
single core is runnable.

:class:`BatchEngine` keeps the *exact* event semantics -- same event
buckets, same drain order, same tick order, same monotonic ``now`` --
but replaces the scan with a lazy min-heap of ``(cycle, core_id)`` wake
entries, so each iteration costs O(log cores) for the cores that
actually move.  Wake entries are published by the cores themselves
(:class:`repro.sim.batch.core.BatchCore` pushes whenever an event pulls
its ``next_wake`` earlier); entries are never updated in place, only
superseded, and a popped entry that no longer matches the core's true
wake is either dropped or re-filed at the current value.

Equivalence argument (pinned by ``tests/test_backend_equivalence.py``):
cores only influence each other through scheduled events, which both
engines drain at the same cycles in the same FIFO order, and a core
ticks exactly when ``now`` first reaches its current ``next_wake`` --
the lazy heap can visit a *stale* earlier cycle, but then no event is
due, no core is due, and no simulation state is read or written, so the
iteration is invisible to results.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.analysis.invariants import SimulationInvariantError
from repro.sim.engine import Engine, Tickable

INFINITY = float("inf")


class BatchEngine(Engine):
    """Event engine with batched, wake-scheduled core stepping."""

    def run(self, cores: List[Tickable],
            max_cycles: int = 1_000_000_000) -> int:
        """Run until every core is done; returns the final cycle.

        Requires cores that publish wake updates through the
        ``_wake_push`` hook (``BatchCore``); plain event-backend cores
        would miss event-driven wake-ups under this loop.
        """
        heap = self._cycle_heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        # Far wakes (events resolving at arbitrary future cycles) live in
        # a heap; the dominant "runnable again next cycle" case uses a
        # flat run list for ``run_cycle``, skipping all heap traffic.
        wake_heap: List[Tuple[int, int]] = []
        run_list: List[int] = []
        run_cycle = -1
        active = 0
        for index, core in enumerate(cores):
            if core.done:
                continue
            active += 1

            def push(cycle: int, _index: int = index) -> None:
                heappush(wake_heap, (cycle, _index))

            core._wake_push = push  # type: ignore[attr-defined]
            wake = core.next_wake
            if wake != INFINITY:
                push(int(wake))
        while active:
            cycle = run_cycle if run_list else None
            if heap and (cycle is None or heap[0] < cycle):
                cycle = heap[0]
            if wake_heap and (cycle is None or wake_heap[0][0] < cycle):
                cycle = wake_heap[0][0]
            if cycle is None:
                raise SimulationInvariantError(
                    "deadlock: no pending events and no core can progress "
                    f"(cycle {self.now}, {active} cores active)")
            if cycle < self.now:
                cycle = self.now
            if cycle > max_cycles:
                raise SimulationInvariantError(
                    f"exceeded max_cycles={max_cycles}; likely livelock")
            self.now = cycle
            # Dynamic attribute lookup on purpose: the sanitizer installs
            # a checking shim as an instance attribute.
            if heap and heap[0] <= cycle:
                self._drain_events_at(cycle)
            if run_list and run_cycle <= cycle:
                due = run_list
                run_list = []
            else:
                due = []
            while wake_heap and wake_heap[0][0] <= cycle:
                core_index = heappop(wake_heap)[1]
                core = cores[core_index]
                if core.done:
                    continue
                wake = core.next_wake
                if wake <= cycle:
                    due.append(core_index)
                elif wake != INFINITY:
                    # Stale entry: the core's wake moved later after this
                    # entry was filed; re-file at the current value.
                    heappush(wake_heap, (int(wake), core_index))
            if due:
                # Tick in core-id order -- the order the event engine's
                # scan visits the same due set.  The list is near-sorted
                # already (it was filled in id order last iteration), so
                # the sort is a linear verify pass; duplicates are
                # harmless (the post-tick wake is always > cycle, so the
                # second visit falls to the guard).
                due.sort()
                next_cycle = cycle + 1
                for core_index in due:
                    core = cores[core_index]
                    if core.done or core.next_wake > cycle:
                        continue
                    core.tick(cycle)
                    if core.done:
                        active -= 1
                        continue
                    wake = core.next_wake
                    if wake == next_cycle:
                        if run_cycle != next_cycle:
                            run_cycle = next_cycle
                            run_list = []
                        run_list.append(core_index)
                    elif wake != INFINITY:
                        heappush(wake_heap, (int(wake), core_index))
        finish = self.now
        while heap:
            front = heap[0]
            if front > self.now:
                self.now = front
            self._drain_events_at(self.now)
        self.quiesce_cycle = self.now
        return finish
