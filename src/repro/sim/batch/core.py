"""Array-fed core model for the batch backend.

:class:`BatchCore` keeps the event core's microarchitectural behaviour --
same ROB, same retirement accounting, same hook protocol, same load path
through the hierarchy -- and replaces only where dispatch *reads* from:

* instruction fields come from :class:`repro.sim.batch.soa.TraceSoA`
  column lists instead of per-record attribute loads;
* the dependency-wiring probe (``reg_producer.get`` per source, per
  instruction) is replaced by the precomputed wired-source tuples, which
  by construction hit the producer map;
* branch outcomes come from the replayed perceptron stream instead of a
  live ``predict_and_train`` call per branch (the predictor's public
  counters are still advanced live, so mid-run reads stay exact).

It also publishes wake-time updates to :class:`BatchEngine` through the
``_wake_push`` hook: whenever an event callback pulls ``next_wake``
earlier, the new wake is pushed onto the engine's lazy heap.  Pushes are
suppressed inside ``tick`` -- the engine files the post-tick wake itself,
and ``_update_next_wake`` at tick end supersedes any mid-tick value.

Dispatch ordering is copied from ``Core._dispatch`` statement for
statement; every divergence is a read-source substitution proven
timing-independent in :mod:`repro.sim.batch.soa`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import CoreConfig
from repro.cpu.branch import HashedPerceptronPredictor
from repro.cpu.core_model import INFINITY, Core, RobEntry, ServiceLevel
from repro.sim.batch.soa import TraceSoA
from repro.trace.record import Op, TraceRecord

_LOAD = int(Op.LOAD)
_BRANCH = int(Op.BRANCH)
_LEVEL_UNKNOWN = ServiceLevel.UNKNOWN


def _no_wake_push(cycle: int) -> None:
    """Default ``_wake_push``: inert, so a BatchCore also runs under the
    plain event engine (whose scan needs no notifications)."""


class BatchCore(Core):
    """A :class:`Core` that dispatches from struct-of-arrays trace state."""

    def __init__(self, core_id: int, config: CoreConfig,
                 trace: Sequence[TraceRecord], soa: TraceSoA, memory, engine,
                 branch_predictor: Optional[HashedPerceptronPredictor] = None,
                 warmup_instructions: int = 0) -> None:
        super().__init__(core_id, config, trace, memory, engine,
                         branch_predictor=branch_predictor,
                         warmup_instructions=warmup_instructions)
        self.soa = soa
        self._ips = soa.ips
        self._ops = soa.ops
        self._addresses = soa.addresses
        self._dsts = soa.dsts
        self._takens = soa.takens
        self._wired_srcs = soa.wired_srcs
        self._producers_meta = soa.producers_meta
        self._branch_correct = soa.branch_correct
        self._in_tick = False
        self._wake_push = _no_wake_push

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Retire then dispatch; wake pushes are deferred to the engine."""
        if self.done:
            self.next_wake = INFINITY
            return
        self._in_tick = True
        self._retire(cycle)
        if not self.done:
            self._dispatch(cycle)
        self._update_next_wake(cycle)
        self._in_tick = False

    # ------------------------------------------------------------------
    # Dispatch (array-fed copy of Core._dispatch)
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        if self.fetch_stall_until > cycle:
            return
        dispatched = 0
        config = self.config
        issue_width = config.issue_width
        rob_entries = config.rob_entries
        trace_len = self._trace_len
        rob = self.rob
        reg_producer = self.reg_producer
        dispatch_hooks = self.dispatch_hooks
        branch_hooks = self.branch_hooks
        predictor = self.branch_predictor
        ips = self._ips
        ops = self._ops
        addresses = self._addresses
        dsts = self._dsts
        takens = self._takens
        wired_srcs = self._wired_srcs
        producers_meta = self._producers_meta
        branch_correct = self._branch_correct
        new_entry = RobEntry.__new__
        pc = self.pc
        seq = self.seq
        next_cycle = cycle + 1
        while (dispatched < issue_width
               and len(rob) < rob_entries
               and pc < trace_len):
            index = pc
            pc += 1
            dispatched += 1
            entry = new_entry(RobEntry)
            entry.seq = seq
            entry.ip = ips[index]
            op = ops[index]
            entry.op = op
            entry.address = addresses[index]
            dst = dsts[index]
            entry.dst = dst
            entry.taken = takens[index]
            entry.deps = 0
            entry.ready_at = cycle
            entry.done_at = None
            entry.dependents = None
            entry.became_head_at = cycle if not rob else None
            entry.service_level = _LEVEL_UNKNOWN
            entry.issued_at = None
            entry.dispatched_at = cycle
            entry.mlp_at_issue = 0
            entry.producers = producers_meta[index]
            entry.is_mispredict = False
            entry.consumer_count = 0
            entry.history_snapshot = None
            seq += 1
            rob.append(entry)
            srcs = wired_srcs[index]
            if srcs:
                # Every precomputed source has a producer in the map
                # (trace order == dispatch order, entries never evicted).
                for src in srcs:
                    producer = reg_producer[src]
                    producer.consumer_count += 1
                    if producer.done_at is None:
                        waiting = producer.dependents
                        if waiting is None:
                            producer.dependents = [entry]
                        else:
                            waiting.append(entry)
                        entry.deps += 1
                    elif producer.done_at > entry.ready_at:
                        entry.ready_at = producer.done_at
            if op == _LOAD:
                for hook in dispatch_hooks:
                    hook(self, entry, cycle)
            if dst >= 0:
                reg_producer[dst] = entry
            stop_fetch = False
            if op == _BRANCH:
                predictor.predictions += 1
                correct = branch_correct[index]
                if not correct:
                    predictor.mispredictions += 1
                    self.stats.mispredicts += 1
                    entry.is_mispredict = True
                    stop_fetch = True
                for hook in branch_hooks:
                    hook(self, entry.ip, entry.taken, not correct, cycle)
            if entry.deps == 0:
                ready_at = entry.ready_at
                self._begin_execution(
                    entry, next_cycle if next_cycle > ready_at else ready_at)
            if stop_fetch:
                if entry.done_at is not None:
                    self.fetch_stall_until = (entry.done_at
                                              + config.mispredict_penalty)
                else:
                    self.fetch_stall_until = 1 << 62
                break
        self.pc = pc
        self.seq = seq

    # ------------------------------------------------------------------
    # Completion (wake-publishing copy of Core._set_done)
    # ------------------------------------------------------------------

    def _set_done(self, entry: RobEntry, cycle: int) -> None:
        entry.done_at = cycle
        dependents = entry.dependents
        if dependents is not None:
            entry.dependents = None
            for dependent in dependents:
                dependent.ready_at = max(dependent.ready_at, cycle)
                dependent.deps -= 1
                if dependent.deps == 0:
                    self._begin_execution(dependent, dependent.ready_at)
        wake = self.next_wake
        if entry.is_mispredict:
            self.fetch_stall_until = cycle + self.config.mispredict_penalty
            if self.fetch_stall_until < wake:
                wake = self.fetch_stall_until
        if cycle < wake and self.rob and self.rob[0] is entry:
            wake = cycle
        if wake < self.next_wake:
            self.next_wake = wake
            if not self._in_tick:
                self._wake_push(int(wake))
