"""Batch-stepped struct-of-arrays simulation backend.

Selected with ``SystemConfig.backend = "batch"`` (or ``REPRO_BACKEND=batch``),
this package replaces the hottest per-event Python dispatch of the pure
event backend while reusing every hierarchy component (caches, MSHRs,
filter chain, NoC, DRAM) for the slow/rare paths, so results are
**bit-identical** to the event engine on ``SimulationResult.to_dict()``
(pinned by ``tests/test_backend_equivalence.py`` over the full golden
matrix).

Three pieces:

* :mod:`repro.sim.batch.soa`    -- per-trace struct-of-arrays precompute
  (numpy columns, dependency wiring, branch-outcome replay), LRU-cached
  so a sweep pays it once per workload, not once per scheme;
* :mod:`repro.sim.batch.engine` -- :class:`BatchEngine`, a wake-scheduled
  main loop that batches core steps per cycle bucket instead of scanning
  every core every iteration (O(events), not O(cores x iterations));
* :mod:`repro.sim.batch.core`   -- :class:`BatchCore`, the array-fed core
  model that dispatches from the SoA columns and publishes wake updates
  to the engine.
"""

from repro.sim.batch.core import BatchCore
from repro.sim.batch.engine import BatchEngine
from repro.sim.batch.soa import TraceSoA, trace_soa

__all__ = ["BatchCore", "BatchEngine", "TraceSoA", "trace_soa"]
