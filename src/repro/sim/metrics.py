"""Derived metrics and scheme comparison helpers.

Thin, well-named arithmetic over :class:`SimulationResult` so analysis
scripts and examples do not re-derive MPKI/IPC/speedup by hand.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.sim.stats import SimulationResult, weighted_speedup


def aggregate_ipc(result: SimulationResult) -> float:
    """Sum of per-core IPCs (system throughput proxy)."""
    return sum(result.ipc_per_core)


def harmonic_mean_ipc(result: SimulationResult) -> float:
    """Harmonic-mean IPC (fairness-sensitive average)."""
    ipcs = [ipc for ipc in result.ipc_per_core if ipc > 0]
    if not ipcs:
        return 0.0
    return len(ipcs) / sum(1.0 / ipc for ipc in ipcs)


def mpki(result: SimulationResult, level: str = "L1D") -> float:
    """Demand misses per kilo-instruction at ``level``."""
    instructions = result.total_instructions
    if not instructions:
        return 0.0
    try:
        misses = result.levels[level].demand_misses
    except KeyError:
        raise ValueError(f"unknown cache level {level!r}; "
                         f"choose from {sorted(result.levels)}") from None
    return 1000.0 * misses / instructions


def prefetch_traffic_share(result: SimulationResult) -> float:
    """Fraction of DRAM reads that were prefetches."""
    if not result.dram.reads:
        return 0.0
    return result.dram.prefetch_reads / result.dram.reads


def summarize(result: SimulationResult) -> Dict[str, float]:
    """One flat dictionary of the headline quantities."""
    return {
        "aggregate_ipc": aggregate_ipc(result),
        "harmonic_mean_ipc": harmonic_mean_ipc(result),
        "l1_mpki": mpki(result, "L1D"),
        "llc_mpki": mpki(result, "LLC"),
        "l1_miss_latency": result.average_l1_miss_latency(),
        "dram_utilization": result.dram.utilization,
        "prefetch_issued": float(result.prefetch.issued),
        "prefetch_accuracy": result.prefetch.accuracy,
        "prefetch_lateness": result.prefetch.lateness,
        "prefetch_traffic_share": prefetch_traffic_share(result),
        "branch_accuracy": result.branch_accuracy,
    }


def compare_schemes(results: Mapping[str, SimulationResult],
                    baseline: str = "none") -> List[Dict[str, float]]:
    """Rows of headline metrics + weighted speedup against ``baseline``.

    Returns one row per scheme, ordered as given, each a ``summarize``
    dictionary extended with ``scheme`` and ``weighted_speedup``.
    """
    if baseline not in results:
        raise ValueError(f"baseline scheme {baseline!r} not in results")
    reference = results[baseline]
    rows = []
    for scheme, result in results.items():
        row: Dict[str, object] = {"scheme": scheme}
        row.update(summarize(result))
        row["weighted_speedup"] = weighted_speedup(result, reference)
        rows.append(row)
    return rows
