"""Simulation glue: the event engine, the system builder, stats, metrics."""

from repro.sim.engine import Engine
from repro.sim.stats import SimulationResult, weighted_speedup
from repro.sim.system import MulticoreSystem, run_system

__all__ = ["Engine", "MulticoreSystem", "run_system", "SimulationResult",
           "weighted_speedup"]
