"""Result containers and the paper's headline metric (weighted speedup).

Weighted speedup (section 5, citing Snavely & Tullsen): the sum over cores
of IPC under the evaluated scheme divided by IPC under the reference
scheme, here always no-prefetching with the same DRAM channel count --
"system throughput", in the paper's words.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CoreResult:
    """Retirement-side outcome of one core."""

    core_id: int
    workload: str
    instructions: int
    cycles: int
    loads: int
    stores: int
    branches: int
    mispredicts: int
    head_stall_cycles: int
    head_stall_cycles_miss: int
    critical_load_instances: int
    load_instances_beyond_l1: int

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles


@dataclass
class LevelStats:
    """Aggregate demand/prefetch behaviour of one cache level."""

    name: str
    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_fills: int = 0
    useful_prefetches: int = 0
    useless_evictions: int = 0
    #: Sum/count of demand latencies for loads serviced *beyond* this level.
    miss_latency_sum: int = 0
    miss_latency_count: int = 0

    @property
    def average_miss_latency(self) -> float:
        if not self.miss_latency_count:
            return 0.0
        return self.miss_latency_sum / self.miss_latency_count

    @property
    def miss_coverage(self) -> float:
        """Fraction of would-be misses covered by prefetching."""
        covered = self.useful_prefetches
        total = covered + self.demand_misses
        if not total:
            return 0.0
        return covered / total


@dataclass
class PrefetchStats:
    """System-wide prefetch accounting."""

    candidates: int = 0
    issued: int = 0
    dropped_filter: int = 0
    dropped_duplicate: int = 0
    dropped_mshr: int = 0
    useful: int = 0
    late: int = 0

    @property
    def accuracy(self) -> float:
        if not self.issued:
            return 0.0
        return min(1.0, self.useful / self.issued)

    @property
    def lateness(self) -> float:
        if not self.useful:
            return 0.0
        return min(1.0, self.late / self.useful)

    @property
    def traffic_reduction(self) -> float:
        """1 - issued/candidates: the Fig. 16 quantity."""
        if not self.candidates:
            return 0.0
        return 1.0 - self.issued / self.candidates

    def consistency_errors(self) -> List[str]:
        """Structural violations in the counters (sanitizer final check).

        ``useful`` may legitimately exceed ``issued`` (late-prefetch
        merges count as useful without a new issue), so only the
        relations that always hold are checked.
        """
        errors = []
        for name in ("candidates", "issued", "dropped_filter",
                     "dropped_duplicate", "dropped_mshr", "useful",
                     "late"):
            if getattr(self, name) < 0:
                errors.append(f"{name} is negative "
                              f"({getattr(self, name)})")
        dropped = (self.dropped_filter + self.dropped_duplicate
                   + self.dropped_mshr)
        if dropped > self.candidates:
            # Every drop comes out of the candidate pool exactly once.
            errors.append(
                f"drops ({dropped}) exceed candidates "
                f"({self.candidates})")
        if self.late > self.useful:
            errors.append(f"late ({self.late}) exceeds useful "
                          f"({self.useful})")
        return errors


@dataclass
class ClipResult:
    """Aggregated CLIP statistics across cores."""

    prediction_accuracy: float = 0.0
    prediction_coverage: float = 0.0
    prefetches_seen: int = 0
    prefetches_allowed: int = 0
    static_critical_ips: int = 0
    dynamic_critical_ips: int = 0
    windows: int = 0
    phase_changes: int = 0
    #: Structure activity summed across cores (energy-model inputs).
    filter_accesses: int = 0
    predictor_accesses: int = 0
    utility_cam_accesses: int = 0


@dataclass
class CriticalityResult:
    """Baseline criticality predictor measurement (Fig. 4)."""

    name: str = "none"
    accuracy: float = 0.0
    coverage: float = 0.0


@dataclass
class DramResult:
    reads: int = 0
    writes: int = 0
    prefetch_reads: int = 0
    row_hits: int = 0
    row_misses: int = 0
    average_read_latency: float = 0.0
    utilization: float = 0.0


@dataclass
class NocResult:
    packets: int = 0
    flits: int = 0
    average_latency: float = 0.0
    #: Total XY hops and exact flit-hops (flits x route length per
    #: packet) -- the energy model's per-link-traversal activity count.
    total_hops: int = 0
    flit_hops: int = 0


@dataclass
class SimulationResult:
    """Everything one multi-core simulation produced."""

    config_label: str
    cores: List[CoreResult] = field(default_factory=list)
    levels: Dict[str, LevelStats] = field(default_factory=dict)
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
    clip: Optional[ClipResult] = None
    criticality: Optional[CriticalityResult] = None
    dram: DramResult = field(default_factory=DramResult)
    noc: NocResult = field(default_factory=NocResult)
    total_cycles: int = 0
    branch_accuracy: float = 1.0
    #: Per-component counter snapshot (``repro.sim.counters``):
    #: ``{group: {counter: value}}``, one group per hierarchy component
    #: (``core{N}.l1d``, ``core{N}.l2``, ``core{N}.chain``,
    #: ``llc.slice{N}``, ``noc``, ``dram.ch{N}``).  Identical across
    #: simulation backends.
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Counter-driven dynamic energy (``repro.energy``): total, by
    #: component, and the energy-delay product at the configured core
    #: frequency.  Zero/empty when the result predates the counter layer.
    energy_mj: float = 0.0
    edp_mj_s: float = 0.0
    energy_breakdown_mj: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc_per_core(self) -> List[float]:
        return [core.ipc for core in self.cores]

    @property
    def total_instructions(self) -> int:
        return sum(core.instructions for core in self.cores)

    def average_l1_miss_latency(self) -> float:
        level = self.levels.get("L1D")
        return level.average_miss_latency if level else 0.0

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-data form of the result (JSON-safe, stable field order).

        The inverse of :meth:`from_dict`; the round trip is exact, which
        is what lets the sweep executor ship results across process
        boundaries and persist them in the on-disk cache
        (``repro.experiments.sweep``) without loss.
        """
        return {
            "config_label": self.config_label,
            "cores": [dataclasses.asdict(core) for core in self.cores],
            "levels": {name: dataclasses.asdict(level)
                       for name, level in self.levels.items()},
            "prefetch": dataclasses.asdict(self.prefetch),
            "clip": (dataclasses.asdict(self.clip)
                     if self.clip is not None else None),
            "criticality": (dataclasses.asdict(self.criticality)
                            if self.criticality is not None else None),
            "dram": dataclasses.asdict(self.dram),
            "noc": dataclasses.asdict(self.noc),
            "total_cycles": self.total_cycles,
            "branch_accuracy": self.branch_accuracy,
            "counters": {group: dict(values)
                         for group, values in self.counters.items()},
            "energy_mj": self.energy_mj,
            "edp_mj_s": self.edp_mj_s,
            "energy_breakdown_mj": dict(self.energy_breakdown_mj),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild a :class:`SimulationResult` written by :meth:`to_dict`."""
        return cls(
            config_label=data["config_label"],
            cores=[CoreResult(**core) for core in data["cores"]],
            levels={name: LevelStats(**level)
                    for name, level in data["levels"].items()},
            prefetch=PrefetchStats(**data["prefetch"]),
            clip=(ClipResult(**data["clip"])
                  if data.get("clip") is not None else None),
            criticality=(CriticalityResult(**data["criticality"])
                         if data.get("criticality") is not None else None),
            dram=DramResult(**data["dram"]),
            noc=NocResult(**data["noc"]),
            total_cycles=data["total_cycles"],
            branch_accuracy=data["branch_accuracy"],
            counters={group: dict(values)
                      for group, values in
                      data.get("counters", {}).items()},
            energy_mj=data.get("energy_mj", 0.0),
            edp_mj_s=data.get("edp_mj_s", 0.0),
            energy_breakdown_mj=dict(data.get("energy_breakdown_mj", {})),
        )


def weighted_speedup(result: SimulationResult,
                     baseline: SimulationResult) -> float:
    """Weighted speedup of ``result`` over ``baseline`` (same channels).

    Normalised so a system identical to the baseline scores 1.0.
    """
    if len(result.cores) != len(baseline.cores):
        raise ValueError("core counts differ between result and baseline")
    if not result.cores:
        raise ValueError("empty results")
    total = 0.0
    for mine, theirs in zip(result.cores, baseline.cores):
        if theirs.ipc <= 0:
            raise ValueError(f"baseline core {theirs.core_id} has zero IPC")
        total += mine.ipc / theirs.ipc
    return total / len(result.cores)
