"""The full many-core system: cores plus the component-based memory
hierarchy (:mod:`repro.sim.hierarchy`), built per
:class:`repro.config.SystemConfig`.

Memory request flow (demand load):

    core -> L1Node (hit: +l1_lat) -> L1 MSHR port -> L2Node (+l2_lat)
         -> L2 MSHR port -> NocLink request -> LlcSlice (+llc_lat)
         -> LLC MSHR port -> DramPort -> fill LLC -> NocLink data
         -> fill L2 -> fill L1 -> core callback(level)

The request-flow logic lives in the hierarchy components; this module
only owns configuration-driven wiring (cores attached to the hierarchy,
CLIP/criticality predictors attached to cores) and result collection.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.analysis.invariants import check
from repro.analysis.sanitizer import install_sanitizer, sanitize_enabled
from repro.config import SystemConfig, resolve_backend
from repro.cpu.branch import HashedPerceptronPredictor
from repro.cpu.core_model import Core, ServiceLevel
from repro.dram.controller import DramSystem
from repro.noc.mesh import MeshNoc
from repro.sim.batch import BatchCore, BatchEngine, trace_soa
from repro.sim.engine import Engine
from repro.sim.hierarchy import CoreNode, Hierarchy
from repro.sim.tracing import RequestTrace
from repro.sim.stats import (ClipResult, CoreResult, CriticalityResult,
                             DramResult, LevelStats, NocResult,
                             PrefetchStats, SimulationResult)
from repro.trace.record import TraceRecord
from repro.trace.synthetic import SyntheticWorkload
from repro.trace.workloads import get_workload

#: Generated synthetic traces, shared across runs.  Generation is
#: deterministic in (spec content, core_id, length) and the simulator
#: never mutates records, so a sweep running the same mix under many
#: schemes pays trace generation once instead of once per scheme.  The
#: spec ``repr`` keys by content, not identity: ad-hoc specs reusing a
#: registered name cannot collide.  A small LRU bounds memory.
_TRACE_CACHE: "OrderedDict[Tuple, List[TraceRecord]]" = OrderedDict()
_TRACE_CACHE_ENTRIES = 128


def _workload_trace(name: str, length: int,
                    core_id: int) -> List[TraceRecord]:
    spec = get_workload(name)
    key = (name, repr(spec), core_id, length)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = SyntheticWorkload(spec).generate(length, core_id=core_id)
        _TRACE_CACHE[key] = trace
        if len(_TRACE_CACHE) > _TRACE_CACHE_ENTRIES:
            _TRACE_CACHE.popitem(last=False)
    else:
        _TRACE_CACHE.move_to_end(key)
    return trace


class MulticoreSystem:
    """Builds and runs one simulation."""

    def __init__(self, config: SystemConfig, workloads: List[str],
                 label: str = "") -> None:
        config.validate()
        if len(workloads) != config.num_cores:
            raise ValueError(
                f"{len(workloads)} workloads for {config.num_cores} cores")
        self.config = config
        self.workload_names = list(workloads)
        self.label = label or self._default_label()
        #: Resolved at build time so REPRO_BACKEND is read exactly once
        #: per simulation, not per component.
        self.backend = resolve_backend(config.backend)
        self.engine = BatchEngine() if self.backend == "batch" else Engine()
        self.noc = MeshNoc(config.mesh_dim, config.noc)
        self.dram = DramSystem(config.dram, self.engine,
                               config.l1d.line_size)
        self.prefetch_stats = PrefetchStats()
        self.request_trace: Optional[RequestTrace] = (
            RequestTrace(config.capture_request_trace)
            if config.capture_request_trace else None)
        self.hierarchy = Hierarchy(config, self.engine, self.noc,
                                   self.dram, self.prefetch_stats,
                                   self.request_trace)
        self.cores: List[Core] = []
        self._build_cores()
        # Opt-in runtime invariant sanitizer: the guard is evaluated once
        # here, at wiring time -- a disabled run installs no wrappers and
        # the hot paths stay untouched (repro.analysis.sanitizer).
        self.sanitizer = (install_sanitizer(self)
                          if sanitize_enabled(config) else None)

    # -- flat views over the hierarchy ---------------------------------

    @property
    def nodes(self) -> List[CoreNode]:
        return self.hierarchy.nodes

    @property
    def num_slices(self) -> int:
        return self.hierarchy.num_slices

    @property
    def llc(self):
        return [s.cache for s in self.hierarchy.slices]

    @property
    def llc_mshr(self):
        return [s.port.mshr for s in self.hierarchy.slices]

    def _default_label(self) -> str:
        parts = [self.config.l1_prefetcher.name]
        if self.config.l2_prefetcher.name != "none":
            parts.append(self.config.l2_prefetcher.name)
        if self.config.clip.enabled:
            parts.append("clip")
        if self.config.criticality.name != "none":
            parts.append(self.config.criticality.name)
        if self.config.throttle.name != "none":
            parts.append(self.config.throttle.name)
        if self.config.related.hermes:
            parts.append("hermes")
        if self.config.related.dspatch:
            parts.append("dspatch")
        if self.config.learned.policy != "none":
            if parts[0] == "none":
                parts[0] = self.config.learned.policy
            else:
                parts.append(self.config.learned.policy)
        return "+".join(parts)

    def _build_cores(self) -> None:
        config = self.config
        length = config.warmup_instructions + config.sim_instructions
        batch = self.backend == "batch"
        for core_id, name in enumerate(self.workload_names):
            trace = _workload_trace(name, length, core_id)
            core_config = config.core_for(core_id)
            if batch:
                core: Core = BatchCore(
                    core_id, core_config, trace,
                    trace_soa(trace, config.branch),
                    memory=self.hierarchy, engine=self.engine,
                    branch_predictor=HashedPerceptronPredictor(
                        config.branch),
                    warmup_instructions=config.warmup_instructions)
            else:
                core = Core(core_id, core_config, trace,
                            memory=self.hierarchy, engine=self.engine,
                            branch_predictor=HashedPerceptronPredictor(
                                config.branch),
                            warmup_instructions=config.warmup_instructions)
            node = self.hierarchy.nodes[core_id]
            if node.clip is not None:
                node.clip.attach(core)
            if node.crit_gate is not None:
                node.crit_gate.attach(core)
            self.cores.append(core)

    # ------------------------------------------------------------------
    # Running and result collection
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000) -> SimulationResult:
        final_cycle = self.engine.run(self.cores, max_cycles=max_cycles)
        if self.sanitizer is not None:
            self.sanitizer.final_check(self)
        return self._collect(final_cycle)

    def _collect(self, final_cycle: int) -> SimulationResult:
        result = SimulationResult(config_label=self.label)
        result.total_cycles = final_cycle
        for core, name in zip(self.cores, self.workload_names):
            s = core.stats
            result.cores.append(CoreResult(
                core_id=core.core_id, workload=name,
                instructions=s.instructions, cycles=s.finish_cycle,
                loads=s.loads, stores=s.stores, branches=s.branches,
                mispredicts=s.mispredicts,
                head_stall_cycles=s.head_stall_cycles,
                head_stall_cycles_miss=s.head_stall_cycles_miss,
                critical_load_instances=s.critical_load_instances,
                load_instances_beyond_l1=s.load_instances_beyond_l1))
        predictions = sum(c.branch_predictor.predictions for c in self.cores)
        mispredicts = sum(c.branch_predictor.mispredictions
                          for c in self.cores)
        result.branch_accuracy = (1.0 - mispredicts / predictions
                                  if predictions else 1.0)
        result.levels = self._collect_levels()
        result.prefetch = self.prefetch_stats
        result.dram = self._collect_dram(final_cycle)
        result.noc = NocResult(
            packets=self.noc.stats.packets, flits=self.noc.stats.flits,
            average_latency=self.noc.stats.average_latency,
            total_hops=self.noc.stats.total_hops,
            flit_hops=self.noc.stats.flit_hops)
        if self.config.clip.enabled:
            result.clip = self._collect_clip()
        if self.config.criticality.name != "none":
            result.criticality = self._collect_criticality()
        result.counters = self.hierarchy.counters.snapshot()
        self._attach_energy(result)
        return result

    def _attach_energy(self, result: SimulationResult) -> None:
        """Counter-driven energy and EDP at the configured frequency."""
        # Deferred import: repro.energy.model imports repro.sim.stats,
        # which resolves through repro.sim's package __init__ and lands
        # back in this module while it is still initialising.
        from repro.energy.model import dynamic_energy
        breakdown = dynamic_energy(result)
        result.energy_breakdown_mj = breakdown.components_mj
        result.energy_mj = breakdown.total_mj
        delay_s = result.total_cycles / (self.config.core.frequency_ghz
                                         * 1e9)
        result.edp_mj_s = result.energy_mj * delay_s

    def _collect_levels(self) -> Dict[str, LevelStats]:
        levels = {
            "L1D": LevelStats("L1D"),
            "L2": LevelStats("L2"),
            "LLC": LevelStats("LLC"),
        }
        for node in self.nodes:
            for name, cache in (("L1D", node.l1d), ("L2", node.l2_cache)):
                level = levels[name]
                level.demand_accesses += cache.stats.demand_accesses
                level.demand_hits += cache.stats.demand_hits
                level.demand_misses += cache.stats.demand_misses
                level.prefetch_fills += cache.stats.prefetch_fills
                level.useful_prefetches += cache.stats.useful_prefetches
                level.useless_evictions += cache.stats.useless_evictions
            for idx, lvl_name in ((ServiceLevel.L1, "L1D"),
                                  (ServiceLevel.L2, "L2"),
                                  (ServiceLevel.LLC, "LLC")):
                levels[lvl_name].miss_latency_sum += node.lat_sum[idx]
                levels[lvl_name].miss_latency_count += node.lat_count[idx]
        llc_level = levels["LLC"]
        for slice_cache in self.llc:
            llc_level.demand_accesses += slice_cache.stats.demand_accesses
            llc_level.demand_hits += slice_cache.stats.demand_hits
            llc_level.demand_misses += slice_cache.stats.demand_misses
            llc_level.prefetch_fills += slice_cache.stats.prefetch_fills
            llc_level.useful_prefetches += \
                slice_cache.stats.useful_prefetches
            llc_level.useless_evictions += \
                slice_cache.stats.useless_evictions
        return levels

    def _collect_dram(self, final_cycle: int) -> DramResult:
        dram = DramResult()
        for channel in self.dram.channels:
            dram.reads += channel.stats.reads
            dram.writes += channel.stats.writes
            dram.prefetch_reads += channel.stats.prefetch_reads
            dram.row_hits += channel.stats.row_hits
            dram.row_misses += channel.stats.row_misses
        dram.average_read_latency = self.dram.average_read_latency()
        dram.utilization = self.dram.utilization(max(1, final_cycle))
        return dram

    def _collect_clip(self) -> ClipResult:
        clip_result = ClipResult()
        predicted = correct = actual = covered = 0
        for node in self.nodes:
            clip = node.clip
            check(clip is not None, "CLIP enabled but core %d has no "
                  "Clip instance", node.core_id)
            predicted += clip.stats.predicted_critical
            correct += clip.stats.predicted_critical_correct
            actual += clip.stats.actual_critical
            covered += clip.stats.covered_critical
            clip_result.prefetches_seen += clip.stats.prefetches_seen
            clip_result.prefetches_allowed += clip.stats.prefetches_allowed
            static, dynamic = clip.critical_ip_census()
            clip_result.static_critical_ips += static
            clip_result.dynamic_critical_ips += dynamic
            clip_result.windows += clip.stats.windows
            clip_result.phase_changes += clip.stats.phase_changes
            clip_result.filter_accesses += clip.stats.filter_accesses
            clip_result.predictor_accesses += clip.stats.predictor_accesses
            clip_result.utility_cam_accesses += \
                clip.stats.utility_cam_accesses
        clip_result.prediction_accuracy = (correct / predicted
                                           if predicted else 0.0)
        clip_result.prediction_coverage = (covered / actual
                                           if actual else 0.0)
        return clip_result

    def _collect_criticality(self) -> CriticalityResult:
        predicted = correct = actual = covered = 0
        name = self.config.criticality.name
        for node in self.nodes:
            gate = node.crit_gate
            check(gate is not None, "criticality predictor %r enabled "
                  "but core %d has no gate", name, node.core_id)
            measurement = gate.measurement
            predicted += measurement.predicted
            correct += measurement.predicted_correct
            actual += measurement.actual
            covered += measurement.covered
        return CriticalityResult(
            name=name,
            accuracy=correct / predicted if predicted else 0.0,
            coverage=covered / actual if actual else 0.0)


def run_system(config: SystemConfig, workloads: List[str],
               label: str = "") -> SimulationResult:
    """Convenience wrapper: build, run, collect."""
    return MulticoreSystem(config, workloads, label=label).run()
