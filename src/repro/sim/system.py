"""The full many-core system: cores, hierarchy, NoC, DRAM, and every
optional mechanism (prefetchers, CLIP, baseline criticality gates,
throttlers, Hermes, DSPatch) wired per :class:`repro.config.SystemConfig`.

Memory request flow (demand load):

    core -> L1D lookup (hit: +l1_lat) -> L1 MSHR -> L2 lookup (+l2_lat)
         -> L2 MSHR -> NoC request packet -> LLC slice lookup (+llc_lat)
         -> LLC MSHR -> DRAM channel -> fill LLC -> NoC data packet
         -> fill L2 -> fill L1 -> core callback(level)

Writebacks flow downward on evictions (L1 dirty -> L2 -> LLC -> DRAM write)
and consume DRAM write bandwidth; prefetch candidates enter at their fill
level after passing throttle/DSPatch/CLIP filters.  Addresses are
privatised per core (SPEC-rate style) before touching any shared structure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.analysis.invariants import check
from repro.analysis.sanitizer import install_sanitizer, sanitize_enabled
from repro.cache.cache import Cache
from repro.cache.mshr import MshrFile
from repro.config import SystemConfig
from repro.core.clip import Clip
from repro.cpu.branch import HashedPerceptronPredictor
from repro.cpu.core_model import Core, ServiceLevel
from repro.criticality import make_criticality_predictor
from repro.dram.controller import DramSystem
from repro.noc.mesh import MeshNoc
from repro.prefetch.base import PrefetchRequest, make_prefetcher
from repro.related.dspatch import DspatchModulator
from repro.mmu.tlb import Mmu
from repro.related.hermes import HermesPredictor
from repro.sim.engine import Engine
from repro.sim.tracing import RequestRecord, RequestTrace
from repro.sim.stats import (ClipResult, CoreResult, CriticalityResult,
                             DramResult, LevelStats, NocResult,
                             PrefetchStats, SimulationResult)
from repro.throttle.base import ThrottleSnapshot
from repro.throttle import make_throttler
from repro.trace.synthetic import SyntheticWorkload
from repro.trace.workloads import get_workload

_LINE_SHIFT = 6
#: High bits carving a private physical address space per core.
_CORE_SPACE_SHIFT = 40
#: L1/L2 MSHR slots a prefetch may never take (demand reservation).
_L1_DEMAND_RESERVE = 2
_L2_DEMAND_RESERVE = 4
#: Demand L1D accesses per throttling epoch.
_THROTTLE_EPOCH = 1024


class _Node:
    """Per-core private memory-side state."""

    __slots__ = ("core_id", "l1d", "l2", "l1_mshr", "l2_mshr", "l1_pf",
                 "l2_pf", "clip", "crit_gate", "throttler", "dspatch",
                 "mmu", "hermes", "hermes_pending", "pf_issued",
                 "pf_dropped_filter",
                 "pf_dropped_duplicate", "pf_dropped_mshr", "pf_useful",
                 "lat_sum", "lat_count", "epoch_accesses", "epoch_base",
                 "demand_l1_misses")

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self.l1d: Cache = None  # type: ignore[assignment]
        self.l2: Cache = None  # type: ignore[assignment]
        self.l1_mshr: MshrFile = None  # type: ignore[assignment]
        self.l2_mshr: MshrFile = None  # type: ignore[assignment]
        self.l1_pf = None
        self.l2_pf = None
        self.clip: Optional[Clip] = None
        self.crit_gate = None
        self.throttler = None
        self.dspatch: Optional[DspatchModulator] = None
        self.mmu: Optional[Mmu] = None
        self.hermes: Optional[HermesPredictor] = None
        self.hermes_pending: Dict[int, List[Callable]] = {}
        self.pf_issued = 0
        self.pf_dropped_filter = 0
        self.pf_dropped_duplicate = 0
        self.pf_dropped_mshr = 0
        self.pf_useful = 0
        # Demand-latency accounting indexed by ServiceLevel value.
        self.lat_sum = [0, 0, 0, 0, 0]
        self.lat_count = [0, 0, 0, 0, 0]
        self.epoch_accesses = 0
        #: Snapshot of (issued, useful, late, pollution) at last epoch end.
        self.epoch_base = (0, 0, 0, 0)
        self.demand_l1_misses = 0


class MulticoreSystem:
    """Builds and runs one simulation."""

    def __init__(self, config: SystemConfig, workloads: List[str],
                 label: str = "") -> None:
        config.validate()
        if len(workloads) != config.num_cores:
            raise ValueError(
                f"{len(workloads)} workloads for {config.num_cores} cores")
        self.config = config
        self.workload_names = list(workloads)
        self.label = label or self._default_label()
        self.engine = Engine()
        self.noc = MeshNoc(config.mesh_dim, config.noc)
        self.dram = DramSystem(config.dram, self.engine,
                               config.l1d.line_size)
        self.num_slices = config.num_cores
        self.llc = [Cache(config.llc_slice) for _ in range(self.num_slices)]
        self.llc_mshr = [MshrFile(config.llc_slice.mshr_entries)
                         for _ in range(self.num_slices)]
        self.l1_lat = config.l1d.latency
        self.l2_lat = config.l2.latency
        self.llc_lat = config.llc_slice.latency
        self.prefetch_stats = PrefetchStats()
        self.request_trace: Optional[RequestTrace] = (
            RequestTrace(config.capture_request_trace)
            if config.capture_request_trace else None)
        self.nodes: List[_Node] = []
        self.cores: List[Core] = []
        self._build_nodes()
        self._build_cores()
        # Opt-in runtime invariant sanitizer: the guard is evaluated once
        # here, at wiring time -- a disabled run installs no wrappers and
        # the hot paths stay untouched (repro.analysis.sanitizer).
        self.sanitizer = (install_sanitizer(self)
                          if sanitize_enabled(config) else None)

    def _default_label(self) -> str:
        parts = [self.config.l1_prefetcher.name]
        if self.config.l2_prefetcher.name != "none":
            parts.append(self.config.l2_prefetcher.name)
        if self.config.clip.enabled:
            parts.append("clip")
        if self.config.criticality.name != "none":
            parts.append(self.config.criticality.name)
        if self.config.throttle.name != "none":
            parts.append(self.config.throttle.name)
        if self.config.related.hermes:
            parts.append("hermes")
        if self.config.related.dspatch:
            parts.append("dspatch")
        return "+".join(parts)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_nodes(self) -> None:
        config = self.config
        for core_id in range(config.num_cores):
            node = _Node(core_id)
            node.l1d = Cache(config.l1d)
            node.l2 = Cache(config.l2)
            node.l1_mshr = MshrFile(config.l1d.mshr_entries)
            node.l2_mshr = MshrFile(config.l2.mshr_entries)
            if config.l1_prefetcher.name != "none":
                node.l1_pf = make_prefetcher(config.l1_prefetcher.name,
                                             config.l1_prefetcher.degree)
            if config.l2_prefetcher.name != "none":
                node.l2_pf = make_prefetcher(config.l2_prefetcher.name,
                                             config.l2_prefetcher.degree)
            if config.clip.enabled:
                node.clip = Clip(config.clip)
                node.clip.bandwidth_probe = (
                    lambda: self.dram.utilization(max(1, self.engine.now)))
            if config.criticality.name != "none":
                node.crit_gate = make_criticality_predictor(
                    config.criticality.name)
            if config.throttle.name != "none":
                node.throttler = make_throttler(config.throttle.name)
            if config.related.dspatch:
                node.dspatch = DspatchModulator()
            if config.related.hermes:
                node.hermes = HermesPredictor()
            if config.tlb.enabled:
                node.mmu = Mmu(
                    dtlb_entries=config.tlb.dtlb_entries,
                    dtlb_ways=config.tlb.dtlb_ways,
                    stlb_entries=config.tlb.stlb_entries,
                    stlb_ways=config.tlb.stlb_ways,
                    stlb_latency=config.tlb.stlb_latency,
                    page_walk_latency=config.tlb.page_walk_latency,
                    page_shift=config.tlb.page_shift)
            self._wire_feedback(node)
            self.nodes.append(node)

    def _wire_feedback(self, node: _Node) -> None:
        def l1_use(line: int, trigger_ip: int) -> None:
            node.pf_useful += 1
            self.prefetch_stats.useful += 1

        def l2_use(line: int, trigger_ip: int) -> None:
            node.pf_useful += 1
            self.prefetch_stats.useful += 1
            if node.l2_pf is not None:
                node.l2_pf.on_prefetch_feedback(line << _LINE_SHIFT, True)

        def l2_useless(line: int) -> None:
            if node.l2_pf is not None:
                node.l2_pf.on_prefetch_feedback(line << _LINE_SHIFT, False)

        node.l1d.prefetch_use_listener = l1_use
        node.l2.prefetch_use_listener = l2_use
        node.l2.useless_eviction_listener = l2_useless

    def _build_cores(self) -> None:
        config = self.config
        length = config.warmup_instructions + config.sim_instructions
        for core_id, name in enumerate(self.workload_names):
            trace = SyntheticWorkload(get_workload(name)).generate(
                length, core_id=core_id)
            core = Core(core_id, config.core, trace, memory=self,
                        engine=self.engine,
                        branch_predictor=HashedPerceptronPredictor(
                            config.branch),
                        warmup_instructions=config.warmup_instructions)
            node = self.nodes[core_id]
            if node.clip is not None:
                node.clip.attach(core)
            if node.crit_gate is not None:
                node.crit_gate.attach(core)
            self.cores.append(core)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def _line(self, core_id: int, address: int) -> int:
        return (address >> _LINE_SHIFT) | (core_id << _CORE_SPACE_SHIFT)

    def _slice_of(self, line: int) -> int:
        return line % self.num_slices

    def _channel_utilization_of(self, core_id: int, address: int) -> float:
        """DSPatch's myopic per-controller bandwidth signal."""
        line = self._line(core_id, address)
        where = self.dram.mapping.locate(line)
        channel = self.dram.channels[where.channel]
        return channel.stats.utilization(max(1, self.engine.now))

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------

    def issue_load(self, core_id: int, address: int, ip: int, cycle: int,
                   callback: Callable) -> None:
        node = self.nodes[core_id]
        if node.mmu is not None:
            translation = node.mmu.translate(address)
            if translation:
                # Re-enter after the TLB/page-walk latency has elapsed.
                self.engine.schedule(
                    cycle + translation,
                    lambda: self._issue_load_translated(
                        core_id, address, ip, self.engine.now, callback))
                return
        self._issue_load_translated(core_id, address, ip, cycle, callback)

    def _issue_load_translated(self, core_id: int, address: int, ip: int,
                               cycle: int, callback: Callable) -> None:
        node = self.nodes[core_id]
        line = self._line(core_id, address)
        if node.clip is not None:
            node.clip.on_l1d_access(line, cycle)
        self._note_epoch_access(node, cycle)
        hit = node.l1d.access(line, ip, cycle)
        if node.l1_pf is not None:
            candidates = node.l1_pf.on_access(ip, address, hit, cycle)
            if candidates:
                self._handle_candidates(node, candidates, cycle)
        if node.dspatch is not None:
            extra = node.dspatch.observe(
                ip, address,
                lambda a: self._channel_utilization_of(core_id, a))
            if extra:
                self._handle_candidates(node, extra, cycle,
                                        dspatch_generated=True)
        if node.hermes is not None:
            callback = self._wrap_hermes(node, ip, address, callback)
        if hit:
            done = cycle + self.l1_lat
            if self.request_trace is not None:
                self.request_trace.append(RequestRecord(
                    core_id, address, cycle, done, ServiceLevel.L1, False))
            self.engine.schedule(
                done, lambda: callback(done, ServiceLevel.L1))
            return
        node.demand_l1_misses += 1
        if node.clip is not None:
            node.clip.on_l1d_miss(cycle)
        if node.hermes is not None and node.hermes.predict_offchip(ip,
                                                                   address):
            self._hermes_launch(node, line, cycle)
        self._miss_from_l1(node, line, address, ip, cycle, callback,
                           is_prefetch=False, crit=False, t0=cycle,
                           is_store=False)

    def issue_store(self, core_id: int, address: int, ip: int,
                    cycle: int) -> None:
        node = self.nodes[core_id]
        if node.mmu is not None:
            translation = node.mmu.translate(address)
            if translation:
                self.engine.schedule(
                    cycle + translation,
                    lambda: self._issue_store_translated(
                        core_id, address, ip, self.engine.now))
                return
        self._issue_store_translated(core_id, address, ip, cycle)

    def _issue_store_translated(self, core_id: int, address: int, ip: int,
                                cycle: int) -> None:
        node = self.nodes[core_id]
        line = self._line(core_id, address)
        if node.clip is not None:
            node.clip.on_l1d_access(line, cycle)
        self._note_epoch_access(node, cycle)
        hit = node.l1d.access(line, ip, cycle, is_write=True)
        if hit:
            return
        node.demand_l1_misses += 1
        if node.clip is not None:
            node.clip.on_l1d_miss(cycle)
        # Write-allocate: fetch the line (RFO) and fill it dirty.
        self._miss_from_l1(node, line, address, ip, cycle, callback=None,
                           is_prefetch=False, crit=False, t0=cycle,
                           is_store=True)

    # ------------------------------------------------------------------
    # Hermes
    # ------------------------------------------------------------------

    def _wrap_hermes(self, node: _Node, ip: int, address: int,
                     callback: Callable) -> Callable:
        def trained(done: int, level: ServiceLevel) -> None:
            node.hermes.train(ip, address, level == ServiceLevel.DRAM)
            callback(done, level)
        return trained

    def _hermes_launch(self, node: _Node, line: int, cycle: int) -> None:
        if line in node.hermes_pending or len(node.hermes_pending) > 256:
            return
        node.hermes_pending[line] = []
        self.dram.read(line, cycle,
                       lambda t: self._hermes_done(node, line, t),
                       is_prefetch=False, crit=False)

    def _hermes_done(self, node: _Node, line: int, t: int) -> None:
        waiters = node.hermes_pending.pop(line, [])
        slice_id = self._slice_of(line)
        self._fill_llc(slice_id, line, t, pc=0, prefetch=not waiters)
        for continuation in waiters:
            continuation(t)

    # ------------------------------------------------------------------
    # Prefetch candidate handling
    # ------------------------------------------------------------------

    def _handle_candidates(self, node: _Node,
                           candidates: List[PrefetchRequest], cycle: int,
                           dspatch_generated: bool = False) -> None:
        stats = self.prefetch_stats
        if node.dspatch is not None and not dspatch_generated:
            candidates = node.dspatch.filter_candidates(
                candidates,
                lambda a: self._channel_utilization_of(node.core_id, a))
        for request in candidates:
            stats.candidates += 1
            crit = False
            if node.clip is not None:
                allowed, crit = node.clip.filter_request(
                    request.trigger_ip, request.address, cycle)
                if not allowed:
                    node.pf_dropped_filter += 1
                    stats.dropped_filter += 1
                    continue
            elif node.crit_gate is not None and self.config.criticality.gate:
                if not node.crit_gate.predicts_critical_ip(
                        request.trigger_ip):
                    node.pf_dropped_filter += 1
                    stats.dropped_filter += 1
                    continue
            self._issue_prefetch(node, request, cycle, crit)

    def _issue_prefetch(self, node: _Node, request: PrefetchRequest,
                        cycle: int, crit: bool) -> None:
        stats = self.prefetch_stats
        line = self._line(node.core_id, request.address)
        # CLIP-selected prefetches from an L1 prefetcher always fill to L1
        # (section 4.2: the requests are known critical and accurate);
        # otherwise the prefetcher's requested fill level stands.
        if node.clip is not None and node.l1_pf is not None:
            fill_level = 1
        else:
            fill_level = request.fill_level
        if (node.l1d.probe(line) or node.l2.probe(line)
                or node.l2_mshr.lookup(line) is not None
                or node.l1_mshr.lookup(line) is not None):
            node.pf_dropped_duplicate += 1
            stats.dropped_duplicate += 1
            return
        if fill_level == 1 and node.l1_mshr.full:
            # Demote to an L2 fill (Berti orchestrates fills across L1..L3;
            # a prefetch that cannot park at L1 still moves the line on
            # chip).
            fill_level = 2
        if fill_level != 1 and node.l2_mshr.full:
            node.pf_dropped_mshr += 1
            stats.dropped_mshr += 1
            return
        node.pf_issued += 1
        stats.issued += 1
        if node.clip is not None:
            node.clip.on_prefetch_issued(line, request.trigger_ip)
        if fill_level == 1:
            self._miss_from_l1(node, line, request.address,
                               request.trigger_ip, cycle, callback=None,
                               is_prefetch=True, crit=crit, t0=cycle,
                               is_store=False)
        else:
            self._miss_from_l2(node, line, request.address,
                               request.trigger_ip, cycle,
                               done_cb=None, is_prefetch=True, crit=crit)

    # ------------------------------------------------------------------
    # L1 miss path
    # ------------------------------------------------------------------

    def _miss_from_l1(self, node: _Node, line: int, address: int, ip: int,
                      cycle: int, callback: Optional[Callable],
                      is_prefetch: bool, crit: bool, t0: int,
                      is_store: bool) -> None:
        if is_prefetch and node.l1d.probe(line):
            # A demand fetched the line while this prefetch queued.
            node.pf_dropped_duplicate += 1
            self.prefetch_stats.dropped_duplicate += 1
            return
        mshr = node.l1_mshr.lookup(line)
        if mshr is not None:
            waiter = (callback, t0) if callback is not None else None
            was_late = mshr.is_prefetch and not mshr.demand_merged
            node.l1_mshr.merge(mshr, waiter, is_prefetch)
            if was_late and not is_prefetch:
                # Late but useful: the paper counts these as accurate.
                self.prefetch_stats.late += 1
                self.prefetch_stats.useful += 1
                node.pf_useful += 1
            if is_store:
                mshr.dirty = True
            return
        if node.l1_mshr.full:
            if is_prefetch:
                # Lost a race with demand allocations since the issue-time
                # check; fall back to the L2 fill path.
                self._miss_from_l2(node, line, address, ip, cycle,
                                   done_cb=None, is_prefetch=True, crit=crit)
                return
            node.l1_mshr.pending.append(
                lambda: self._miss_from_l1(node, line, address, ip,
                                           self.engine.now, callback,
                                           is_prefetch, crit, t0, is_store))
            return
        mshr = node.l1_mshr.allocate(line, is_prefetch, crit, ip, cycle)
        mshr.address = address
        mshr.dirty = is_store
        # Berti times deltas against the *demand* cycle; when the miss sat
        # in the pending queue first, allocation time would understate the
        # latency and invert the timeliness test.
        mshr.allocated_at = t0
        if callback is not None:
            mshr.waiters.append((callback, t0))
        self.engine.schedule(
            cycle + self.l1_lat,
            lambda: self._miss_from_l2(
                node, line, address, ip, self.engine.now,
                done_cb=lambda t, level: self._complete_l1(node, line, t,
                                                           level),
                is_prefetch=is_prefetch, crit=crit))

    def _complete_l1(self, node: _Node, line: int, t: int,
                     level: ServiceLevel) -> None:
        mshr = node.l1_mshr.release(line)
        prefetch_fill = mshr.is_prefetch and not mshr.demand_merged
        evicted = node.l1d.fill(line, mshr.trigger_ip, t,
                                dirty=mshr.dirty, prefetch=prefetch_fill,
                                trigger_ip=mshr.trigger_ip)
        if evicted is not None and evicted.dirty:
            node.l2.fill(evicted.line, 0, t, dirty=True)
        if node.l1_pf is not None and not mshr.is_prefetch:
            more = node.l1_pf.on_fill(mshr.address, t, prefetch=False,
                                      ip=mshr.trigger_ip,
                                      issued_at=mshr.allocated_at)
            if more:
                self._handle_candidates(node, more, t)
        for callback, t0 in mshr.waiters:
            latency = t - t0
            if self.request_trace is not None:
                self.request_trace.append(RequestRecord(
                    node.core_id, mshr.address, t0, t, ServiceLevel(level),
                    mshr.is_prefetch))
            for lvl in range(ServiceLevel.L1, min(level,
                                                  ServiceLevel.DRAM) + 1):
                if lvl < level:
                    # The load missed at lvl; its latency counts toward
                    # lvl's demand miss latency (Fig. 3 accounting).
                    node.lat_sum[lvl] += latency
                    node.lat_count[lvl] += 1
            callback(t, level)
        self._replay_pending(node.l1_mshr)

    # ------------------------------------------------------------------
    # L2 path
    # ------------------------------------------------------------------

    def _miss_from_l2(self, node: _Node, line: int, address: int, ip: int,
                      cycle: int, done_cb: Optional[Callable],
                      is_prefetch: bool, crit: bool) -> None:
        hit = node.l2.access(line, ip, cycle, is_demand=not is_prefetch)
        if not is_prefetch and node.l2_pf is not None:
            candidates = node.l2_pf.on_access(ip, address, hit, cycle)
            if candidates:
                self._handle_candidates(node, candidates, cycle)
        if hit:
            if done_cb is not None:
                done = cycle + self.l2_lat
                self.engine.schedule(
                    done, lambda: done_cb(done, ServiceLevel.L2))
            return
        mshr = node.l2_mshr.lookup(line)
        if mshr is not None:
            waiter = done_cb
            was_late = mshr.is_prefetch and not mshr.demand_merged
            node.l2_mshr.merge(mshr, waiter, is_prefetch)
            if was_late and not is_prefetch:
                # Late but useful: the paper counts these as accurate.
                self.prefetch_stats.late += 1
                self.prefetch_stats.useful += 1
                node.pf_useful += 1
            return
        if node.l2_mshr.full:
            # A prefetch holding no upstream MSHR (done_cb is None) may be
            # dropped; one that allocated an L1 MSHR must queue like a
            # demand, or the L1 entry would leak and deadlock its waiters.
            if is_prefetch and done_cb is None:
                node.pf_dropped_mshr += 1
                self.prefetch_stats.dropped_mshr += 1
                # Un-count it: it never entered the hierarchy.
                node.pf_issued -= 1
                self.prefetch_stats.issued -= 1
                return
            node.l2_mshr.pending.append(
                lambda: self._miss_from_l2(node, line, address, ip,
                                           self.engine.now, done_cb,
                                           is_prefetch, crit))
            return
        mshr = node.l2_mshr.allocate(line, is_prefetch, crit, ip, cycle)
        mshr.address = address
        if done_cb is not None:
            mshr.waiters.append(done_cb)
        self.engine.schedule(
            cycle + self.l2_lat,
            lambda: self._go_llc(node, line, ip, is_prefetch, crit))

    def _complete_l2(self, node: _Node, line: int, t: int,
                     level: ServiceLevel) -> None:
        mshr = node.l2_mshr.release(line)
        prefetch_fill = mshr.is_prefetch and not mshr.demand_merged
        evicted = node.l2.fill(line, mshr.trigger_ip, t,
                               prefetch=prefetch_fill,
                               trigger_ip=mshr.trigger_ip)
        if evicted is not None and evicted.dirty:
            self._writeback_to_llc(node, evicted.line, t)
        for waiter in mshr.waiters:
            waiter(t, level)
        self._replay_pending(node.l2_mshr)

    def _writeback_to_llc(self, node: _Node, line: int, t: int) -> None:
        slice_id = self._slice_of(line)
        # Fire-and-forget data packet occupying NoC links (low priority).
        self.noc.send_data(node.core_id, slice_id, t, high_priority=False)
        self._fill_llc(slice_id, line, t, pc=0, prefetch=False, dirty=True)

    # ------------------------------------------------------------------
    # LLC + DRAM path
    # ------------------------------------------------------------------

    def _go_llc(self, node: _Node, line: int, ip: int, is_prefetch: bool,
                crit: bool) -> None:
        now = self.engine.now
        slice_id = self._slice_of(line)
        high = (not is_prefetch) or crit
        arrival = self.noc.send_request(node.core_id, slice_id, now, high)
        self.engine.schedule(
            arrival,
            lambda: self._llc_lookup(node, line, ip, is_prefetch, crit,
                                     slice_id))

    def _slice_local(self, line: int) -> int:
        """Slice-local line address: the slice-selection bits are stripped
        so the slice's set index uses fresh bits (otherwise only 1-in-
        num_slices of each slice's sets would ever be used)."""
        return line // self.num_slices

    def _llc_lookup(self, node: _Node, line: int, ip: int,
                    is_prefetch: bool, crit: bool, slice_id: int) -> None:
        now = self.engine.now
        llc = self.llc[slice_id]
        high = (not is_prefetch) or crit
        hit = llc.access(self._slice_local(line), ip, now,
                         is_demand=not is_prefetch)
        if hit:
            ready = now + self.llc_lat
            arrival = self.noc.send_data(slice_id, node.core_id, ready, high)
            self.engine.schedule(
                arrival,
                lambda: self._complete_l2(node, line, self.engine.now,
                                          ServiceLevel.LLC))
            return
        # Hermes may already have the line in flight from DRAM.
        if node.hermes is not None and line in node.hermes_pending:
            node.hermes_pending[line].append(
                lambda t: self._return_data(node, line, slice_id,
                                            max(t, now + self.llc_lat),
                                            high, ServiceLevel.DRAM))
            return
        mshr_file = self.llc_mshr[slice_id]
        mshr = mshr_file.lookup(line)
        waiter = lambda t: self._return_data(node, line, slice_id, t, high,
                                             ServiceLevel.DRAM)
        if mshr is not None:
            mshr_file.merge(mshr, waiter, is_prefetch)
            return
        if mshr_file.full:
            # Every request reaching the LLC holds an L2 MSHR upstream, so
            # nothing may be dropped here -- queue until a register frees.
            mshr_file.pending.append(
                lambda: self._llc_lookup(node, line, ip, is_prefetch, crit,
                                         slice_id))
            return
        mshr = mshr_file.allocate(line, is_prefetch, crit, ip, now)
        mshr.waiters.append(waiter)
        ready = now + self.llc_lat
        self.engine.schedule(
            ready,
            lambda: self.dram.read(
                line, self.engine.now,
                lambda t: self._dram_done(slice_id, line, t),
                is_prefetch=is_prefetch, crit=crit))

    def _dram_done(self, slice_id: int, line: int, t: int) -> None:
        mshr_file = self.llc_mshr[slice_id]
        mshr = mshr_file.release(line)
        prefetch_fill = mshr.is_prefetch and not mshr.demand_merged
        self._fill_llc(slice_id, line, t, pc=mshr.trigger_ip,
                       prefetch=prefetch_fill)
        for waiter in mshr.waiters:
            waiter(t)
        self._replay_pending(mshr_file)

    def _fill_llc(self, slice_id: int, line: int, t: int, pc: int,
                  prefetch: bool, dirty: bool = False) -> None:
        evicted = self.llc[slice_id].fill(self._slice_local(line), pc, t,
                                          dirty=dirty, prefetch=prefetch)
        if evicted is not None and evicted.dirty:
            # Reconstruct the global line address from the slice-local one.
            victim_line = evicted.line * self.num_slices + slice_id
            self.dram.write(victim_line, t)

    def _return_data(self, node: _Node, line: int, slice_id: int, t: int,
                     high: bool, level: ServiceLevel) -> None:
        arrival = self.noc.send_data(slice_id, node.core_id, t, high)
        self.engine.schedule(
            arrival,
            lambda: self._complete_l2(node, line, self.engine.now, level))

    @staticmethod
    def _replay_pending(mshr_file: MshrFile) -> None:
        while mshr_file.pending and not mshr_file.full:
            thunk = mshr_file.pending.popleft()
            thunk()

    # ------------------------------------------------------------------
    # Throttling epochs
    # ------------------------------------------------------------------

    def _note_epoch_access(self, node: _Node, cycle: int) -> None:
        if node.throttler is None:
            return
        node.epoch_accesses += 1
        if node.epoch_accesses < _THROTTLE_EPOCH:
            return
        node.epoch_accesses = 0
        late = (node.l1_mshr.late_prefetch_merges
                + node.l2_mshr.late_prefetch_merges)
        pollution = (node.l1d.stats.useless_evictions
                     + node.l2.stats.useless_evictions)
        issued, useful, base_late, base_pollution = node.epoch_base
        d_issued = node.pf_issued - issued
        d_useful = node.pf_useful - useful
        d_late = late - base_late
        d_pollution = pollution - base_pollution
        node.epoch_base = (node.pf_issued, node.pf_useful, late, pollution)
        accuracy = d_useful / d_issued if d_issued else 0.0
        lateness = d_late / d_useful if d_useful else 0.0
        poll = d_pollution / d_issued if d_issued else 0.0
        occupancy = ((len(node.l1_mshr.entries) + len(node.l2_mshr.entries))
                     / (node.l1_mshr.capacity + node.l2_mshr.capacity))
        snapshot = ThrottleSnapshot(
            accuracy=min(1.0, accuracy), lateness=min(1.0, lateness),
            pollution=min(1.0, poll),
            dram_utilization=self.dram.utilization(max(1, cycle)),
            mshr_occupancy=occupancy, issued=d_issued)
        scale = node.throttler.decide(snapshot)
        if node.l1_pf is not None:
            node.l1_pf.set_degree_scale(scale)
        if node.l2_pf is not None:
            node.l2_pf.set_degree_scale(scale)

    # ------------------------------------------------------------------
    # Running and result collection
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000) -> SimulationResult:
        final_cycle = self.engine.run(self.cores, max_cycles=max_cycles)
        if self.sanitizer is not None:
            self.sanitizer.final_check(self)
        return self._collect(final_cycle)

    def _collect(self, final_cycle: int) -> SimulationResult:
        result = SimulationResult(config_label=self.label)
        result.total_cycles = final_cycle
        for core, name in zip(self.cores, self.workload_names):
            s = core.stats
            result.cores.append(CoreResult(
                core_id=core.core_id, workload=name,
                instructions=s.instructions, cycles=s.finish_cycle,
                loads=s.loads, stores=s.stores, branches=s.branches,
                mispredicts=s.mispredicts,
                head_stall_cycles=s.head_stall_cycles,
                head_stall_cycles_miss=s.head_stall_cycles_miss,
                critical_load_instances=s.critical_load_instances,
                load_instances_beyond_l1=s.load_instances_beyond_l1))
        predictions = sum(c.branch_predictor.predictions for c in self.cores)
        mispredicts = sum(c.branch_predictor.mispredictions
                          for c in self.cores)
        result.branch_accuracy = (1.0 - mispredicts / predictions
                                  if predictions else 1.0)
        result.levels = self._collect_levels()
        result.prefetch = self.prefetch_stats
        result.dram = self._collect_dram(final_cycle)
        result.noc = NocResult(
            packets=self.noc.stats.packets, flits=self.noc.stats.flits,
            average_latency=self.noc.stats.average_latency)
        if self.config.clip.enabled:
            result.clip = self._collect_clip()
        if self.config.criticality.name != "none":
            result.criticality = self._collect_criticality()
        return result

    def _collect_levels(self) -> Dict[str, LevelStats]:
        levels = {
            "L1D": LevelStats("L1D"),
            "L2": LevelStats("L2"),
            "LLC": LevelStats("LLC"),
        }
        for node in self.nodes:
            for name, cache in (("L1D", node.l1d), ("L2", node.l2)):
                level = levels[name]
                level.demand_accesses += cache.stats.demand_accesses
                level.demand_hits += cache.stats.demand_hits
                level.demand_misses += cache.stats.demand_misses
                level.prefetch_fills += cache.stats.prefetch_fills
                level.useful_prefetches += cache.stats.useful_prefetches
                level.useless_evictions += cache.stats.useless_evictions
            for idx, lvl_name in ((ServiceLevel.L1, "L1D"),
                                  (ServiceLevel.L2, "L2"),
                                  (ServiceLevel.LLC, "LLC")):
                levels[lvl_name].miss_latency_sum += node.lat_sum[idx]
                levels[lvl_name].miss_latency_count += node.lat_count[idx]
        llc_level = levels["LLC"]
        for slice_cache in self.llc:
            llc_level.demand_accesses += slice_cache.stats.demand_accesses
            llc_level.demand_hits += slice_cache.stats.demand_hits
            llc_level.demand_misses += slice_cache.stats.demand_misses
            llc_level.prefetch_fills += slice_cache.stats.prefetch_fills
            llc_level.useful_prefetches += \
                slice_cache.stats.useful_prefetches
            llc_level.useless_evictions += \
                slice_cache.stats.useless_evictions
        return levels

    def _collect_dram(self, final_cycle: int) -> DramResult:
        dram = DramResult()
        for channel in self.dram.channels:
            dram.reads += channel.stats.reads
            dram.writes += channel.stats.writes
            dram.prefetch_reads += channel.stats.prefetch_reads
            dram.row_hits += channel.stats.row_hits
            dram.row_misses += channel.stats.row_misses
        dram.average_read_latency = self.dram.average_read_latency()
        dram.utilization = self.dram.utilization(max(1, final_cycle))
        return dram

    def _collect_clip(self) -> ClipResult:
        clip_result = ClipResult()
        predicted = correct = actual = covered = 0
        for node in self.nodes:
            clip = node.clip
            check(clip is not None, "CLIP enabled but core %d has no "
                  "Clip instance", node.core_id)
            predicted += clip.stats.predicted_critical
            correct += clip.stats.predicted_critical_correct
            actual += clip.stats.actual_critical
            covered += clip.stats.covered_critical
            clip_result.prefetches_seen += clip.stats.prefetches_seen
            clip_result.prefetches_allowed += clip.stats.prefetches_allowed
            static, dynamic = clip.critical_ip_census()
            clip_result.static_critical_ips += static
            clip_result.dynamic_critical_ips += dynamic
            clip_result.windows += clip.stats.windows
            clip_result.phase_changes += clip.stats.phase_changes
        clip_result.prediction_accuracy = (correct / predicted
                                           if predicted else 0.0)
        clip_result.prediction_coverage = (covered / actual
                                           if actual else 0.0)
        return clip_result

    def _collect_criticality(self) -> CriticalityResult:
        predicted = correct = actual = covered = 0
        name = self.config.criticality.name
        for node in self.nodes:
            gate = node.crit_gate
            check(gate is not None, "criticality predictor %r enabled "
                  "but core %d has no gate", name, node.core_id)
            measurement = gate.measurement
            predicted += measurement.predicted
            correct += measurement.predicted_correct
            actual += measurement.actual
            covered += measurement.covered
        return CriticalityResult(
            name=name,
            accuracy=correct / predicted if predicted else 0.0,
            coverage=covered / actual if actual else 0.0)


def run_system(config: SystemConfig, workloads: List[str],
               label: str = "") -> SimulationResult:
    """Convenience wrapper: build, run, collect."""
    return MulticoreSystem(config, workloads, label=label).run()
