"""Request-level latency tracing.

When enabled (``SystemConfig.capture_request_trace``), the memory system
records one :class:`RequestRecord` per completed demand load: who issued
it, where it was serviced, and how long it took.  The records feed latency
histograms and percentile analysis -- the right tool when an average (as
in Fig. 3) hides a bimodal queueing story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cpu.core_model import ServiceLevel


@dataclass(frozen=True)
class RequestRecord:
    """One completed demand load."""

    core_id: int
    address: int
    issued_at: int
    completed_at: int
    level: ServiceLevel
    #: The demand merged into an in-flight prefetch (late prefetch).
    merged_into_prefetch: bool

    @property
    def latency(self) -> int:
        return self.completed_at - self.issued_at


class RequestTrace:
    """Bounded collector of demand-load records."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.records: List[RequestRecord] = []
        self.dropped = 0

    def append(self, record: RequestRecord) -> None:
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------

    def latencies(self, level: ServiceLevel | None = None) -> List[int]:
        """All latencies, optionally only for loads serviced at ``level``."""
        return [r.latency for r in self.records
                if level is None or r.level == level]

    def percentile(self, fraction: float,
                   level: ServiceLevel | None = None) -> float:
        """Latency percentile (e.g. 0.5 = median, 0.99 = tail)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        values = sorted(self.latencies(level))
        if not values:
            return 0.0
        index = min(len(values) - 1, int(fraction * len(values)))
        return float(values[index])

    def level_breakdown(self) -> Dict[str, int]:
        """How many demand loads each level serviced."""
        breakdown: Dict[str, int] = {}
        for record in self.records:
            breakdown[record.level.name] = \
                breakdown.get(record.level.name, 0) + 1
        return breakdown

    def histogram(self, bucket_cycles: int = 50,
                  max_buckets: int = 40) -> Dict[str, int]:
        """Latency histogram with fixed-width buckets."""
        if bucket_cycles < 1:
            raise ValueError("bucket width must be positive")
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.latency // bucket_cycles] = \
                counts.get(record.latency // bucket_cycles, 0) + 1
        buckets = {}
        overflow = 0
        for bucket, count in sorted(counts.items()):
            if bucket >= max_buckets:
                overflow += count
                continue
            low = bucket * bucket_cycles
            buckets[f"{low}-{low + bucket_cycles - 1}"] = count
        if overflow:
            buckets[f">={max_buckets * bucket_cycles}"] = overflow
        return buckets


def format_latency_report(trace: RequestTrace) -> str:
    """Human-readable latency summary of a request trace."""
    lines = [f"demand loads traced : {len(trace)}"
             + (f" (+{trace.dropped} dropped)" if trace.dropped else "")]
    breakdown = trace.level_breakdown()
    if breakdown:
        parts = ", ".join(f"{name}: {count}"
                          for name, count in sorted(breakdown.items()))
        lines.append(f"serviced by         : {parts}")
    for label, fraction in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        lines.append(f"latency {label}         : "
                     f"{trace.percentile(fraction):.0f} cycles")
    late = sum(1 for r in trace.records if r.merged_into_prefetch)
    if trace.records:
        lines.append(f"merged into prefetch: {late} "
                     f"({late / len(trace.records):.0%})")
    return "\n".join(lines)
