"""Classic IP-stride prefetcher (Fu/Patel/Janssens, MICRO 1992).

Per-IP reference prediction table with a two-bit confidence counter; the
baseline target of most throttling work (its ~60% accuracy is what FDP and
friends were designed around -- paper section 3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.prefetch.base import Prefetcher, PrefetchRequest

_LINE = 64


class _Entry:
    __slots__ = ("last_address", "stride", "confidence")

    def __init__(self, address: int) -> None:
        self.last_address = address
        self.stride = 0
        self.confidence = 0


class IpStridePrefetcher(Prefetcher):
    """Per-IP constant-stride prediction."""

    name = "stride"
    level = "L1"
    MAX_IPS = 256
    CONFIDENCE_THRESHOLD = 2

    def __init__(self, degree: int = 4) -> None:
        self.degree = degree
        self._scale = 1.0
        self._table: Dict[int, _Entry] = {}
        self._lru: Deque[int] = deque()

    def set_degree_scale(self, scale: float) -> None:
        self._scale = max(0.0, scale)

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        entry = self._table.get(ip)
        if entry is None:
            if len(self._table) >= self.MAX_IPS:
                victim = self._lru.popleft()
                self._table.pop(victim, None)
            self._table[ip] = _Entry(address)
            self._lru.append(ip)
            return []
        stride = address - entry.last_address
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_address = address
        if entry.confidence < self.CONFIDENCE_THRESHOLD or not entry.stride:
            return []
        degree = max(0, int(round(self.degree * self._scale)))
        requests = []
        for distance in range(1, degree + 1):
            target = address + entry.stride * distance
            if target <= 0:
                break
            requests.append(PrefetchRequest(
                address=target, fill_level=2, trigger_ip=ip,
                confidence=entry.confidence / 3.0))
        return requests
