"""Prefetcher interface.

A prefetcher observes the demand stream of its cache level through
``on_access`` and fills through ``on_fill``, and emits
:class:`PrefetchRequest` candidates.  The memory system (not the
prefetcher) decides what happens to a candidate: throttlers cap the degree,
CLIP's two-stage filter may drop it or flag it critical, and duplicate
candidates already resident or in flight are squashed.
"""

from __future__ import annotations

from typing import List


class PrefetchRequest:
    """One prefetch candidate produced by a prefetcher."""

    __slots__ = ("address", "fill_level", "trigger_ip", "confidence")

    def __init__(self, address: int, fill_level: int, trigger_ip: int,
                 confidence: float = 1.0) -> None:
        if fill_level not in (1, 2, 3):
            raise ValueError("fill_level must be 1 (L1), 2 (L2) or 3 (LLC)")
        self.address = address
        self.fill_level = fill_level
        self.trigger_ip = trigger_ip
        self.confidence = confidence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PrefetchRequest(address={self.address:#x}, "
                f"fill_level={self.fill_level}, "
                f"trigger_ip={self.trigger_ip:#x}, "
                f"confidence={self.confidence:.2f})")


class Prefetcher:
    """Base class; concrete prefetchers override the hooks they need."""

    #: Human-readable name used in results tables.
    name = "none"
    #: Cache level the prefetcher trains at ("L1" or "L2").
    level = "L1"

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        """Observe one demand access; return prefetch candidates."""
        return []

    def on_fill(self, address: int, cycle: int, prefetch: bool,
                ip: int = 0, issued_at: int = 0) -> List[PrefetchRequest]:
        """Observe a fill into the training level.

        ``ip`` is the demand IP that initiated the miss (0 for prefetch
        fills) and ``issued_at`` the cycle the miss left this level --
        together they give Berti the observed latency it needs to find
        *timely* deltas.
        """
        return []

    def on_prefetch_feedback(self, address: int, useful: bool) -> None:
        """Learn from the fate of an issued prefetch (PPF training)."""

    def set_degree_scale(self, scale: float) -> None:
        """Throttler hook: scale aggressiveness (1.0 = configured)."""


class NullPrefetcher(Prefetcher):
    """The no-prefetching baseline."""

    name = "none"


def make_prefetcher(name: str, degree: int = 4) -> Prefetcher:
    """Instantiate a prefetcher by configuration name."""
    # Imported here to avoid circular imports at package load.
    from repro.prefetch.berti import BertiPrefetcher
    from repro.prefetch.bingo import BingoPrefetcher
    from repro.prefetch.ipcp import IpcpPrefetcher
    from repro.prefetch.spp_ppf import SppPpfPrefetcher
    from repro.prefetch.stride import IpStridePrefetcher
    from repro.prefetch.streamer import StreamPrefetcher

    factories = {
        "none": NullPrefetcher,
        "berti": BertiPrefetcher,
        "ipcp": IpcpPrefetcher,
        "spp_ppf": SppPpfPrefetcher,
        "bingo": BingoPrefetcher,
        "stride": IpStridePrefetcher,
        "streamer": StreamPrefetcher,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown prefetcher {name!r}; "
                         f"choose from {sorted(factories)}") from None
    if name == "none":
        return factory()
    return factory(degree=degree)
