"""Berti: local-delta L1 prefetcher with timeliness-aware delta selection.

Berti (Navarro-Torres et al., MICRO 2022) learns, per load IP, which local
deltas are *timely*: a delta d is useful only if issuing ``addr + d`` at the
time ``addr`` was seen would have completed before the demand for
``addr + d`` actually arrived.  Berti measures each delta's local coverage
and uses watermarks on that coverage to pick the fill level: high-coverage
deltas fill L1, mid-coverage deltas fill L2, low-coverage deltas are not
prefetched at all -- which is why Berti's accuracy is so high (>82% in the
paper) and why accuracy-based throttlers have little left to do.

Implementation notes (faithful-in-spirit, simplified bookkeeping):

* per-IP history of recent demand accesses (line, cycle);
* on every fill completing a demand miss we know the observed latency; each
  history entry older than that latency contributes a timely-delta vote;
* per-IP delta scoreboard with periodic aging; coverage = votes for the
  delta / history opportunities in the scoring window.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.prefetch.base import Prefetcher, PrefetchRequest

_LINE_SHIFT = 6


class _IpState:
    """Berti's per-IP tracking entry."""

    __slots__ = ("history", "delta_votes", "opportunities", "best")

    def __init__(self) -> None:
        self.history: Deque[Tuple[int, int]] = deque(maxlen=32)
        self.delta_votes: Dict[int, int] = {}
        self.opportunities = 0
        #: Cached list of (delta, coverage) above the low watermark.
        self.best: List[Tuple[int, float]] = []


class BertiPrefetcher(Prefetcher):
    """State-of-the-art local-delta L1D prefetcher."""

    name = "berti"
    level = "L1"

    #: Local-coverage watermarks steering the fill level (tuned values for
    #: the 64-core system; the paper notes it uses "the best watermarks").
    HIGH_WATERMARK = 0.50
    LOW_WATERMARK = 0.25
    #: Re-derive the best-delta list every this many scoring events.
    REFRESH_INTERVAL = 32
    #: Age the scoreboard once opportunities reach this count.
    AGING_LIMIT = 128
    MAX_IPS = 64

    def __init__(self, degree: int = 6) -> None:
        self.degree = degree
        self._scale = 1.0
        #: ``round(degree * scale)``, recomputed only when the throttle
        #: rescales -- on_access runs per demand access.
        self._effective_degree = max(0, int(round(degree * self._scale)))
        self._table: Dict[int, _IpState] = {}
        self._lru: Deque[int] = deque()

    def set_degree_scale(self, scale: float) -> None:
        self._scale = max(0.0, scale)
        self._effective_degree = max(0, int(round(self.degree * self._scale)))

    # ------------------------------------------------------------------

    def _state(self, ip: int) -> _IpState:
        state = self._table.get(ip)
        if state is None:
            if len(self._table) >= self.MAX_IPS:
                victim = self._lru.popleft()
                self._table.pop(victim, None)
            state = _IpState()
            self._table[ip] = state
            self._lru.append(ip)
        return state

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        line = address >> _LINE_SHIFT
        state = self._state(ip)
        state.history.append((line, cycle))
        degree = self._effective_degree
        best = state.best
        if not best or not degree:
            return []
        if len(best) > degree:
            best = best[:degree]
        requests: List[PrefetchRequest] = []
        for delta, coverage in best:
            target = (line + delta) << _LINE_SHIFT
            if target <= 0:
                continue
            fill_level = 1 if coverage >= self.HIGH_WATERMARK else 2
            requests.append(PrefetchRequest(
                address=target, fill_level=fill_level, trigger_ip=ip,
                confidence=coverage))
        return requests

    def on_fill(self, address: int, cycle: int, prefetch: bool,
                ip: int = 0, issued_at: int = 0) -> List[PrefetchRequest]:
        if prefetch or not ip:
            return []
        state = self._table.get(ip)
        if state is None:
            return []
        line = address >> _LINE_SHIFT
        latency = max(1, cycle - issued_at)
        # Votes: Berti's timeliness test -- a prefetch issued when the
        # history entry was seen would have arrived by this fill's time
        # (arrival <= fill).  Deltas passing only this looser test can
        # still be *late* relative to the demand; that is precisely the
        # lateness the CLIP paper measures (13-19% at 4-8 channels).
        state.opportunities += 1
        for past_line, past_cycle in state.history:
            if past_cycle + latency <= cycle:
                delta = line - past_line
                if delta and -512 < delta < 512:
                    state.delta_votes[delta] = \
                        state.delta_votes.get(delta, 0) + 1
        if state.opportunities % self.REFRESH_INTERVAL == 0:
            self._refresh(state)
        if state.opportunities >= self.AGING_LIMIT:
            state.opportunities //= 2
            for delta in list(state.delta_votes):
                state.delta_votes[delta] //= 2
                if not state.delta_votes[delta]:
                    del state.delta_votes[delta]
        return []

    def _refresh(self, state: _IpState) -> None:
        opportunities = max(1, state.opportunities)
        scored = []
        for delta, votes in state.delta_votes.items():
            coverage = min(1.0, votes / opportunities)
            if coverage >= self.LOW_WATERMARK:
                scored.append((delta, coverage))
        # Equal-coverage deltas tie-break toward the larger magnitude:
        # farther prefetches have more latency headroom (timeliness).
        scored.sort(key=lambda item: (-item[1], -abs(item[0])))
        state.best = scored[:8]
