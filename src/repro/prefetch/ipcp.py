"""IPCP: Instruction Pointer Classifier-based Prefetching (ISCA 2020).

IPCP classifies load IPs into three classes and runs a bouquet of
class-specific prefetchers:

* **CS** (constant stride): stride-confident IPs prefetch ``degree`` lines
  ahead and fill L1;
* **CPLX** (complex): IPs with recurring delta *signatures* use a
  signature-indexed delta predictor and fill L2;
* **GS** (global stream): IPs participating in dense region streams
  prefetch deep next-line runs.

Class priority is CS > GS > CPLX, matching the original's arbitration.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List

from repro.prefetch.base import Prefetcher, PrefetchRequest

_LINE_SHIFT = 6
_REGION_SHIFT = 11  # 2 KiB GS tracking regions


class _IpEntry:
    __slots__ = ("last_line", "stride", "stride_confidence", "signature")

    def __init__(self, line: int) -> None:
        self.last_line = line
        self.stride = 0
        self.stride_confidence = 0
        self.signature = 0


class IpcpPrefetcher(Prefetcher):
    """Lightweight multi-class L1 prefetcher."""

    name = "ipcp"
    level = "L1"
    MAX_IPS = 128
    MAX_REGIONS = 32
    CS_THRESHOLD = 2
    GS_DENSITY = 4

    def __init__(self, degree: int = 4) -> None:
        self.degree = degree
        self._scale = 1.0
        self._ips: Dict[int, _IpEntry] = {}
        self._ip_lru: Deque[int] = deque()
        #: CPLX delta predictor: signature -> (delta, confidence).
        self._cplx: Dict[int, List[int]] = {}
        #: GS: region -> count of distinct-line touches.
        self._regions: "OrderedDict[int, set]" = OrderedDict()

    def set_degree_scale(self, scale: float) -> None:
        self._scale = max(0.0, scale)

    def _entry(self, ip: int, line: int) -> _IpEntry:
        entry = self._ips.get(ip)
        if entry is None:
            if len(self._ips) >= self.MAX_IPS:
                victim = self._ip_lru.popleft()
                self._ips.pop(victim, None)
            entry = _IpEntry(line)
            self._ips[ip] = entry
            self._ip_lru.append(ip)
        return entry

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        line = address >> _LINE_SHIFT
        entry = self._ips.get(ip)
        degree = max(0, int(round(self.degree * self._scale)))
        if entry is None:
            self._entry(ip, line)
            self._note_region(address)
            return []
        delta = line - entry.last_line
        entry.last_line = line
        if delta == 0:
            return []
        # --- class training -------------------------------------------
        if delta == entry.stride:
            entry.stride_confidence = min(3, entry.stride_confidence + 1)
        else:
            entry.stride_confidence = max(0, entry.stride_confidence - 1)
            if entry.stride_confidence == 0:
                entry.stride = delta
        signature = entry.signature
        cplx_entry = self._cplx.get(signature)
        if cplx_entry is None:
            self._cplx[signature] = [delta, 1]
            if len(self._cplx) > 4096:
                self._cplx.clear()
        elif cplx_entry[0] == delta:
            cplx_entry[1] = min(3, cplx_entry[1] + 1)
        else:
            cplx_entry[1] -= 1
            if cplx_entry[1] <= 0:
                self._cplx[signature] = [delta, 1]
        entry.signature = ((signature << 3) ^ (delta & 0x3F)) & 0xFFF
        gs_dense = self._note_region(address)
        if not degree:
            return []
        # --- class arbitration: CS > GS > CPLX ------------------------
        if entry.stride_confidence >= self.CS_THRESHOLD and entry.stride:
            return self._emit_stride(ip, line, entry.stride, degree,
                                     fill_level=1,
                                     confidence=entry.stride_confidence / 3.0)
        if gs_dense:
            direction = 1 if delta > 0 else -1
            return self._emit_stride(ip, line, direction, degree + 2,
                                     fill_level=1, confidence=0.75)
        prediction = self._cplx.get(entry.signature)
        if prediction is not None and prediction[1] >= 2:
            target = (line + prediction[0]) << _LINE_SHIFT
            if target > 0:
                return [PrefetchRequest(address=target, fill_level=2,
                                        trigger_ip=ip,
                                        confidence=prediction[1] / 3.0)]
        return []

    def _note_region(self, address: int) -> bool:
        region = address >> _REGION_SHIFT
        touched = self._regions.get(region)
        if touched is None:
            if len(self._regions) >= self.MAX_REGIONS:
                self._regions.popitem(last=False)
            touched = set()
            self._regions[region] = touched
        else:
            self._regions.move_to_end(region)
        touched.add((address >> _LINE_SHIFT) & 0x1F)
        return len(touched) >= self.GS_DENSITY

    @staticmethod
    def _emit_stride(ip: int, line: int, stride: int, degree: int,
                     fill_level: int, confidence: float,
                     ) -> List[PrefetchRequest]:
        requests = []
        for distance in range(1, degree + 1):
            target = (line + stride * distance) << _LINE_SHIFT
            if target <= 0:
                break
            requests.append(PrefetchRequest(
                address=target, fill_level=fill_level, trigger_ip=ip,
                confidence=confidence))
        return requests
