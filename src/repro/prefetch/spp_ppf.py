"""SPP-PPF: signature path prefetching with perceptron prefetch filtering.

SPP (MICRO 2016) tracks, per 4 KiB page, a compressed signature of the
recent delta path and predicts the next delta from a signature-indexed
pattern table, *looking ahead* along the predicted path while accumulated
path confidence stays high.  PPF (ISCA 2019) lets SPP overrun its
confidence throttle and filters each candidate with a perceptron over
cheap features, trained by the observed usefulness of past prefetches.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.prefetch.base import Prefetcher, PrefetchRequest

_LINE_SHIFT = 6
_PAGE_SHIFT = 12
_LINES_PER_PAGE = 1 << (_PAGE_SHIFT - _LINE_SHIFT)
_SIG_MASK = 0xFFF


def _advance_signature(signature: int, delta: int) -> int:
    return ((signature << 3) ^ (delta & 0x7F)) & _SIG_MASK


class _PatternEntry:
    """Delta candidates with confidence counters for one signature."""

    __slots__ = ("deltas",)

    def __init__(self) -> None:
        self.deltas: Dict[int, int] = {}

    def train(self, delta: int) -> None:
        self.deltas[delta] = self.deltas.get(delta, 0) + 1
        if len(self.deltas) > 4:
            weakest = min(self.deltas, key=self.deltas.get)
            del self.deltas[weakest]

    def best(self) -> Optional[Tuple[int, float]]:
        if not self.deltas:
            return None
        total = sum(self.deltas.values())
        delta, count = max(self.deltas.items(), key=lambda item: item[1])
        return delta, count / total


class _Perceptron:
    """PPF's feature-weight tables."""

    TABLE = 256
    WEIGHT_MAX = 31
    ISSUE_THRESHOLD = -2

    def __init__(self) -> None:
        self._tables: List[List[int]] = [
            [0] * self.TABLE for _ in range(4)
        ]

    def _indices(self, signature: int, ip: int, offset: int,
                 delta: int) -> List[int]:
        return [
            signature % self.TABLE,
            (ip >> 2) % self.TABLE,
            (offset ^ (ip & 0xFF)) % self.TABLE,
            (delta & 0xFF) % self.TABLE,
        ]

    def score(self, signature: int, ip: int, offset: int, delta: int) -> int:
        return sum(self._tables[t][i]
                   for t, i in enumerate(self._indices(signature, ip,
                                                       offset, delta)))

    def train(self, signature: int, ip: int, offset: int, delta: int,
              useful: bool) -> None:
        step = 1 if useful else -1
        for table, index in enumerate(self._indices(signature, ip,
                                                    offset, delta)):
            weight = self._tables[table][index] + step
            self._tables[table][index] = max(-self.WEIGHT_MAX,
                                             min(self.WEIGHT_MAX, weight))


class SppPpfPrefetcher(Prefetcher):
    """State-of-the-art L2 prefetcher (SPP with perceptron filtering)."""

    name = "spp_ppf"
    level = "L2"
    MAX_PAGES = 256
    LOOKAHEAD_FLOOR = 0.25

    def __init__(self, degree: int = 4) -> None:
        self.degree = degree
        self._scale = 1.0
        #: page -> (last line offset, signature)
        self._pages: "OrderedDict[int, List[int]]" = OrderedDict()
        self._patterns: Dict[int, _PatternEntry] = {}
        self._perceptron = _Perceptron()
        #: line -> perceptron features, for usefulness training.
        self._issued: "OrderedDict[int, Tuple[int, int, int, int]]" = \
            OrderedDict()

    def set_degree_scale(self, scale: float) -> None:
        self._scale = max(0.0, scale)

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        page = address >> _PAGE_SHIFT
        offset = (address >> _LINE_SHIFT) & (_LINES_PER_PAGE - 1)
        state = self._pages.get(page)
        if state is None:
            if len(self._pages) >= self.MAX_PAGES:
                self._pages.popitem(last=False)
            self._pages[page] = [offset, 0]
            return []
        self._pages.move_to_end(page)
        last_offset, signature = state
        delta = offset - last_offset
        if delta:
            pattern = self._patterns.get(signature)
            if pattern is None:
                pattern = _PatternEntry()
                self._patterns[signature] = pattern
                if len(self._patterns) > 4096:
                    self._patterns.clear()
            pattern.train(delta)
            state[0] = offset
            state[1] = _advance_signature(signature, delta)
        return self._lookahead(ip, page, offset, state[1])

    def _lookahead(self, ip: int, page: int, offset: int,
                   signature: int) -> List[PrefetchRequest]:
        budget = max(0, int(round(self.degree * self._scale)))
        requests: List[PrefetchRequest] = []
        path_confidence = 1.0
        current_offset = offset
        current_signature = signature
        while len(requests) < budget:
            pattern = self._patterns.get(current_signature)
            prediction = pattern.best() if pattern else None
            if prediction is None:
                break
            delta, confidence = prediction
            path_confidence *= confidence
            if path_confidence < self.LOOKAHEAD_FLOOR:
                break
            current_offset += delta
            if not 0 <= current_offset < _LINES_PER_PAGE:
                break  # SPP stops at page boundaries.
            target = (page << _PAGE_SHIFT) | (current_offset << _LINE_SHIFT)
            score = self._perceptron.score(current_signature, ip,
                                           current_offset, delta)
            if score >= _Perceptron.ISSUE_THRESHOLD:
                requests.append(PrefetchRequest(
                    address=target, fill_level=2, trigger_ip=ip,
                    confidence=path_confidence))
                self._remember(target >> _LINE_SHIFT,
                               (current_signature, ip, current_offset, delta))
            current_signature = _advance_signature(current_signature, delta)
        return requests

    def _remember(self, line: int,
                  features: Tuple[int, int, int, int]) -> None:
        self._issued[line] = features
        if len(self._issued) > 512:
            self._issued.popitem(last=False)

    def on_prefetch_feedback(self, address: int, useful: bool) -> None:
        features = self._issued.pop(address >> _LINE_SHIFT, None)
        if features is None:
            return
        signature, ip, offset, delta = features
        self._perceptron.train(signature, ip, offset, delta, useful)
