"""Bingo spatial data prefetcher (HPCA 2019).

Bingo records the footprint of lines touched inside a spatial region and
replays it the next time the region's *trigger* event recurs.  Its insight
is to associate each footprint with multiple events of different length --
the long ``PC+Address`` event (precise, rare) and the short ``PC+Offset``
event (less precise, frequent) -- and to prefer the longest matching event
at lookup time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.prefetch.base import Prefetcher, PrefetchRequest

_LINE_SHIFT = 6
_REGION_SHIFT = 11  # 2 KiB regions, as in the original proposal
_LINES_PER_REGION = 1 << (_REGION_SHIFT - _LINE_SHIFT)


class _Generation:
    """An in-flight region recording: trigger event + touched lines."""

    __slots__ = ("trigger_ip", "trigger_offset", "trigger_address",
                 "footprint")

    def __init__(self, trigger_ip: int, trigger_offset: int,
                 trigger_address: int) -> None:
        self.trigger_ip = trigger_ip
        self.trigger_offset = trigger_offset
        self.trigger_address = trigger_address
        self.footprint = 0


class BingoPrefetcher(Prefetcher):
    """Footprint prefetcher keyed on PC+Address / PC+Offset events."""

    name = "bingo"
    level = "L2"
    MAX_GENERATIONS = 64
    MAX_HISTORY = 4096

    def __init__(self, degree: int = 4) -> None:
        # Bingo replays whole footprints; ``degree`` caps the replay size.
        self.degree = max(degree, 8)
        self._scale = 1.0
        self._generations: "OrderedDict[int, _Generation]" = OrderedDict()
        #: Long event (PC, region address) -> footprint bitmap.
        self._long_history: "OrderedDict[int, int]" = OrderedDict()
        #: Short event (PC, offset) -> footprint bitmap.
        self._short_history: "OrderedDict[int, int]" = OrderedDict()

    def set_degree_scale(self, scale: float) -> None:
        self._scale = max(0.0, scale)

    @staticmethod
    def _long_key(ip: int, region: int) -> int:
        return (ip << 20) ^ region

    @staticmethod
    def _short_key(ip: int, offset: int) -> int:
        return (ip << 5) ^ offset

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        region = address >> _REGION_SHIFT
        offset = (address >> _LINE_SHIFT) & (_LINES_PER_REGION - 1)
        generation = self._generations.get(region)
        if generation is not None:
            generation.footprint |= 1 << offset
            self._generations.move_to_end(region)
            return []
        # Region trigger: retire the oldest generation into history if the
        # table is full, start recording, and look up a predicted footprint.
        if len(self._generations) >= self.MAX_GENERATIONS:
            old_region, old_generation = self._generations.popitem(last=False)
            self._retire(old_region, old_generation)
        generation = _Generation(ip, offset, region)
        generation.footprint = 1 << offset
        self._generations[region] = generation
        footprint = self._predict(ip, region, offset)
        if footprint is None:
            return []
        budget = max(0, int(round(self.degree * self._scale)))
        requests: List[PrefetchRequest] = []
        for line_offset in range(_LINES_PER_REGION):
            if len(requests) >= budget:
                break
            if line_offset == offset:
                continue
            if footprint & (1 << line_offset):
                target = ((region << _REGION_SHIFT)
                          | (line_offset << _LINE_SHIFT))
                requests.append(PrefetchRequest(
                    address=target, fill_level=2, trigger_ip=ip,
                    confidence=0.8))
        return requests

    def _predict(self, ip: int, region: int, offset: int) -> Optional[int]:
        long_hit = self._long_history.get(self._long_key(ip, region))
        if long_hit is not None:
            return long_hit
        return self._short_history.get(self._short_key(ip, offset))

    def _retire(self, region: int, generation: _Generation) -> None:
        if bin(generation.footprint).count("1") < 2:
            return  # Single-line regions teach nothing.
        long_key = self._long_key(generation.trigger_ip,
                                  generation.trigger_address)
        short_key = self._short_key(generation.trigger_ip,
                                    generation.trigger_offset)
        self._long_history[long_key] = generation.footprint
        self._short_history[short_key] = generation.footprint
        while len(self._long_history) > self.MAX_HISTORY:
            self._long_history.popitem(last=False)
        while len(self._short_history) > self.MAX_HISTORY:
            self._short_history.popitem(last=False)
