"""The online-policy protocol the prefetch filter chain drives.

An :class:`OnlinePolicy` is the one seam through which adaptive control
reaches the prefetch path.  The chain invokes it at exactly three
documented points:

``observe(features) -> action``
    At every policy-epoch boundary -- each
    :attr:`repro.config.LearnedConfig.epoch_accesses` demand L1D
    accesses, counted in ``PrefetchFilterChain.note_demand_access`` --
    with a :class:`PolicyFeatures` snapshot.  The return value is an
    integer action: an arm index ``>= 0`` re-targets the core's
    :class:`~repro.prefetch.learned.bandit.SelectedPrefetcher`;
    :data:`ACTION_KEEP` changes nothing.

``decide(trigger_ip, line, cycle) -> bool``
    Once per prefetch candidate that survived DSPatch/CLIP/the
    criticality gate, inside ``PrefetchFilterChain.handle``.  ``line``
    is the privatised line address (the key space of all cache
    structures).  Returning ``False`` drops the candidate; the drop is
    charged to the core's ``pf_dropped_filter`` counter like any other
    filter drop.

``update(line, trigger_ip, useful)``
    On prefetch-fate feedback: a demand hit on a prefetched line
    (``useful=True``, from the cache's prefetch-use listener) or the
    eviction of a never-used prefetched line (``useful=False``).
    ``trigger_ip`` is 0 when the feedback path does not carry it.

Policies must keep *all* learning state as explicit integers, derive
any randomness from the seeded :class:`XorShift` stream (the SIM010
lint bans ``random`` outside trace generation), and never accumulate
floats -- that contract is what lets a seeded learner stay bit-identical
across repeated runs, ``--jobs N`` process pools, and the event/batch
backends.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

#: ``observe`` return value meaning "keep the current configuration".
ACTION_KEEP = -1

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finaliser: one well-mixed 64-bit word from ``value``.

    Used both to whiten seeds (so nearby ``(seed, core_id)`` pairs give
    unrelated streams) and as the per-table hash salt generator for the
    perceptron filter.
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class XorShift:
    """xorshift64* with explicit integer state (no ``random`` module).

    The whole generator is one 64-bit integer; copying that integer
    copies the stream, so policy state snapshots stay trivially
    serialisable and bit-identical across backends.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        # A zero state would be a fixed point; mix64 never returns the
        # value that maps to zero for the seeds we feed it, but guard
        # anyway so *any* integer is a valid seed.
        self.state = mix64(seed) or 0x9E3779B97F4A7C15

    def next64(self) -> int:
        x = self.state
        x ^= (x << 13) & _MASK64
        x ^= x >> 7
        x ^= (x << 17) & _MASK64
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def below(self, bound: int) -> int:
        """Uniform-enough draw in ``[0, bound)`` from the top 32 bits."""
        return (self.next64() >> 32) % bound


def core_seed(seed: int, core_id: int) -> int:
    """The per-core stream seed derived from the configured seed."""
    return mix64(seed ^ (core_id * 0x9E3779B1))


class PolicyFeatures(NamedTuple):
    """Integer feature snapshot handed to ``observe`` each epoch.

    Counter fields are *cumulative* (policies diff consecutive
    snapshots); the ``*_permille`` fields are instantaneous gauges in
    [0, 1000].  Everything comes from the same per-component counters
    the PR 8 registry snapshots, so features are backend-identical by
    construction.
    """

    #: Engine cycle of the epoch boundary.
    cycle: int
    #: This core's issued prefetches (post-filter, post-dedup).
    pf_issued: int
    #: Prefetched lines later hit by demand (L1 + L2).
    pf_useful: int
    #: Candidates dropped by CLIP / gate / policy on this core.
    pf_dropped: int
    #: Demand L1D misses on this core.
    demand_misses: int
    #: Never-used prefetched lines evicted from L1 + L2 (pollution).
    useless_evictions: int
    #: DRAM data-bus utilisation since start (bank/bus pressure).
    dram_busy_permille: int
    #: Mesh flit-hops so far (NoC occupancy; shared across cores).
    noc_flit_hops: int
    #: Combined L1+L2 MSHR occupancy right now.
    mshr_occupancy_permille: int


class OnlinePolicy:
    """Base class; concrete policies override the hooks they need.

    The defaults make a policy that never intervenes, which is also the
    contract a recording stub in tests can rely on.
    """

    #: Display name ("bandit", "perceptron").
    name = "none"

    def observe(self, features: PolicyFeatures) -> int:
        """Digest one epoch snapshot; return an action (or ACTION_KEEP)."""
        return ACTION_KEEP

    def decide(self, trigger_ip: int, line: int, cycle: int) -> bool:
        """Admit (True) or drop (False) one surviving candidate."""
        return True

    def update(self, line: int, trigger_ip: int, useful: bool) -> None:
        """Learn from the fate of an issued prefetch."""

    def counters(self) -> Dict[str, int]:
        """Plain-int activity counters merged into ``core{N}.chain``."""
        return {}


__all__ = ["ACTION_KEEP", "OnlinePolicy", "PolicyFeatures", "XorShift",
           "core_seed", "mix64"]
