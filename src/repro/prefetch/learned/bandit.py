"""Contextual-bandit per-core prefetcher selection.

The lightweight-ML runtime-selection idiom (arxiv 2307.08635): instead
of committing one L1 prefetcher per scheme, each core carries a small
zoo of *arms* (:class:`SelectedPrefetcher`) and a :class:`BanditSelector`
re-picks the active arm every policy epoch from an integer reward that
trades demand coverage against bandwidth spent while the DRAM bus is
under pressure -- exactly the trade CLIP makes by hand.

All estimates are fixed-point integers (``REWARD_SHIFT`` fractional
bits); exploration draws come from the per-core seeded xorshift stream.
"""

from __future__ import annotations

from math import isqrt
from typing import Dict, List, Sequence, TYPE_CHECKING

from repro.prefetch.base import Prefetcher, PrefetchRequest, make_prefetcher
from repro.prefetch.learned.policy import (OnlinePolicy, PolicyFeatures,
                                           XorShift, core_seed)

if TYPE_CHECKING:
    from repro.config import LearnedConfig

#: Fixed-point fractional bits of rewards and Q estimates.
REWARD_SHIFT = 8
#: Exponential-window shift of the Q update (weight 1/2**EW_SHIFT).
EW_SHIFT = 2
#: UCB exploration-bonus multiplier (in REWARD_SHIFT fixed point terms).
UCB_SCALE = 3


class SelectedPrefetcher(Prefetcher):
    """Arm multiplexer standing in the L1 prefetcher slot.

    Delegates the training/candidate hooks to the *active* arm only --
    switching arms therefore starts the newcomer cold, which is the
    honest cost of runtime selection the bandit has to amortise.
    Degree-scale throttling applies to every arm so a swap lands in the
    regime the throttler already chose.
    """

    name = "selected"
    level = "L1"

    def __init__(self, arms: Sequence[str], degree: int) -> None:
        self.arms = tuple(arms)
        self.prefetchers: List[Prefetcher] = [
            make_prefetcher(arm, degree) for arm in self.arms]
        self.active = 0
        self.switches = 0

    def activate(self, arm: int) -> None:
        """Point the multiplexer at ``arm`` (a ``self.arms`` index)."""
        if not 0 <= arm < len(self.prefetchers):
            raise ValueError(f"arm {arm} outside [0, "
                             f"{len(self.prefetchers)})")
        if arm != self.active:
            self.active = arm
            self.switches += 1

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        return self.prefetchers[self.active].on_access(ip, address, hit,
                                                       cycle)

    def on_fill(self, address: int, cycle: int, prefetch: bool,
                ip: int = 0, issued_at: int = 0) -> List[PrefetchRequest]:
        return self.prefetchers[self.active].on_fill(address, cycle,
                                                     prefetch, ip,
                                                     issued_at)

    def on_prefetch_feedback(self, address: int, useful: bool) -> None:
        self.prefetchers[self.active].on_prefetch_feedback(address, useful)

    def set_degree_scale(self, scale: float) -> None:
        for prefetcher in self.prefetchers:
            prefetcher.set_degree_scale(scale)


class BanditSelector(OnlinePolicy):
    """Epsilon-greedy / UCB bandit over the prefetcher arms.

    Every epoch the selector settles the reward of the arm that just
    ran, updates that arm's exponentially-windowed Q estimate, and
    returns the next arm to activate.  The first ``len(arms)`` epochs
    are a deterministic round-robin warm-up so every estimate starts
    from one real measurement.
    """

    name = "bandit"

    __slots__ = ("arms", "counts", "q", "active", "ucb",
                 "epsilon_permille", "rng", "_base", "epochs", "switches",
                 "explorations", "updates", "feedback")

    def __init__(self, config: "LearnedConfig", core_id: int) -> None:
        self.arms = tuple(config.arms)
        n = len(self.arms)
        #: Epochs each arm has been charged with (settled rewards).
        self.counts = [0] * n
        #: Fixed-point (<< REWARD_SHIFT) reward estimates.
        self.q = [0] * n
        self.active = 0
        self.ucb = config.ucb
        self.epsilon_permille = config.epsilon_permille
        self.rng = XorShift(core_seed(config.seed, core_id))
        self._base: PolicyFeatures | None = None
        self.epochs = 0
        self.switches = 0
        self.explorations = 0
        self.updates = 0
        self.feedback = 0

    # -- protocol hooks ------------------------------------------------

    def observe(self, features: PolicyFeatures) -> int:
        self.epochs += 1
        base = self._base
        self._base = features
        if base is not None:
            arm = self.active
            reward = self._reward(base, features)
            self.counts[arm] += 1
            # Exponentially-windowed integer estimate; arithmetic shift
            # floors consistently, so the update is order-free exact.
            self.q[arm] += (reward - self.q[arm]) >> EW_SHIFT
            self.updates += 1
        chosen = self._choose()
        if chosen != self.active:
            self.switches += 1
            self.active = chosen
        return chosen

    def update(self, line: int, trigger_ip: int, useful: bool) -> None:
        # Per-prefetch fates are already folded into the epoch counters
        # the reward diffs; just account the feedback volume.
        self.feedback += 1

    def counters(self) -> Dict[str, int]:
        return {
            "policy_epochs": self.epochs,
            "policy_switches": self.switches,
            "policy_explorations": self.explorations,
            "policy_updates": self.updates,
            "policy_feedback": self.feedback,
            # One Q-table read-modify-write per settled epoch.
            "policy_table_accesses": self.updates,
        }

    # -- learning ------------------------------------------------------

    def _reward(self, prev: PolicyFeatures, now: PolicyFeatures) -> int:
        """Epoch reward, in REWARD_SHIFT fixed point.

        Useful prefetches pay +1 each; issued prefetches cost in
        proportion to the DRAM bus pressure they compete with (up to
        1/4 each at a saturated bus); pollution evictions cost 1/2
        each.  The "none" arm scores exactly 0, so prefetching arms
        must beat doing nothing *under the current bandwidth regime*.
        """
        d_useful = now.pf_useful - prev.pf_useful
        d_issued = now.pf_issued - prev.pf_issued
        d_pollution = now.useless_evictions - prev.useless_evictions
        busy = now.dram_busy_permille
        return ((d_useful << REWARD_SHIFT)
                - ((d_issued * busy) << REWARD_SHIFT) // 4000
                - (d_pollution << REWARD_SHIFT) // 2)

    def _choose(self) -> int:
        counts = self.counts
        n = len(self.arms)
        # Deterministic warm-up: measure every arm once, in order.
        for arm in range(n):
            if counts[arm] == 0:
                return arm
        if self.ucb:
            return self._choose_ucb()
        if self.rng.below(1000) < self.epsilon_permille:
            self.explorations += 1
            return self.rng.below(n)
        return self._argmax(self.q)

    def _choose_ucb(self) -> int:
        total = sum(self.counts)
        # bit_length() is an integer stand-in for log2(total); the
        # bonus is UCB_SCALE * sqrt(log2(total) / count) in the same
        # fixed point as q (isqrt of a << 2*REWARD_SHIFT quantity).
        log2 = total.bit_length()
        scores = [
            q + UCB_SCALE * isqrt((log2 << (2 * REWARD_SHIFT)) // count)
            for q, count in zip(self.q, self.counts)]
        return self._argmax(scores)

    @staticmethod
    def _argmax(values: List[int]) -> int:
        """Index of the maximum; ties break to the lowest index."""
        best = 0
        best_value = values[0]
        for index in range(1, len(values)):
            if values[index] > best_value:
                best = index
                best_value = values[index]
        return best


__all__ = ["BanditSelector", "SelectedPrefetcher", "EW_SHIFT",
           "REWARD_SHIFT", "UCB_SCALE"]
