"""Learned prefetch control: online policies driven by the filter chain.

The package implements the ROADMAP's "learned prefetch control" scheme
family behind one seam: an :class:`~repro.prefetch.learned.policy.
OnlinePolicy` attached to the per-core :class:`~repro.sim.hierarchy.
filters.PrefetchFilterChain`.  Two concrete learners ship:

* :class:`~repro.prefetch.learned.bandit.BanditSelector` -- contextual
  bandit *selection* of the per-core L1 prefetcher (arxiv 2307.08635
  idiom), acting through a :class:`~repro.prefetch.learned.bandit.
  SelectedPrefetcher` arm multiplexer;
* :class:`~repro.prefetch.learned.perceptron.PerceptronFilter` --
  hashed-perceptron prefetch *filtering* (arxiv 2403.15181 / PPF
  idiom), a learned drop-in alternative to CLIP's utility CAM.

Everything here is reproducibility-first: explicit integer state, a
seeded xorshift stream instead of ``random``, and no float
accumulation, so a seeded run is bit-identical across repeats, process
pools, and the event/batch backends (both share the same policy
instance by construction).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.prefetch.learned.bandit import BanditSelector, SelectedPrefetcher
from repro.prefetch.learned.perceptron import PerceptronFilter
from repro.prefetch.learned.policy import (ACTION_KEEP, OnlinePolicy,
                                           PolicyFeatures, XorShift)

if TYPE_CHECKING:
    from repro.config import LearnedConfig


def make_policy(config: "LearnedConfig", core_id: int) -> OnlinePolicy:
    """Instantiate the configured policy for one core.

    Each core gets its own learner (private state, per-core seed
    stream), mirroring the per-core CLIP/criticality structures.
    """
    if config.policy == "bandit":
        return BanditSelector(config, core_id)
    if config.policy == "perceptron":
        return PerceptronFilter(config, core_id)
    raise ValueError(f"unknown learned policy {config.policy!r}; "
                     f"choose 'bandit' or 'perceptron'")


__all__ = ["ACTION_KEEP", "BanditSelector", "OnlinePolicy",
           "PerceptronFilter", "PolicyFeatures", "SelectedPrefetcher",
           "XorShift", "make_policy"]
