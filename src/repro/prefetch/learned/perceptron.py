"""Hashed-perceptron prefetch filter: a learned utility CAM.

The PPF / two-level-predictor idiom (arxiv 2403.15181): each prefetch
candidate is scored by summing one small signed weight per feature
table (trigger IP, page, line offset, IP x page), hashed exactly like
the :class:`repro.cpu.branch.HashedPerceptronPredictor` lanes.  The
candidate is admitted when the sum clears an admission threshold that
*rises with DRAM bus pressure* -- under a saturated bus only candidates
the perceptron is confident about spend bandwidth, which is the same
bandwidth-regime adaptivity CLIP gets from its utility CAM.

Training is delayed until the prefetch's fate is known: a demand hit on
the prefetched line trains the contributing weights up, a useless
eviction trains them down (branch-predictor style, only below the
training margin).  The pending-index map is a bounded insertion-ordered
dict, so state stays finite and eviction order is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.prefetch.learned.policy import (ACTION_KEEP, OnlinePolicy,
                                           PolicyFeatures, mix64)

if TYPE_CHECKING:
    from repro.config import LearnedConfig

#: Extra admission threshold at a fully saturated DRAM bus.
PRESSURE_GAIN = 24
#: Train-on-correct margin (branch.py's theta): confident admissions
#: whose sum already exceeds threshold + margin stop training up.
TRAIN_MARGIN = 16


class PerceptronFilter(OnlinePolicy):
    """Per-core hashed-perceptron admission filter."""

    name = "perceptron"

    __slots__ = ("_lanes", "_entries", "_weight_max", "_weight_min",
                 "_base_threshold", "_adaptive", "threshold", "_pending",
                 "_pending_cap", "_probe_interval", "_since_probe",
                 "epochs", "decisions", "admits", "drops", "trainings",
                 "weight_updates", "feedback", "probes",
                 "table_accesses")

    def __init__(self, config: "LearnedConfig", core_id: int) -> None:
        # Per-table (weights, salt) lanes; salts are whitened from the
        # seed so tables disagree on aliasing, identically on every
        # core (one hardware design, many instances).
        self._lanes: List[Tuple[List[int], int]] = [
            ([0] * config.table_entries,
             mix64(config.seed ^ (table * 0x85EBCA6B)))
            for table in range(config.tables)]
        self._entries = config.table_entries
        self._weight_max = (1 << (config.weight_bits - 1)) - 1
        self._weight_min = -(1 << (config.weight_bits - 1))
        self._base_threshold = config.threshold
        self._adaptive = config.adaptive_threshold
        #: Current admission threshold (re-derived each epoch).
        self.threshold = config.threshold
        #: line -> (table indices, perceptron sum) of in-flight
        #: admissions awaiting fate feedback, insertion-ordered.
        self._pending: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        self._pending_cap = config.pending_entries
        #: Admit every Nth below-threshold candidate as a probe: the
        #: filter's only training signal is the fate of lines it
        #: admits, so a cold or over-strict filter must keep sampling
        #: (CLIP's exploration-window idea, counter-deterministic).
        self._probe_interval = config.probe_interval
        self._since_probe = 0
        self.epochs = 0
        self.decisions = 0
        self.admits = 0
        self.drops = 0
        self.trainings = 0
        self.weight_updates = 0
        self.feedback = 0
        self.probes = 0
        self.table_accesses = 0

    # -- protocol hooks ------------------------------------------------

    def observe(self, features: PolicyFeatures) -> int:
        self.epochs += 1
        if self._adaptive:
            # Bandwidth-adaptive admission bar: 0 extra on an idle bus,
            # PRESSURE_GAIN extra at full saturation.
            self.threshold = (self._base_threshold
                              + (features.dram_busy_permille
                                 * PRESSURE_GAIN) // 1000)
        return ACTION_KEEP

    def decide(self, trigger_ip: int, line: int, cycle: int) -> bool:
        self.decisions += 1
        self.table_accesses += len(self._lanes)
        ip_hash = trigger_ip >> 2
        page = line >> 6
        offset = line & 0x3F
        features = (ip_hash, page, offset * 0x9E3779B1, ip_hash ^ page)
        entries = self._entries
        total = 0
        indices = []
        lane = 0
        for weights, salt in self._lanes:
            # The finalizer is deliberately nonlinear (multiplies): a
            # plain xor-shift fold is GF(2)-linear, which makes the
            # collision structure between any two features independent
            # of the salt -- the seed would then be decorative.
            index = mix64(features[lane & 3] ^ salt) % entries
            indices.append(index)
            total += weights[index]
            lane += 1
        if total < self.threshold:
            self._since_probe += 1
            if self._since_probe < self._probe_interval:
                self.drops += 1
                return False
            # Probe admission: let this one through so its fate can
            # train the weights that would otherwise stay cold.
            self._since_probe = 0
            self.probes += 1
        self.admits += 1
        pending = self._pending
        if line not in pending and len(pending) >= self._pending_cap:
            # Drop the oldest in-flight record (insertion order).
            del pending[next(iter(pending))]
        pending[line] = (tuple(indices), total)
        return True

    def update(self, line: int, trigger_ip: int, useful: bool) -> None:
        self.feedback += 1
        entry = self._pending.pop(line, None)
        if entry is None:
            return
        indices, total = entry
        # Train on every miss-prediction (useless admission) and on
        # correct admissions that were not confidently above the bar.
        if useful and total > self.threshold + TRAIN_MARGIN:
            return
        delta = 1 if useful else -1
        weight_max = self._weight_max
        weight_min = self._weight_min
        lane = 0
        for weights, _salt in self._lanes:
            weight = weights[indices[lane]] + delta
            if weight > weight_max:
                weight = weight_max
            elif weight < weight_min:
                weight = weight_min
            weights[indices[lane]] = weight
            lane += 1
        self.trainings += 1
        self.weight_updates += lane

    def counters(self) -> Dict[str, int]:
        return {
            "policy_epochs": self.epochs,
            "policy_decisions": self.decisions,
            "policy_admits": self.admits,
            "policy_drops": self.drops,
            "policy_trainings": self.trainings,
            "policy_weight_updates": self.weight_updates,
            "policy_feedback": self.feedback,
            "policy_probes": self.probes,
            "policy_table_accesses": self.table_accesses,
        }


__all__ = ["PerceptronFilter", "PRESSURE_GAIN", "TRAIN_MARGIN"]
