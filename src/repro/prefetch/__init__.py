"""Hardware data prefetchers.

Implements the four state-of-the-art prefetchers the paper evaluates
(Berti, IPCP, SPP-PPF, Bingo) plus the classic IP-stride and stream
prefetchers the throttling literature targets.
"""

from repro.prefetch.base import Prefetcher, PrefetchRequest, make_prefetcher
from repro.prefetch.berti import BertiPrefetcher
from repro.prefetch.ipcp import IpcpPrefetcher
from repro.prefetch.spp_ppf import SppPpfPrefetcher
from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.stride import IpStridePrefetcher
from repro.prefetch.streamer import StreamPrefetcher

__all__ = [
    "Prefetcher", "PrefetchRequest", "make_prefetcher",
    "BertiPrefetcher", "IpcpPrefetcher", "SppPpfPrefetcher",
    "BingoPrefetcher", "IpStridePrefetcher", "StreamPrefetcher",
]
