"""Stream prefetcher (POWER4-style next-N-line streaming).

Detects unidirectional miss streams inside 4 KiB regions and runs ahead of
them; the other classic target of throttling techniques.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.prefetch.base import Prefetcher, PrefetchRequest

_LINE_SHIFT = 6
_REGION_SHIFT = 12  # 4 KiB tracking regions


class _Stream:
    __slots__ = ("last_line", "direction", "confidence")

    def __init__(self, line: int) -> None:
        self.last_line = line
        self.direction = 0
        self.confidence = 0


class StreamPrefetcher(Prefetcher):
    """Region-based stream detection with direction confirmation."""

    name = "streamer"
    level = "L1"
    MAX_REGIONS = 64
    CONFIRMATIONS = 2

    def __init__(self, degree: int = 4) -> None:
        self.degree = degree
        self._scale = 1.0
        self._regions: "OrderedDict[int, _Stream]" = OrderedDict()

    def set_degree_scale(self, scale: float) -> None:
        self._scale = max(0.0, scale)

    def on_access(self, ip: int, address: int, hit: bool,
                  cycle: int) -> List[PrefetchRequest]:
        line = address >> _LINE_SHIFT
        region = address >> _REGION_SHIFT
        stream = self._regions.get(region)
        if stream is None:
            if len(self._regions) >= self.MAX_REGIONS:
                self._regions.popitem(last=False)
            self._regions[region] = _Stream(line)
            return []
        self._regions.move_to_end(region)
        step = line - stream.last_line
        if step == 0:
            return []
        direction = 1 if step > 0 else -1
        if direction == stream.direction:
            stream.confidence = min(4, stream.confidence + 1)
        else:
            stream.direction = direction
            stream.confidence = 1
        stream.last_line = line
        if stream.confidence < self.CONFIRMATIONS:
            return []
        degree = max(0, int(round(self.degree * self._scale)))
        requests = []
        for distance in range(1, degree + 1):
            target = (line + direction * distance) << _LINE_SHIFT
            if target <= 0:
                break
            requests.append(PrefetchRequest(
                address=target, fill_level=2, trigger_ip=ip,
                confidence=stream.confidence / 4.0))
        return requests
