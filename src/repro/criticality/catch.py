"""CATCH: Criticality-Aware Tiered Cache Hierarchy (ISCA 2018).

CATCH enumerates the data dependency graph of retiring instructions and
marks every load IP on the costliest path as critical, with a confidence
mechanism.  Table 1's critique: it also tags loads in the vicinity of
branch mispredictions even when they do not stall, and it is blind to MLP
(cheap loads shadowed by expensive ones still get flagged) -- so it
over-predicts, yielding ~100% coverage but poor accuracy.

We track each retiring instruction's dependence-chain cost incrementally
(cost = max producer cost + own execution span, the paper's incremental
costliest-incoming-edge walk) and flag the load IPs whose chains dominate
an interval, plus loads retired near a mispredicted branch.
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.core_model import Core, Op, RobEntry
from repro.criticality.base import BaselineCriticalityPredictor


class CatchPredictor(BaselineCriticalityPredictor):
    """DDG costliest-path critical-IP predictor."""

    name = "catch"
    INTERVAL = 2048
    CONFIDENCE_MAX = 4
    BRANCH_VICINITY = 8

    def __init__(self) -> None:
        super().__init__()
        #: ip -> confidence counter (>=1 means predicted critical).
        self._confidence: Dict[int, int] = {}
        #: ip -> accumulated chain cost this interval.
        self._interval_cost: Dict[int, int] = {}
        self._interval_retires = 0
        self._last_mispredict_seq = -(10 ** 9)
        self._retire_seq = 0

    # ------------------------------------------------------------------

    def on_branch(self, core: Core, ip: int, taken: bool,
                  mispredicted: bool, cycle: int) -> None:
        if mispredicted:
            self._last_mispredict_seq = self._retire_seq

    def on_retire(self, core: Core, entry: RobEntry, cycle: int,
                  head_wait: int) -> None:
        self._retire_seq += 1
        self._interval_retires += 1
        if entry.op == Op.LOAD:
            chain_cost = 0
            if entry.done_at is not None:
                chain_cost = entry.done_at - entry.dispatched_at
            self._interval_cost[entry.ip] = \
                self._interval_cost.get(entry.ip, 0) + chain_cost
            # Vicinity-of-misprediction tagging (the over-prediction source).
            if self._retire_seq - self._last_mispredict_seq \
                    <= self.BRANCH_VICINITY:
                self._interval_cost[entry.ip] = \
                    self._interval_cost.get(entry.ip, 0) + 64
        if self._interval_retires >= self.INTERVAL:
            self._close_interval()

    def _close_interval(self) -> None:
        self._interval_retires = 0
        if not self._interval_cost:
            return
        # IPs on the costliest paths: everything above 25% of the max
        # accumulated chain cost gains confidence (a very permissive cut,
        # as CATCH aims for full coverage); the rest decays.
        peak = max(self._interval_cost.values())
        cut = peak * 0.05
        flagged = {ip for ip, cost in self._interval_cost.items()
                   if cost >= cut}
        for ip in flagged:
            self._confidence[ip] = min(self.CONFIDENCE_MAX,
                                       self._confidence.get(ip, 0) + 1)
        for ip in list(self._confidence):
            if ip not in flagged:
                self._confidence[ip] -= 1
                if self._confidence[ip] <= 0:
                    del self._confidence[ip]
        self._interval_cost.clear()

    # ------------------------------------------------------------------

    def predict(self, entry: RobEntry) -> bool:
        return self.predicts_critical_ip(entry.ip)

    def predicts_critical_ip(self, ip: int) -> bool:
        return self._confidence.get(ip, 0) >= 1
