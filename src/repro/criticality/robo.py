"""ROBO: ROB-occupancy-based criticality prediction (CAL 2021).

On a retirement stall, high ROB occupancy indicates the stalling load is
critical (the backlog behind it is large).  Table 1's critique: once an IP
is flagged, it is considered critical for the rest of execution --
static-critical, blind to recurrence-level dynamics.
"""

from __future__ import annotations

from typing import Set

from repro.cpu.core_model import Core, Op, RobEntry
from repro.criticality.base import BaselineCriticalityPredictor


class RoboPredictor(BaselineCriticalityPredictor):
    """ROB-occupancy thresholding, sticky per-IP flag."""

    name = "robo"
    #: Fraction of ROB capacity that counts as "high occupancy".
    OCCUPANCY_FRACTION = 0.5
    #: Minimum stall length that triggers consideration at all.
    STALL_THRESHOLD = 4

    def __init__(self) -> None:
        super().__init__()
        self._flagged: Set[int] = set()

    def on_retire(self, core: Core, entry: RobEntry, cycle: int,
                  head_wait: int) -> None:
        if entry.op != Op.LOAD or head_wait < self.STALL_THRESHOLD:
            return
        occupancy_limit = core.config.rob_entries * self.OCCUPANCY_FRACTION
        if core.rob_occupancy >= occupancy_limit:
            self._flagged.add(entry.ip)

    def predict(self, entry: RobEntry) -> bool:
        return self.predicts_critical_ip(entry.ip)

    def predicts_critical_ip(self, ip: int) -> bool:
        return ip in self._flagged
