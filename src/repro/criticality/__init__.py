"""Baseline load-criticality predictors (paper sections 2.2 and 3).

All six predictors the paper compares against (Fig. 4) plus the shared
measurement harness.  Each predictor observes core events through the same
hooks CLIP uses and exposes an IP-level criticality prediction; the paper's
central observation is that IP-granularity prediction over-predicts because
criticality is *dynamic* (Table 1).
"""

from repro.criticality.base import BaselineCriticalityPredictor
from repro.criticality.catch import CatchPredictor
from repro.criticality.fvp import FvpPredictor
from repro.criticality.fp import FocusedPrefetchingPredictor
from repro.criticality.cbp import CommitBlockPredictor
from repro.criticality.robo import RoboPredictor
from repro.criticality.crisp import CrispPredictor

_FACTORIES = {
    "catch": CatchPredictor,
    "fvp": FvpPredictor,
    "fp": FocusedPrefetchingPredictor,
    "cbp": CommitBlockPredictor,
    "robo": RoboPredictor,
    "crisp": CrispPredictor,
}


def make_criticality_predictor(name: str) -> BaselineCriticalityPredictor:
    """Instantiate a baseline criticality predictor by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown criticality predictor {name!r}; "
                         f"choose from {sorted(_FACTORIES)}") from None
    return factory()


def predictor_names() -> list:
    return sorted(_FACTORIES)


__all__ = [
    "BaselineCriticalityPredictor", "CatchPredictor", "FvpPredictor",
    "FocusedPrefetchingPredictor", "CommitBlockPredictor", "RoboPredictor",
    "CrispPredictor", "make_criticality_predictor", "predictor_names",
]
