"""CRISP: Critical Slice Prefetching (ASPLOS 2022).

CRISP calls a load critical when it misses the LLC *and* exhibits low
memory-level parallelism (an isolated off-chip miss hurts more than one of
many overlapping misses), using fixed thresholds.  Table 1's critique: it
ignores L1/L2-serviced loads that stall the ROB head -- precisely the loads
that dominate under constrained DRAM bandwidth (60% of stalls come from L2
and LLC hits, section 1).
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.core_model import Core, RobEntry, ServiceLevel
from repro.criticality.base import BaselineCriticalityPredictor


class CrispPredictor(BaselineCriticalityPredictor):
    """LLC-miss + low-MLP thresholding."""

    name = "crisp"
    MLP_THRESHOLD = 4
    LLC_MISS_COUNT_THRESHOLD = 2

    def __init__(self) -> None:
        super().__init__()
        self._llc_miss_count: Dict[int, int] = {}
        self._low_mlp_count: Dict[int, int] = {}

    def predict(self, entry: RobEntry) -> bool:
        return self.predicts_critical_ip(entry.ip)

    def train(self, core: Core, entry: RobEntry, cycle: int,
              critical: bool) -> None:
        if entry.service_level == ServiceLevel.DRAM:
            self._llc_miss_count[entry.ip] = \
                self._llc_miss_count.get(entry.ip, 0) + 1
            if entry.mlp_at_issue <= self.MLP_THRESHOLD:
                self._low_mlp_count[entry.ip] = \
                    self._low_mlp_count.get(entry.ip, 0) + 1

    def predicts_critical_ip(self, ip: int) -> bool:
        misses = self._llc_miss_count.get(ip, 0)
        if misses < self.LLC_MISS_COUNT_THRESHOLD:
            return False
        low_mlp = self._low_mlp_count.get(ip, 0)
        return low_mlp * 2 >= misses
