"""CBP: Commit Block Predictor (Ghose/Lee/Martinez, ISCA 2013).

Predicts loads that block commit (stall the ROB head), scoring IPs by
maximum and total stall time.  Table 1's critique (shared with ROBO): once
an IP is flagged it stays critical, blind to dynamic behaviour.
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.core_model import Core, Op, RobEntry
from repro.criticality.base import BaselineCriticalityPredictor


class CommitBlockPredictor(BaselineCriticalityPredictor):
    """Total/max-stall-time commit-block prediction (static per IP)."""

    name = "cbp"
    #: An IP whose worst single stall exceeds this, or whose accumulated
    #: stall exceeds TOTAL_STALL_THRESHOLD, is flagged critical for good.
    MAX_STALL_THRESHOLD = 24
    TOTAL_STALL_THRESHOLD = 256

    def __init__(self) -> None:
        super().__init__()
        self._total_stall: Dict[int, int] = {}
        self._flagged: Dict[int, bool] = {}

    def on_retire(self, core: Core, entry: RobEntry, cycle: int,
                  head_wait: int) -> None:
        if entry.op != Op.LOAD or head_wait <= 0:
            return
        ip = entry.ip
        total = self._total_stall.get(ip, 0) + head_wait
        self._total_stall[ip] = total
        if head_wait >= self.MAX_STALL_THRESHOLD \
                or total >= self.TOTAL_STALL_THRESHOLD:
            self._flagged[ip] = True

    def predict(self, entry: RobEntry) -> bool:
        return self.predicts_critical_ip(entry.ip)

    def predicts_critical_ip(self, ip: int) -> bool:
        return self._flagged.get(ip, False)
