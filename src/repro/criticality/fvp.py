"""FVP: Focused Value Prediction's criticality detector (ISCA 2020).

FVP marks instructions whose execution is still in flight when they enter
the retire-width window, and identifies the roots of data-dependency
chains.  Table 1's critique: any load that produces a value consumed by a
nearby instruction gets tagged, so FVP "ends up tagging excessively" --
full coverage, poor accuracy.
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.core_model import Core, Op, RobEntry
from repro.criticality.base import BaselineCriticalityPredictor


class FvpPredictor(BaselineCriticalityPredictor):
    """Dependence-root / retire-window in-flight tagging."""

    name = "fvp"
    CONFIDENCE_MAX = 8

    def __init__(self) -> None:
        super().__init__()
        self._confidence: Dict[int, int] = {}

    def on_retire(self, core: Core, entry: RobEntry, cycle: int,
                  head_wait: int) -> None:
        if entry.op != Op.LOAD:
            return
        # "Root of a data dependency chain": the load produced a value some
        # other instruction consumed.  "In-flight in the retire window":
        # it was still executing when it reached the ROB head.
        in_flight_at_head = head_wait > 0
        is_chain_root = entry.consumer_count > 0
        if is_chain_root or in_flight_at_head:
            self._confidence[entry.ip] = min(
                self.CONFIDENCE_MAX, self._confidence.get(entry.ip, 0) + 1)
        else:
            current = self._confidence.get(entry.ip)
            if current is not None:
                if current <= 1:
                    del self._confidence[entry.ip]
                else:
                    self._confidence[entry.ip] = current - 1

    def predict(self, entry: RobEntry) -> bool:
        return self.predicts_critical_ip(entry.ip)

    def predicts_critical_ip(self, ip: int) -> bool:
        return self._confidence.get(ip, 0) >= 2
