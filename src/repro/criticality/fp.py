"""FP: Focused Prefetching / LIMCOS (ICS 2008).

Focused Prefetching observed that a few loads incur the majority of commit
stalls (LIMCOS) and steers the prefetcher to exactly those.  The predictor
accumulates per-IP commit-stall cycles over an epoch and flags the smallest
IP set covering 90% of the stall mass.  Table 1's critique: purely
stall-mass driven, so it effectively marks most L3 misses critical and
ignores IPs with modest stalls.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cpu.core_model import Core, Op, RobEntry
from repro.criticality.base import BaselineCriticalityPredictor


class FocusedPrefetchingPredictor(BaselineCriticalityPredictor):
    """LIMCOS: loads incurring the majority of commit stalls."""

    name = "fp"
    EPOCH_RETIRES = 2048
    STALL_MASS_FRACTION = 0.90

    def __init__(self) -> None:
        super().__init__()
        self._stall_cycles: Dict[int, int] = {}
        self._epoch_retires = 0
        self._critical_set: Set[int] = set()

    def on_retire(self, core: Core, entry: RobEntry, cycle: int,
                  head_wait: int) -> None:
        self._epoch_retires += 1
        if entry.op == Op.LOAD and head_wait > 0:
            self._stall_cycles[entry.ip] = \
                self._stall_cycles.get(entry.ip, 0) + head_wait
        if self._epoch_retires >= self.EPOCH_RETIRES:
            self._close_epoch()

    def _close_epoch(self) -> None:
        self._epoch_retires = 0
        total = sum(self._stall_cycles.values())
        self._critical_set = set()
        if total:
            accumulated = 0
            for ip, stall in sorted(self._stall_cycles.items(),
                                    key=lambda item: -item[1]):
                self._critical_set.add(ip)
                accumulated += stall
                if accumulated >= total * self.STALL_MASS_FRACTION:
                    break
        self._stall_cycles.clear()

    def predict(self, entry: RobEntry) -> bool:
        return self.predicts_critical_ip(entry.ip)

    def predicts_critical_ip(self, ip: int) -> bool:
        return ip in self._critical_set
