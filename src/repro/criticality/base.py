"""Shared harness for baseline criticality predictors.

Ground truth follows the paper's definition: a load instance is *critical*
if it stalls the head of the ROB while being serviced by L2, LLC or DRAM.
Accuracy = correct critical predictions / all critical predictions;
coverage = critical instances predicted / all critical instances -- both
measured at instance granularity, which is exactly where IP-indexed
predictors lose (Fig. 4, Table 1).
"""

from __future__ import annotations

from repro.cpu.core_model import Core, RobEntry, ServiceLevel


class CriticalityMeasurement:
    """Instance-level accuracy/coverage accounting."""

    def __init__(self) -> None:
        self.predicted = 0
        self.predicted_correct = 0
        self.actual = 0
        self.covered = 0

    def note(self, predicted: bool, actual: bool) -> None:
        if predicted:
            self.predicted += 1
            if actual:
                self.predicted_correct += 1
        if actual:
            self.actual += 1
            if predicted:
                self.covered += 1

    @property
    def accuracy(self) -> float:
        if not self.predicted:
            return 0.0
        return self.predicted_correct / self.predicted

    @property
    def coverage(self) -> float:
        if not self.actual:
            return 0.0
        return self.covered / self.actual


class BaselineCriticalityPredictor:
    """Base class: hook registration + measurement; subclasses implement
    ``predict`` (before training) and ``train`` (after)."""

    name = "base"

    def __init__(self) -> None:
        self.measurement = CriticalityMeasurement()

    def attach(self, core: Core) -> None:
        core.load_response_hooks.append(self._on_load_response)
        core.retire_hooks.append(self._on_retire)
        core.branch_hooks.append(self._on_branch)

    # -- subclass surface ----------------------------------------------

    def predict(self, entry: RobEntry) -> bool:
        """Would this predictor call the load instance critical?"""
        raise NotImplementedError

    def train(self, core: Core, entry: RobEntry, cycle: int,
              critical: bool) -> None:
        """Learn from the resolved outcome."""

    def on_retire(self, core: Core, entry: RobEntry, cycle: int,
                  head_wait: int) -> None:
        """Optional retirement-side learning."""

    def on_branch(self, core: Core, ip: int, taken: bool,
                  mispredicted: bool, cycle: int) -> None:
        """Optional branch-side learning (CATCH uses this)."""

    def predicts_critical_ip(self, ip: int) -> bool:
        """Prefetch gating interface (Fig. 5): is this IP critical?"""
        raise NotImplementedError

    # -- plumbing --------------------------------------------------------

    def _on_load_response(self, core: Core, entry: RobEntry, cycle: int,
                          rob_stalled: bool, self_stalled: bool) -> None:
        if entry.service_level < ServiceLevel.L2:
            return
        critical = self_stalled
        predicted = self.predict(entry)
        self.measurement.note(predicted, critical)
        self.train(core, entry, cycle, critical)

    def _on_retire(self, core: Core, entry: RobEntry, cycle: int,
                   head_wait: int) -> None:
        self.on_retire(core, entry, cycle, head_wait)

    def _on_branch(self, core: Core, ip: int, taken: bool,
                   mispredicted: bool, cycle: int) -> None:
        self.on_branch(core, ip, taken, mispredicted, cycle)
