"""Cache replacement policies.

The baseline system (Table 3) uses LRU-class policies at L1, SRRIP at L2,
and Mockingjay at the LLC.  Mockingjay proper samples reuse intervals and
mimics Belady's MIN; ``MockingjayLite`` here keeps its essence -- a PC-
indexed reuse-interval predictor steering eviction toward the line whose
next use is farthest in the future -- without the full sampled-cache
machinery (see DESIGN.md section 2).
"""

from __future__ import annotations

from typing import List


class ReplacementPolicy:
    """Per-cache replacement state; one instance per cache."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways

    def on_hit(self, set_index: int, way: int, now: int, pc: int) -> None:
        raise NotImplementedError

    def on_fill(self, set_index: int, way: int, now: int, pc: int,
                prefetch: bool = False) -> None:
        raise NotImplementedError

    def victim(self, set_index: int, now: int,
               valid: List[bool]) -> int:
        """Pick a victim way; empty ways are chosen by the cache itself."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least recently used."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = 0

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_hit(self, set_index: int, way: int, now: int, pc: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, now: int, pc: int,
                prefetch: bool = False) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int, now: int, valid: List[bool]) -> int:
        stamps = self._stamp[set_index]
        best_way = 0
        best_stamp = stamps[0]
        for way in range(1, self.ways):
            if stamps[way] < best_stamp:
                best_stamp = stamps[way]
                best_way = way
        return best_way


class NruPolicy(ReplacementPolicy):
    """Not-recently-used (single reference bit per line)."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._referenced = [[False] * ways for _ in range(num_sets)]

    def _mark(self, set_index: int, way: int) -> None:
        bits = self._referenced[set_index]
        bits[way] = True
        if all(bits):
            for other in range(self.ways):
                if other != way:
                    bits[other] = False

    def on_hit(self, set_index: int, way: int, now: int, pc: int) -> None:
        self._mark(set_index, way)

    def on_fill(self, set_index: int, way: int, now: int, pc: int,
                prefetch: bool = False) -> None:
        self._mark(set_index, way)

    def victim(self, set_index: int, now: int, valid: List[bool]) -> int:
        bits = self._referenced[set_index]
        for way in range(self.ways):
            if not bits[way]:
                return way
        return 0


class SrripPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (2-bit RRPV)."""

    MAX_RRPV = 3

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._rrpv = [[self.MAX_RRPV] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int, now: int, pc: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int, now: int, pc: int,
                prefetch: bool = False) -> None:
        # Long re-reference prediction on insert; prefetched lines get the
        # distant value so inaccurate prefetches age out quickly.
        self._rrpv[set_index][way] = (self.MAX_RRPV - 1 if not prefetch
                                      else self.MAX_RRPV)

    def victim(self, set_index: int, now: int, valid: List[bool]) -> int:
        rrpvs = self._rrpv[set_index]
        while True:
            for way in range(self.ways):
                if rrpvs[way] >= self.MAX_RRPV:
                    return way
            for way in range(self.ways):
                rrpvs[way] += 1


class MockingjayLitePolicy(ReplacementPolicy):
    """Belady-mimicking eviction via a PC-indexed reuse-interval predictor.

    On a hit we observe the line's actual reuse interval and fold it into an
    exponentially weighted estimate for the filling PC.  The victim is the
    line whose *estimated time to reuse* is farthest away (lines whose PC has
    no history are assumed streaming and evicted first), which is the core
    idea of Mockingjay's ETR ranking.
    """

    _TABLE_SIZE = 2048
    _NEVER = 1 << 30

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._last_access = [[0] * ways for _ in range(num_sets)]
        self._fill_pc = [[0] * ways for _ in range(num_sets)]
        self._predicted: dict[int, float] = {}

    def _pc_index(self, pc: int) -> int:
        return (pc ^ (pc >> 11)) % self._TABLE_SIZE

    def on_hit(self, set_index: int, way: int, now: int, pc: int) -> None:
        observed = now - self._last_access[set_index][way]
        index = self._pc_index(self._fill_pc[set_index][way])
        previous = self._predicted.get(index)
        if previous is None:
            self._predicted[index] = float(observed)
        else:
            self._predicted[index] = 0.75 * previous + 0.25 * observed
        self._last_access[set_index][way] = now

    def on_fill(self, set_index: int, way: int, now: int, pc: int,
                prefetch: bool = False) -> None:
        self._last_access[set_index][way] = now
        self._fill_pc[set_index][way] = pc

    def victim(self, set_index: int, now: int, valid: List[bool]) -> int:
        best_way = 0
        best_score = -1.0
        for way in range(self.ways):
            index = self._pc_index(self._fill_pc[set_index][way])
            predicted = self._predicted.get(index)
            if predicted is None:
                # No reuse history: assume streaming, evict immediately.
                score = float(self._NEVER)
            else:
                elapsed = now - self._last_access[set_index][way]
                score = predicted - elapsed
                if score < 0:
                    # Overdue for reuse and has not come back: likely dead.
                    score = float(self._NEVER) + elapsed
            # Highest estimated time-to-reuse loses its slot.
            if score > best_score:
                best_score = score
                best_way = way
        return best_way


class LfuPolicy(ReplacementPolicy):
    """Least frequently used (the victim-selection rule CLIP's criticality
    filter applies to its entries; offered for caches too)."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._count = [[0] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int, now: int, pc: int) -> None:
        self._count[set_index][way] += 1

    def on_fill(self, set_index: int, way: int, now: int, pc: int,
                prefetch: bool = False) -> None:
        self._count[set_index][way] = 1

    def victim(self, set_index: int, now: int, valid: List[bool]) -> int:
        counts = self._count[set_index]
        best_way = 0
        for way in range(1, self.ways):
            if counts[way] < counts[best_way]:
                best_way = way
        return best_way


_POLICIES = {
    "lru": LruPolicy,
    "nru": NruPolicy,
    "lfu": LfuPolicy,
    "srrip": SrripPolicy,
    "mockingjay": MockingjayLitePolicy,
}


def make_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by configuration name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}") from None
    return factory(num_sets, ways)


def policy_names() -> List[str]:
    return sorted(_POLICIES)
