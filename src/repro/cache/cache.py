"""Set-associative cache with per-line prefetch metadata.

The cache is *functional* (tags and metadata only); timing is composed by
the memory system around it.  Per-line metadata carries what the paper's
accounting needs: dirty bits for writeback bandwidth, and prefetch/useful
bits for prefetch accuracy and coverage measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.invariants import SimulationInvariantError, check
from repro.config import CacheConfig
from repro.cache.replacement import make_policy


class LineState:
    """Metadata of one resident cache line."""

    __slots__ = ("tag", "dirty", "prefetched", "useful", "trigger_ip")

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.dirty = False
        self.prefetched = False
        self.useful = False
        self.trigger_ip = 0


@dataclass(slots=True)
class EvictedLine:
    """What fell out of the cache on a fill."""

    line: int
    dirty: bool
    prefetched: bool
    useful: bool


class CacheStats:
    """Access-side statistics for one cache instance."""

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.demand_accesses = 0
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.useless_evictions = 0
        self.writebacks = 0

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    @property
    def prefetch_accuracy(self) -> float:
        if not self.prefetch_fills:
            return 0.0
        return self.useful_prefetches / self.prefetch_fills


class Cache:
    """One cache level (or one LLC slice)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.line_shift = config.line_size.bit_length() - 1
        self.policy = make_policy(config.replacement, self.num_sets,
                                  self.ways)
        # Per-set tag -> way map plus way-indexed line state.
        self._map: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._lines: List[List[Optional[LineState]]] = [
            [None] * self.ways for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        #: Called with (line, trigger_ip) on the first demand use of a
        #: prefetched line (prefetch-usefulness feedback, PPF training).
        self.prefetch_use_listener = None
        #: Called with (line,) when a never-used prefetched line is evicted.
        self.useless_eviction_listener = None

    # ------------------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def probe(self, line: int) -> bool:
        """Tag check without touching replacement or statistics."""
        num_sets = self.num_sets
        return (line // num_sets) in self._map[line % num_sets]

    def access(self, line: int, pc: int, now: int, is_write: bool = False,
               is_demand: bool = True) -> bool:
        """Look up ``line``; returns hit/miss and updates recency + stats."""
        num_sets = self.num_sets
        set_index = line % num_sets
        tag = line // num_sets
        stats = self.stats
        stats.accesses += 1
        if is_demand:
            stats.demand_accesses += 1
        way = self._map[set_index].get(tag)
        if way is None:
            stats.misses += 1
            if is_demand:
                stats.demand_misses += 1
            return False
        stats.hits += 1
        if is_demand:
            stats.demand_hits += 1
        state = self._lines[set_index][way]
        if state is None:
            raise SimulationInvariantError(
                f"{self.config.name}: tag map points at empty way "
                f"{way} of set {set_index}")
        if is_write:
            state.dirty = True
        if state.prefetched and not state.useful and is_demand:
            state.useful = True
            stats.useful_prefetches += 1
            if self.prefetch_use_listener is not None:
                self.prefetch_use_listener(line, state.trigger_ip)
        self.policy.on_hit(set_index, way, now, pc)
        return True

    def fill(self, line: int, pc: int, now: int, dirty: bool = False,
             prefetch: bool = False, trigger_ip: int = 0,
             ) -> Optional[EvictedLine]:
        """Install ``line``; returns the evicted line, if any.

        Filling a line that is already resident only updates metadata (this
        happens when a demand and a prefetch race through different paths).
        """
        set_index = self.set_index(line)
        tag = line // self.num_sets
        existing = self._map[set_index].get(tag)
        if existing is not None:
            state = self._lines[set_index][existing]
            check(state is not None,
                  "%s: tag map points at empty way %d of set %d",
                  self.config.name, existing, set_index)
            state.dirty = state.dirty or dirty
            return None
        way = self._find_way(set_index, now)
        evicted = self._evict(set_index, way)
        state = LineState(tag)
        state.dirty = dirty
        state.prefetched = prefetch
        state.trigger_ip = trigger_ip
        self._lines[set_index][way] = state
        self._map[set_index][tag] = way
        self.policy.on_fill(set_index, way, now, pc, prefetch=prefetch)
        if prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, line: int) -> Optional[EvictedLine]:
        """Remove ``line`` if resident; returns its state for writeback."""
        set_index = self.set_index(line)
        tag = line // self.num_sets
        way = self._map[set_index].get(tag)
        if way is None:
            return None
        return self._evict(set_index, way)

    # ------------------------------------------------------------------

    def _find_way(self, set_index: int, now: int) -> int:
        lines = self._lines[set_index]
        for way in range(self.ways):
            if lines[way] is None:
                return way
        valid = [True] * self.ways
        return self.policy.victim(set_index, now, valid)

    def _evict(self, set_index: int, way: int) -> Optional[EvictedLine]:
        state = self._lines[set_index][way]
        if state is None:
            return None
        self._lines[set_index][way] = None
        del self._map[set_index][state.tag]
        line = state.tag * self.num_sets + set_index
        if state.prefetched and not state.useful:
            self.stats.useless_evictions += 1
            if self.useless_eviction_listener is not None:
                self.useless_eviction_listener(line)
        return EvictedLine(line=line, dirty=state.dirty,
                           prefetched=state.prefetched, useful=state.useful)

    @property
    def occupancy(self) -> int:
        return sum(len(m) for m in self._map)
