"""Miss status holding registers.

MSHRs bound the number of outstanding misses per cache (Table 3: 8/16/32 at
L1I/L1D/L2, 64 per LLC slice).  Requests to a line already outstanding merge
into the existing entry; a demand merging into a prefetch-initiated entry is
the paper's *late prefetch* (still counted as accurate, section 1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.analysis.invariants import SimulationInvariantError


class Mshr:
    """One outstanding miss."""

    __slots__ = ("line", "is_prefetch", "crit", "trigger_ip", "waiters",
                 "demand_merged", "allocated_at", "address", "dirty")

    def __init__(self, line: int, is_prefetch: bool, crit: bool,
                 trigger_ip: int, allocated_at: int) -> None:
        self.line = line
        self.is_prefetch = is_prefetch
        self.crit = crit
        self.trigger_ip = trigger_ip
        self.waiters: List[Callable] = []
        self.demand_merged = False
        self.allocated_at = allocated_at
        #: Original (un-privatised) byte address, for prefetcher training.
        self.address = 0
        #: A store merged in: fill the line dirty.
        self.dirty = False


class MshrFile:
    """A bounded set of MSHRs plus an overflow pending queue.

    When every register is busy, new misses wait in ``pending`` and are
    replayed by the owning cache as registers free up -- this is the queueing
    back-pressure that inflates miss latency when DRAM bandwidth is
    constrained (paper Fig. 3).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.entries: Dict[int, Mshr] = {}
        self.pending: Deque[Tuple] = deque()
        self.peak_occupancy = 0
        self.merges = 0
        self.late_prefetch_merges = 0

    def lookup(self, line: int) -> Optional[Mshr]:
        return self.entries.get(line)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def allocate(self, line: int, is_prefetch: bool, crit: bool,
                 trigger_ip: int, now: int) -> Mshr:
        if line in self.entries:
            raise ValueError(f"line {line:#x} already outstanding")
        if self.full:
            raise SimulationInvariantError(
                "MSHR file full; caller must check first")
        mshr = Mshr(line, is_prefetch, crit, trigger_ip, now)
        self.entries[line] = mshr
        self.peak_occupancy = max(self.peak_occupancy, len(self.entries))
        return mshr

    def merge(self, mshr: Mshr, waiter: Optional[Callable],
              is_prefetch: bool) -> None:
        """Merge a new request for the same line into ``mshr``."""
        self.merges += 1
        if waiter is not None:
            mshr.waiters.append(waiter)
        if not is_prefetch:
            if mshr.is_prefetch and not mshr.demand_merged:
                self.late_prefetch_merges += 1
            mshr.demand_merged = True

    def release(self, line: int) -> Mshr:
        """Remove and return the completed entry for ``line``."""
        return self.entries.pop(line)
