"""Cache substrate: set-associative caches, MSHRs, replacement policies."""

from repro.cache.cache import Cache, EvictedLine, LineState
from repro.cache.mshr import Mshr, MshrFile
from repro.cache.replacement import make_policy

__all__ = ["Cache", "EvictedLine", "LineState", "Mshr", "MshrFile",
           "make_policy"]
