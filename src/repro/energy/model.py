"""Dynamic energy of the memory hierarchy.

The paper feeds CACTI-P (7 nm) and the Micron DRAM power calculator with
per-structure access counts.  We embed CACTI-class per-access energies
(order-of-magnitude figures for 7 nm SRAM arrays and DDR4 devices; only
*relative* energy matters for the paper's claims) and aggregate them with
the simulation's access counts.  CLIP's own structures are charged too, as
the paper notes its energy accounting includes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.stats import SimulationResult

#: Per-access dynamic energies in picojoules (7 nm class, tag+data).
ENERGY_PJ = {
    "l1d_access": 12.0,
    "l2_access": 35.0,
    "llc_access": 90.0,
    "noc_flit_hop": 4.0,
    "dram_read": 15_000.0,
    "dram_write": 15_500.0,
    "dram_activate": 9_000.0,
    # CLIP structures (Table 2 scale: a few hundred bytes each).
    "clip_filter": 0.6,
    "clip_predictor": 0.8,
    "clip_utility_cam": 1.5,
}


@dataclass
class EnergyBreakdown:
    """Dynamic energy by component, in millijoules."""

    components_mj: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mj(self) -> float:
        return sum(self.components_mj.values())


def dynamic_energy(result: SimulationResult,
                   clip_events: int = 0) -> EnergyBreakdown:
    """Aggregate dynamic energy from a simulation result.

    ``clip_events`` approximates CLIP-structure activity (filter/predictor
    lookups); callers may pass the number of L1D accesses when CLIP ran.
    """
    breakdown = EnergyBreakdown()
    levels = result.levels
    picojoules: Dict[str, float] = {}
    l1 = levels.get("L1D")
    if l1 is not None:
        accesses = l1.demand_accesses + l1.prefetch_fills
        picojoules["L1D"] = accesses * ENERGY_PJ["l1d_access"]
    l2 = levels.get("L2")
    if l2 is not None:
        accesses = l2.demand_accesses + l2.prefetch_fills
        picojoules["L2"] = accesses * ENERGY_PJ["l2_access"]
    llc = levels.get("LLC")
    if llc is not None:
        accesses = llc.demand_accesses + llc.prefetch_fills
        picojoules["LLC"] = accesses * ENERGY_PJ["llc_access"]
    # Flit-hops approximated as flits x mean hop count (mesh diameter / 3
    # when packet-level hop data is unavailable).
    mean_hops = 3.0
    picojoules["NoC"] = (result.noc.flits * mean_hops
                         * ENERGY_PJ["noc_flit_hop"])
    picojoules["DRAM"] = (
        result.dram.reads * ENERGY_PJ["dram_read"]
        + result.dram.writes * ENERGY_PJ["dram_write"]
        + result.dram.row_misses * ENERGY_PJ["dram_activate"])
    if clip_events:
        picojoules["CLIP"] = clip_events * (
            ENERGY_PJ["clip_filter"] + ENERGY_PJ["clip_predictor"]
            + ENERGY_PJ["clip_utility_cam"])
    breakdown.components_mj = {
        name: pj / 1e9 for name, pj in picojoules.items()
    }
    return breakdown
