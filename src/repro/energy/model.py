"""Dynamic energy of the memory hierarchy.

The paper feeds CACTI-P (7 nm) and the Micron DRAM power calculator with
per-structure access counts.  We embed CACTI-class per-access energies
(order-of-magnitude figures for 7 nm SRAM arrays and DDR4 devices; only
*relative* energy matters for the paper's claims) and aggregate them with
the simulation's access counts.  CLIP's own structures are charged too, as
the paper notes its energy accounting includes them.

Since the per-component counter layer (``repro.sim.counters``) landed,
the model is *counter-driven*: exact flit-hop counts (real XY route
lengths), per-channel activates, and CLIP filter/predictor/utility-CAM
accesses come straight off ``SimulationResult.counters``.  Results that
predate the counter layer (hand-built results in tests, old cache
entries) fall back to the previous level-stats approximation, including
its ``mean hops = 3.0`` NoC estimate.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.stats import SimulationResult

#: Per-access dynamic energies in picojoules (7 nm class, tag+data).
ENERGY_PJ = {
    "l1d_access": 12.0,
    "l2_access": 35.0,
    "llc_access": 90.0,
    "noc_flit_hop": 4.0,
    "dram_read": 15_000.0,
    "dram_write": 15_500.0,
    "dram_activate": 9_000.0,
    # CLIP structures (Table 2 scale: a few hundred bytes each).
    "clip_filter": 0.6,
    "clip_predictor": 0.8,
    "clip_utility_cam": 1.5,
    # Learned-policy tables (bandit Q entries / perceptron weight
    # lanes; same few-hundred-byte class as the CLIP structures).
    "policy_table": 0.9,
}

#: NoC hop estimate used only by the legacy (counter-less) fallback.
LEGACY_MEAN_HOPS = 3.0


@dataclass
class EnergyBreakdown:
    """Dynamic energy by component, in millijoules."""

    components_mj: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mj(self) -> float:
        return sum(self.components_mj.values())


def dynamic_energy(result: SimulationResult,
                   clip_events: Optional[int] = None) -> EnergyBreakdown:
    """Aggregate dynamic energy from a simulation result.

    Counter-driven when ``result.counters`` is populated (every fresh
    simulation); otherwise the legacy level-stats approximation.

    ``clip_events`` is deprecated and ignored: CLIP structure activity
    is derived from the simulation's own filter/predictor/utility-CAM
    access counters instead of a caller-supplied guess.
    """
    if clip_events is not None:
        warnings.warn(
            "dynamic_energy(clip_events=...) is deprecated and ignored: "
            "CLIP structure activity now comes from "
            "SimulationResult.counters (the per-component counter layer)",
            DeprecationWarning, stacklevel=2)
    if result.counters:
        picojoules = _counter_picojoules(result.counters)
    else:
        picojoules = _legacy_picojoules(result)
    breakdown = EnergyBreakdown()
    breakdown.components_mj = {
        name: pj / 1e9 for name, pj in picojoules.items()
    }
    return breakdown


def _counter_picojoules(
        counters: Dict[str, Dict[str, int]]) -> Dict[str, float]:
    """Exact per-component energy from the counter snapshot."""
    pj: Dict[str, float] = {}

    def charge(component: str, picojoules: float) -> None:
        pj[component] = pj.get(component, 0.0) + picojoules

    for group, values in counters.items():
        if group.endswith(".l1d"):
            accesses = values["demand_accesses"] + values["prefetch_fills"]
            charge("L1D", accesses * ENERGY_PJ["l1d_access"])
        elif group.endswith(".l2"):
            accesses = values["demand_accesses"] + values["prefetch_fills"]
            charge("L2", accesses * ENERGY_PJ["l2_access"])
        elif group.startswith("llc.slice"):
            accesses = values["demand_accesses"] + values["prefetch_fills"]
            charge("LLC", accesses * ENERGY_PJ["llc_access"])
        elif group == "noc":
            charge("NoC", values["flit_hops"] * ENERGY_PJ["noc_flit_hop"])
        elif group.startswith("dram.ch"):
            charge("DRAM",
                   values["reads"] * ENERGY_PJ["dram_read"]
                   + values["writes"] * ENERGY_PJ["dram_write"]
                   + values["activates"] * ENERGY_PJ["dram_activate"])
        elif group.endswith(".chain"):
            clip_pj = (
                values.get("clip_filter_accesses", 0)
                * ENERGY_PJ["clip_filter"]
                + values.get("clip_predictor_accesses", 0)
                * ENERGY_PJ["clip_predictor"]
                + values.get("clip_utility_cam_accesses", 0)
                * ENERGY_PJ["clip_utility_cam"])
            if clip_pj:
                charge("CLIP", clip_pj)
            policy_pj = (values.get("policy_table_accesses", 0)
                         * ENERGY_PJ["policy_table"])
            if policy_pj:
                charge("Policy", policy_pj)
    return pj


def _legacy_picojoules(result: SimulationResult) -> Dict[str, float]:
    """Level-stats approximation for results without counters."""
    levels = result.levels
    picojoules: Dict[str, float] = {}
    l1 = levels.get("L1D")
    if l1 is not None:
        accesses = l1.demand_accesses + l1.prefetch_fills
        picojoules["L1D"] = accesses * ENERGY_PJ["l1d_access"]
    l2 = levels.get("L2")
    if l2 is not None:
        accesses = l2.demand_accesses + l2.prefetch_fills
        picojoules["L2"] = accesses * ENERGY_PJ["l2_access"]
    llc = levels.get("LLC")
    if llc is not None:
        accesses = llc.demand_accesses + llc.prefetch_fills
        picojoules["LLC"] = accesses * ENERGY_PJ["llc_access"]
    # Flit-hops approximated as flits x mean hop count (mesh diameter / 3
    # when packet-level hop data is unavailable).
    picojoules["NoC"] = (result.noc.flits * LEGACY_MEAN_HOPS
                         * ENERGY_PJ["noc_flit_hop"])
    picojoules["DRAM"] = (
        result.dram.reads * ENERGY_PJ["dram_read"]
        + result.dram.writes * ENERGY_PJ["dram_write"]
        + result.dram.row_misses * ENERGY_PJ["dram_activate"])
    if result.clip is not None:
        clip_pj = (
            result.clip.filter_accesses * ENERGY_PJ["clip_filter"]
            + result.clip.predictor_accesses * ENERGY_PJ["clip_predictor"]
            + result.clip.utility_cam_accesses
            * ENERGY_PJ["clip_utility_cam"])
        if clip_pj:
            picojoules["CLIP"] = clip_pj
    return picojoules
