"""Dynamic energy model (paper section 5, "Energy model") and the
package power model behind the power-budget sweep driver."""

from repro.energy.model import ENERGY_PJ, EnergyBreakdown, dynamic_energy
from repro.energy.power import (BASE_CORE_POWER_W, BASE_FREQUENCY_GHZ,
                                core_power_w, cores_power_w,
                                execution_seconds, package_power_w,
                                uncore_static_w)

__all__ = ["ENERGY_PJ", "EnergyBreakdown", "dynamic_energy",
           "BASE_CORE_POWER_W", "BASE_FREQUENCY_GHZ", "core_power_w",
           "cores_power_w", "execution_seconds", "package_power_w",
           "uncore_static_w"]
