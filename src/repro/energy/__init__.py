"""Dynamic energy model (paper section 5, "Energy model")."""

from repro.energy.model import EnergyBreakdown, dynamic_energy

__all__ = ["EnergyBreakdown", "dynamic_energy"]
