"""Package power model: cores + uncore under DVFS-style scaling.

Following the lumos-style power-budgeted heterogeneous-system modeling,
each core's power scales with its microarchitectural size (issue width
linearly, ROB as a square root -- wider structures pay superlinear
wiring but clock-gate well) and cubically with frequency (classic
voltage-frequency scaling, P proportional to C V^2 f with V proportional
to f).  The uncore (NoC + LLC + DRAM interface) runs on its own fixed
clock: its *dynamic* power is the counter-driven memory-hierarchy energy
(:func:`repro.energy.dynamic_energy`) divided by wall-clock time, plus a
static floor per channel.

Only *relative* power matters for the budget driver's decisions, exactly
as only relative energy matters for the paper's energy claims.
"""

from __future__ import annotations

import math

from repro.config import CoreConfig, SystemConfig
from repro.energy.model import dynamic_energy
from repro.sim.stats import SimulationResult

#: The Table-3 reference core (6-wide, 512-entry ROB) at 4 GHz.
BASE_FREQUENCY_GHZ = 4.0
BASE_CORE_POWER_W = 2.0
BASE_ISSUE_WIDTH = 6
BASE_ROB_ENTRIES = 512

#: Uncore static floor: package baseline plus per-DRAM-channel interface.
UNCORE_STATIC_BASE_W = 1.0
UNCORE_STATIC_PER_CHANNEL_W = 0.5


def core_power_w(core: CoreConfig) -> float:
    """One core's power at its configured frequency.

    ``width x sqrt(rob) x (f / f_base)^3`` relative to the reference
    core -- a little core (narrow issue, small ROB) costs a fraction of
    a big one, and dropping frequency buys cubic savings.
    """
    width = core.issue_width / BASE_ISSUE_WIDTH
    rob = math.sqrt(core.rob_entries / BASE_ROB_ENTRIES)
    ratio = core.frequency_ghz / BASE_FREQUENCY_GHZ
    return BASE_CORE_POWER_W * width * rob * ratio ** 3


def cores_power_w(config: SystemConfig) -> float:
    """Total core power, honouring per-core overrides (big/little)."""
    return sum(core_power_w(config.core_for(core_id))
               for core_id in range(config.num_cores))


def uncore_static_w(config: SystemConfig) -> float:
    return (UNCORE_STATIC_BASE_W
            + UNCORE_STATIC_PER_CHANNEL_W * config.dram.channels)


def execution_seconds(result: SimulationResult,
                      config: SystemConfig) -> float:
    """Wall-clock time of the run at the configured core frequency."""
    return result.total_cycles / (config.core.frequency_ghz * 1e9)


def package_power_w(result: SimulationResult,
                    config: SystemConfig) -> float:
    """Mean package power over the run: cores + uncore dynamic + static.

    Uncore dynamic power is the counter-driven memory-hierarchy energy
    spread over the run's wall-clock time; when the result carries no
    precomputed ``energy_mj`` (legacy results), the energy model's
    fallback path supplies it.
    """
    seconds = execution_seconds(result, config)
    energy_mj = result.energy_mj or dynamic_energy(result).total_mj
    uncore_dynamic = (energy_mj / 1e3) / seconds if seconds > 0 else 0.0
    return cores_power_w(config) + uncore_dynamic + uncore_static_w(config)


__all__ = ["BASE_FREQUENCY_GHZ", "BASE_CORE_POWER_W", "core_power_w",
           "cores_power_w", "uncore_static_w", "execution_seconds",
           "package_power_w"]
