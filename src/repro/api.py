"""The public API of the repro package.

This module is the single documented entrypoint for running simulations:

>>> from repro import api
>>> config = api.scaled_config(num_cores=4, channels=1,
...                            sim_instructions=2000)
>>> config.clip.enabled = True
>>> result = api.simulate(config, ["605.mcf_s-1536B"] * 4)
>>> result.total_instructions
8000

and for sweeping scheme/workload/channel grids with on-disk caching:

>>> swept = api.sweep(["none", "berti", "berti+clip"],
...                   ["605.mcf_s-1536B"] * 4,
...                   channels=1, num_cores=4, sim_instructions=2000)
>>> sorted(r.config_label for r in swept)
['berti', 'berti+clip', 'none']

Results carry the per-component counter layer
(``SimulationResult.counters``, see ``docs/simulator.md``) and the
counter-driven energy columns (``energy_mj``, ``edp_mj_s``,
``energy_breakdown_mj``); :func:`power_budget` searches DVFS/core-mix
operating points under a fixed package power budget.

Everything else under ``repro.*`` is implementation: importable and
stable within a release, but the facade is what README, ``examples/``
and ``docs/api.md`` teach, and what deprecation policy covers.  The
``backend`` argument (or the ``REPRO_BACKEND`` environment variable)
selects the simulation engine -- ``"event"`` (reference) or ``"batch"``
(fast path); the two are bit-identical on results, so the choice never
affects science, only wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple, Union)

from repro.config import (BACKENDS, SystemConfig, resolve_backend,
                          scaled_config)
from repro.energy import dynamic_energy, package_power_w
from repro.experiments.sweep import (ResultStore, RunSpec, Scheme, Sweep,
                                     run_sweep)
from repro.sim.stats import SimulationResult, weighted_speedup
from repro.sim.system import run_system

__all__ = [
    "simulate", "sweep", "power_budget", "SweepResult", "Scheme",
    "RunSpec", "SystemConfig", "scaled_config", "SimulationResult",
    "weighted_speedup", "dynamic_energy", "package_power_w", "BACKENDS",
]

#: A scheme argument: a typed :class:`Scheme` or a legacy-style name
#: such as ``"berti+clip"`` (parsed with :meth:`Scheme.parse`).
SchemeLike = Union[str, Scheme]
#: A workload argument: one mix (sequence of workload names, one per
#: core) or a sequence of mixes.
WorkloadsLike = Union[Sequence[str], Sequence[Sequence[str]]]


def simulate(config: SystemConfig, workloads: Sequence[str],
             label: str = "", *,
             backend: Optional[str] = None) -> SimulationResult:
    """Run one simulation and return its :class:`SimulationResult`.

    ``workloads`` names one trace per core (see
    :func:`repro.trace.homogeneous_mix` for the common N-copies case).
    ``backend`` overrides ``config.backend`` for this call; the
    ``REPRO_BACKEND`` environment variable overrides both.
    """
    if backend is not None:
        config = replace(config, backend=backend)
    return run_system(config, list(workloads), label=label)


@dataclass(frozen=True)
class SweepResult:
    """What :func:`sweep` ran: every point's result plus provenance.

    Iterating yields :class:`SimulationResult` objects in sweep order;
    ``items()`` pairs them with their :class:`RunSpec` for filtering.
    """

    specs: Tuple[RunSpec, ...]
    results: Mapping[RunSpec, SimulationResult]
    #: Points actually simulated by this call.
    simulated: int
    #: Points served from the on-disk cache.
    cache_hits: int
    #: Resolved backend name the fresh points ran under.
    backend: str
    #: Per-point producer: ``"cache"``, ``"local"``, or the distributed
    #: worker id that simulated the point (``executor="distributed"``).
    provenance: Mapping[RunSpec, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[SimulationResult]:
        return (self.results[spec] for spec in self.specs)

    def __getitem__(self, spec: RunSpec) -> SimulationResult:
        return self.results[spec]

    def items(self) -> Iterator[Tuple[RunSpec, SimulationResult]]:
        return ((spec, self.results[spec]) for spec in self.specs)

    def producer(self, spec: RunSpec) -> str:
        """Who produced a point: ``"cache"``, ``"local"``, or a
        distributed worker id."""
        return self.provenance[spec]

    def find(self, scheme: Optional[SchemeLike] = None,
             mix: Optional[Sequence[str]] = None,
             channels: Optional[int] = None) -> List[SimulationResult]:
        """Results matching every given coordinate, in sweep order."""
        if isinstance(scheme, str):
            scheme = Scheme.parse(scheme)
        return [self.results[spec] for spec in self.specs
                if (scheme is None or spec.scheme == scheme)
                and (mix is None or spec.mix == tuple(mix))
                and (channels is None or spec.channels == channels)]

    def only(self, scheme: Optional[SchemeLike] = None,
             mix: Optional[Sequence[str]] = None,
             channels: Optional[int] = None) -> SimulationResult:
        """The single result matching the coordinates, or ``LookupError``."""
        matches = self.find(scheme=scheme, mix=mix, channels=channels)
        if len(matches) != 1:
            raise LookupError(
                f"{len(matches)} sweep points match "
                f"(scheme={scheme!r}, mix={mix!r}, channels={channels!r}); "
                f"expected exactly one")
        return matches[0]


def _as_schemes(schemes: Union[SchemeLike,
                               Iterable[SchemeLike]]) -> List[Scheme]:
    if isinstance(schemes, (str, Scheme)):
        schemes = [schemes]
    return [Scheme.parse(s) if isinstance(s, str) else s for s in schemes]


def _as_mixes(workloads: WorkloadsLike) -> List[Tuple[str, ...]]:
    items = list(workloads)
    if not items:
        raise ValueError("no workloads given")
    if isinstance(items[0], str):
        return [tuple(items)]  # type: ignore[arg-type]
    return [tuple(mix) for mix in items]


def sweep(schemes: Union[SchemeLike, Iterable[SchemeLike]],
          workloads: WorkloadsLike, *,
          channels: Union[int, Sequence[int]] = 1,
          num_cores: int = 8,
          sim_instructions: int = 10_000,
          baselines: bool = False,
          backend: Optional[str] = None,
          jobs: int = 1,
          cache: Union[bool, str, ResultStore] = True,
          executor: str = "local",
          on_result: Optional[Callable[[RunSpec, SimulationResult],
                                       None]] = None) -> SweepResult:
    """Simulate the cross product of schemes x workload mixes x channels.

    ``schemes`` accepts typed :class:`Scheme` objects or legacy-style
    names ("berti+clip"); ``workloads`` accepts one mix or a list of
    mixes; ``channels`` one count or several.  ``baselines=True`` adds
    the matching no-prefetching reference point for every point (for
    :func:`weighted_speedup` denominators).  Completed points are served
    from the on-disk cache (``cache`` may be ``False``, a directory, or
    a :class:`ResultStore`); fresh points fan out across ``jobs``
    processes and run on ``backend`` ("event"/"batch" -- bit-identical
    results, so cache entries are shared across backends).

    ``executor="distributed"`` fans the misses out through the
    :mod:`repro.serve` coordinator/worker service instead of a local
    process pool (``jobs`` worker subprocesses; bit-identical results;
    transparent fallback to local execution when the service cannot
    start); :attr:`SweepResult.provenance` then records which worker
    produced each point.  See ``docs/serving.md``.
    """
    grid = Sweep.product(_as_schemes(schemes), _as_mixes(workloads),
                         [channels] if isinstance(channels, int)
                         else list(channels),
                         num_cores=num_cores,
                         sim_instructions=sim_instructions)
    if baselines:
        grid = grid.with_baselines()
    if isinstance(cache, ResultStore):
        store: Optional[ResultStore] = cache
    elif cache is True:
        store = ResultStore()
    elif cache:
        store = ResultStore(cache)
    else:
        store = None
    outcome = run_sweep(grid, jobs=jobs, store=store, backend=backend,
                        executor=executor, on_result=on_result)
    return SweepResult(specs=tuple(grid), results=outcome.results,
                       simulated=outcome.simulated,
                       cache_hits=outcome.cache_hits,
                       backend=resolve_backend(backend or "event"),
                       provenance=dict(outcome.provenance))


def power_budget(budget_w: Optional[float] = None, *,
                 num_cores: int = 8,
                 sim_instructions: int = 10_000,
                 sample: int = 3,
                 jobs: int = 1,
                 cache: Union[bool, str, ResultStore] = True,
                 backend: Optional[str] = None,
                 quiet: bool = True) -> Dict:
    """Best Berti+CLIP operating point under a package power budget.

    Sweeps DVFS frequency and core mix (symmetric vs big/little, see
    :func:`repro.config.big_little_overrides`), scores each point by its
    frequency-adjusted weighted speedup over the no-prefetching baseline
    at the base clock, and reports the fastest point whose mean package
    power (:func:`repro.energy.package_power_w`) fits under ``budget_w``.
    Returns the grid plus the winner; ``quiet=False`` also prints the
    figure.  Caching/backend semantics match :func:`sweep`.
    """
    from repro.experiments.power_budget import (DEFAULT_BUDGET_W,
                                                power_budget_study)
    from repro.experiments.runner import BenchScale, ExperimentRunner
    if isinstance(cache, ResultStore):
        store: Optional[ResultStore] = cache
    elif cache is True:
        store = ResultStore()
    elif cache:
        store = ResultStore(cache)
    else:
        store = None
    runner = ExperimentRunner(
        BenchScale(num_cores=num_cores,
                   sim_instructions=sim_instructions),
        store=store, jobs=jobs, backend=backend)
    return power_budget_study(
        runner,
        budget_w=DEFAULT_BUDGET_W if budget_w is None else budget_w,
        sample=sample, quiet=quiet)
