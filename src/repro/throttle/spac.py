"""SPAC: Synergistic Prefetcher Aggressiveness Controller (IEEE TC 2016).

SPAC estimates each prefetcher's *utility* -- useful prefetches delivered
per unit of shared bandwidth consumed -- and throttles toward the aggregate
optimum: cores whose prefetchers return little per bus slot give way when
bandwidth is scarce.
"""

from __future__ import annotations

from repro.throttle.base import Throttler, ThrottleSnapshot


class SpacThrottler(Throttler):
    """Utility-per-bandwidth proportional control."""

    name = "spac"
    UTILITY_UP = 0.70
    UTILITY_DOWN = 0.35
    EWMA = 0.5

    def __init__(self) -> None:
        super().__init__()
        self._utility = 0.5

    def decide(self, snapshot: ThrottleSnapshot) -> float:
        self.decisions += 1
        if snapshot.issued == 0:
            return self.scale
        # Utility: accuracy discounted by how contended the bus already is.
        instantaneous = snapshot.accuracy * (1.0
                                             - 0.5 * snapshot.dram_utilization)
        self._utility = (self.EWMA * self._utility
                         + (1 - self.EWMA) * instantaneous)
        if self._utility >= self.UTILITY_UP:
            self.level += 1
        elif self._utility < self.UTILITY_DOWN:
            self.level -= 1
        self._clamp_level()
        return self.scale
