"""NST: Near-Side Prefetch Throttling (PACT 2018).

NST observes congestion on the *near side* of the memory hierarchy -- the
core's own MSHRs and queues -- rather than far-side DRAM metrics: if the
prefetcher keeps the near-side structures saturated, demands queue behind
prefetches and latency grows, so aggressiveness comes down.
"""

from __future__ import annotations

from repro.throttle.base import Throttler, ThrottleSnapshot


class NstThrottler(Throttler):
    """MSHR-occupancy hysteresis control."""

    name = "nst"
    OCCUPANCY_HIGH = 0.75
    OCCUPANCY_LOW = 0.25

    def decide(self, snapshot: ThrottleSnapshot) -> float:
        self.decisions += 1
        if snapshot.mshr_occupancy > self.OCCUPANCY_HIGH:
            self.level -= 1
        elif (snapshot.mshr_occupancy < self.OCCUPANCY_LOW
                and snapshot.issued > 0
                and snapshot.accuracy > 0.5):
            self.level += 1
        self._clamp_level()
        return self.scale
