"""HPAC: Hierarchical Prefetcher Aggressiveness Control (MICRO 2009).

A local FDP-style controller plus a *global* layer watching shared-resource
interference: when memory bandwidth runs hot and this core's prefetches are
not pulling their weight, the global controller overrides the local
decision and throttles down harder.
"""

from __future__ import annotations

from repro.throttle.base import Throttler, ThrottleSnapshot
from repro.throttle.fdp import FdpThrottler


class HpacThrottler(Throttler):
    """Global interference override on top of local FDP."""

    name = "hpac"
    GLOBAL_BANDWIDTH_HOT = 0.80
    GLOBAL_ACCURACY_FLOOR = 0.60

    def __init__(self) -> None:
        super().__init__()
        self._local = FdpThrottler()

    def decide(self, snapshot: ThrottleSnapshot) -> float:
        self.decisions += 1
        self._local.decide(snapshot)
        self.level = self._local.level
        if (snapshot.dram_utilization > self.GLOBAL_BANDWIDTH_HOT
                and snapshot.accuracy < self.GLOBAL_ACCURACY_FLOOR
                and snapshot.issued > 0):
            # Global: enforced throttle-down of interfering prefetchers.
            self.level -= 2
            self._local.level = min(self._local.level, self.level)
            self._local._clamp_level()
        self._clamp_level()
        return self.scale
