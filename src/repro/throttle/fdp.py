"""FDP: Feedback Directed Prefetching (HPCA 2007).

The canonical throttler: classifies epoch accuracy into high/medium/low and
lateness into late/not-late, then walks an aggressiveness counter up or
down.  Designed for ~60%-accurate stride/stream prefetchers; on Berti the
accuracy signal almost always reads "high", so FDP rarely intervenes --
the marginal-utility observation of section 3.
"""

from __future__ import annotations

from repro.throttle.base import Throttler, ThrottleSnapshot


class FdpThrottler(Throttler):
    """Accuracy/lateness/pollution driven aggressiveness counter."""

    name = "fdp"
    ACCURACY_HIGH = 0.75
    ACCURACY_LOW = 0.40
    LATENESS_THRESHOLD = 0.10
    POLLUTION_THRESHOLD = 0.25

    def decide(self, snapshot: ThrottleSnapshot) -> float:
        self.decisions += 1
        if snapshot.issued == 0:
            return self.scale
        accuracy = snapshot.accuracy
        late = snapshot.lateness > self.LATENESS_THRESHOLD
        polluting = snapshot.pollution > self.POLLUTION_THRESHOLD
        if accuracy >= self.ACCURACY_HIGH:
            if late:
                self.level += 1        # Accurate but late: run farther ahead.
            elif polluting:
                self.level -= 1
            # Accurate, timely, clean: leave it alone.
        elif accuracy >= self.ACCURACY_LOW:
            if polluting:
                self.level -= 1
            elif late:
                self.level += 1
        else:
            self.level -= 1            # Inaccurate: back off.
        self._clamp_level()
        return self.scale
