"""Throttler interface and the epoch snapshot they consume."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ThrottleSnapshot:
    """Epoch-level feedback metrics for one core's prefetchers."""

    #: Useful / issued prefetches this epoch (0 if none issued).
    accuracy: float
    #: Late (demand-merged in flight) / useful prefetches this epoch.
    lateness: float
    #: Useless prefetched lines evicted / issued prefetches this epoch.
    pollution: float
    #: Mean DRAM data-bus utilisation over the epoch, 0..1.
    dram_utilization: float
    #: L1D + L2 MSHR occupancy fraction at epoch end, 0..1.
    mshr_occupancy: float
    #: Prefetches issued this epoch.
    issued: int


#: Aggressiveness ladder shared by the counter-based throttlers: the index
#: is the aggressiveness level, the value the degree scale factor.
AGGRESSIVENESS_SCALES = (0.0, 0.25, 0.5, 1.0, 2.0)


class Throttler:
    """Base class: a per-core controller mapping snapshots to a scale."""

    name = "none"

    def __init__(self) -> None:
        #: Aggressiveness level indexing ``AGGRESSIVENESS_SCALES``.
        self.level = 3
        self.decisions = 0

    def decide(self, snapshot: ThrottleSnapshot) -> float:
        """Consume one epoch snapshot; return the new degree scale."""
        raise NotImplementedError

    def _clamp_level(self) -> None:
        self.level = max(0, min(len(AGGRESSIVENESS_SCALES) - 1, self.level))

    @property
    def scale(self) -> float:
        return AGGRESSIVENESS_SCALES[self.level]
