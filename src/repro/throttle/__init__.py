"""Prefetch throttlers (paper section 3, Fig. 6).

Feedback controllers that scale a prefetcher's aggressiveness per epoch.
They act at coarse granularity on epoch-level accuracy/bandwidth metrics,
which is exactly why the paper finds them ineffective on already-accurate
prefetchers like Berti.
"""

from repro.throttle.base import Throttler, ThrottleSnapshot
from repro.throttle.fdp import FdpThrottler
from repro.throttle.hpac import HpacThrottler
from repro.throttle.spac import SpacThrottler
from repro.throttle.nst import NstThrottler

_FACTORIES = {
    "fdp": FdpThrottler,
    "hpac": HpacThrottler,
    "spac": SpacThrottler,
    "nst": NstThrottler,
}


def make_throttler(name: str) -> Throttler:
    """Instantiate a throttler by configuration name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown throttler {name!r}; "
                         f"choose from {sorted(_FACTORIES)}") from None
    return factory()


def throttler_names() -> list:
    return sorted(_FACTORIES)


__all__ = ["Throttler", "ThrottleSnapshot", "FdpThrottler", "HpacThrottler",
           "SpacThrottler", "NstThrottler", "make_throttler",
           "throttler_names"]
