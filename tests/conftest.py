"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, scaled_config
from repro.sim.engine import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A 2-core, 1-channel configuration small enough for unit tests."""
    return scaled_config(num_cores=2, channels=1, sim_instructions=1_500)
