"""Tests for the baseline criticality predictors and their harness."""

from __future__ import annotations

import pytest

from repro.config import CoreConfig
from repro.cpu import Core, ServiceLevel
from repro.criticality import (make_criticality_predictor, predictor_names)
from repro.criticality.base import CriticalityMeasurement
from repro.criticality.cbp import CommitBlockPredictor
from repro.criticality.crisp import CrispPredictor
from repro.criticality.fp import FocusedPrefetchingPredictor
from repro.criticality.fvp import FvpPredictor
from repro.criticality.robo import RoboPredictor
from repro.sim.engine import Engine
from repro.trace.record import Op, TraceRecord


class TestFactory:
    def test_names(self):
        assert predictor_names() == ["catch", "cbp", "crisp", "fp", "fvp",
                                     "robo"]

    def test_construct_all(self):
        for name in predictor_names():
            predictor = make_criticality_predictor(name)
            assert predictor.name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_criticality_predictor("oracle")


class TestMeasurement:
    def test_accuracy_and_coverage(self):
        m = CriticalityMeasurement()
        m.note(predicted=True, actual=True)    # hit
        m.note(predicted=True, actual=False)   # false positive
        m.note(predicted=False, actual=True)   # miss
        m.note(predicted=False, actual=False)  # true negative
        assert m.accuracy == 0.5
        assert m.coverage == 0.5

    def test_empty_is_zero(self):
        m = CriticalityMeasurement()
        assert m.accuracy == 0.0
        assert m.coverage == 0.0


class _FakeEntry:
    def __init__(self, ip, op=Op.LOAD, service_level=ServiceLevel.DRAM,
                 mlp=1, consumers=1, done_at=100, dispatched_at=0):
        self.ip = ip
        self.op = op
        self.service_level = service_level
        self.mlp_at_issue = mlp
        self.consumer_count = consumers
        self.done_at = done_at
        self.dispatched_at = dispatched_at


class _FakeCore:
    def __init__(self, rob_entries=512, occupancy=400):
        self.config = CoreConfig(rob_entries=rob_entries)
        self.rob_occupancy = occupancy


class TestCbp:
    def test_flags_on_large_single_stall(self):
        cbp = CommitBlockPredictor()
        entry = _FakeEntry(0x400)
        cbp.on_retire(_FakeCore(), entry,
                      cycle=100, head_wait=CommitBlockPredictor.
                      MAX_STALL_THRESHOLD)
        assert cbp.predicts_critical_ip(0x400)

    def test_flags_on_accumulated_stall(self):
        cbp = CommitBlockPredictor()
        entry = _FakeEntry(0x500)
        small = CommitBlockPredictor.MAX_STALL_THRESHOLD - 1
        needed = CommitBlockPredictor.TOTAL_STALL_THRESHOLD // small + 1
        for _ in range(needed):
            cbp.on_retire(_FakeCore(), entry, cycle=0, head_wait=small)
        assert cbp.predicts_critical_ip(0x500)

    def test_static_once_flagged(self):
        cbp = CommitBlockPredictor()
        entry = _FakeEntry(0x600)
        cbp.on_retire(_FakeCore(), entry, cycle=0, head_wait=100)
        for _ in range(50):
            cbp.on_retire(_FakeCore(), entry, cycle=0, head_wait=0)
        assert cbp.predicts_critical_ip(0x600)  # Table 1: sticky.


class TestRobo:
    def test_requires_high_occupancy(self):
        robo = RoboPredictor()
        entry = _FakeEntry(0x400)
        robo.on_retire(_FakeCore(occupancy=10), entry, cycle=0, head_wait=50)
        assert not robo.predicts_critical_ip(0x400)
        robo.on_retire(_FakeCore(occupancy=400), entry, cycle=0,
                       head_wait=50)
        assert robo.predicts_critical_ip(0x400)

    def test_short_stalls_ignored(self):
        robo = RoboPredictor()
        entry = _FakeEntry(0x400)
        robo.on_retire(_FakeCore(occupancy=500), entry, cycle=0, head_wait=1)
        assert not robo.predicts_critical_ip(0x400)


class TestFvp:
    def test_chain_roots_flagged(self):
        fvp = FvpPredictor()
        entry = _FakeEntry(0x400, consumers=2)
        for _ in range(3):
            fvp.on_retire(_FakeCore(), entry, cycle=0, head_wait=0)
        assert fvp.predicts_critical_ip(0x400)

    def test_consumerless_fast_loads_decay(self):
        fvp = FvpPredictor()
        entry = _FakeEntry(0x400, consumers=0)
        fvp.on_retire(_FakeCore(), _FakeEntry(0x400, consumers=1),
                      cycle=0, head_wait=0)
        for _ in range(5):
            fvp.on_retire(_FakeCore(), entry, cycle=0, head_wait=0)
        assert not fvp.predicts_critical_ip(0x400)


class TestFp:
    def test_limcos_set_covers_stall_mass(self):
        fp = FocusedPrefetchingPredictor()
        heavy = _FakeEntry(0xA)
        light = _FakeEntry(0xB)
        for i in range(FocusedPrefetchingPredictor.EPOCH_RETIRES):
            if i % 10 == 0:
                fp.on_retire(_FakeCore(), heavy, cycle=0, head_wait=100)
            elif i % 97 == 0:
                fp.on_retire(_FakeCore(), light, cycle=0, head_wait=1)
            else:
                fp.on_retire(_FakeCore(), _FakeEntry(0xC, op=Op.ALU),
                             cycle=0, head_wait=0)
        assert fp.predicts_critical_ip(0xA)
        assert not fp.predicts_critical_ip(0xB)


class TestCrisp:
    def test_llc_miss_low_mlp_flagged(self):
        crisp = CrispPredictor()
        entry = _FakeEntry(0x400, service_level=ServiceLevel.DRAM, mlp=1)
        for _ in range(3):
            crisp.train(_FakeCore(), entry, cycle=0, critical=True)
        assert crisp.predicts_critical_ip(0x400)

    def test_high_mlp_not_flagged(self):
        crisp = CrispPredictor()
        entry = _FakeEntry(0x400, service_level=ServiceLevel.DRAM, mlp=30)
        for _ in range(8):
            crisp.train(_FakeCore(), entry, cycle=0, critical=True)
        assert not crisp.predicts_critical_ip(0x400)

    def test_l2_hits_invisible_to_crisp(self):
        """Table 1: CRISP only considers LLC misses."""
        crisp = CrispPredictor()
        entry = _FakeEntry(0x400, service_level=ServiceLevel.L2, mlp=1)
        for _ in range(10):
            crisp.train(_FakeCore(), entry, cycle=0, critical=True)
        assert not crisp.predicts_critical_ip(0x400)


class TestEndToEndHarness:
    def test_catch_over_predicts_near_mispredictions(self):
        """CATCH tags loads retired near branch mispredictions."""
        from repro.criticality.catch import CatchPredictor

        catch = CatchPredictor()
        core = _FakeCore()
        # One mispredicted branch followed by loads with zero stalls.
        catch.on_branch(core, 0x10, True, True, cycle=0)
        entry = _FakeEntry(0x20, done_at=5, dispatched_at=0)
        for _ in range(CatchPredictor.INTERVAL):
            catch.on_retire(core, entry, cycle=0, head_wait=0)
        assert catch.predicts_critical_ip(0x20)

    def test_measurement_wired_through_core(self):
        """Attach a predictor to a real core and observe measurements."""
        engine = Engine()

        class _Memory:
            def issue_load(self, core_id, address, ip, cycle, callback):
                done = cycle + 80
                engine.schedule(done,
                                lambda: callback(done, ServiceLevel.DRAM))

            def issue_store(self, *a):
                pass

        trace = []
        for i in range(40):
            trace.append(TraceRecord(0x400, Op.LOAD,
                                     address=0x1000 + i * 64, dst=1))
            trace.append(TraceRecord(0x404, Op.ALU, dst=2, srcs=(1,)))
        predictor = make_criticality_predictor("cbp")
        core = Core(0, CoreConfig(), trace, _Memory(), engine)
        predictor.attach(core)
        engine.run([core])
        assert predictor.measurement.actual > 0
