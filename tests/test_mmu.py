"""Tests for the TLB hierarchy."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_system, scaled_config
from repro.mmu import Mmu, Tlb
from repro.trace import homogeneous_mix


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=8, ways=2)
        assert not tlb.lookup(0x1000)
        tlb.fill(0x1000)
        assert tlb.lookup(0x1234)  # same 4 KiB page

    def test_different_pages_differ(self):
        tlb = Tlb(entries=8, ways=2)
        tlb.fill(0x1000)
        assert not tlb.lookup(0x2000)

    def test_lru_eviction_within_set(self):
        tlb = Tlb(entries=2, ways=2)  # one set, two ways
        tlb.fill(0 << 12)
        tlb.fill(1 << 12)
        tlb.lookup(0 << 12)        # refresh page 0
        tlb.fill(2 << 12)          # evicts page 1
        assert tlb.lookup(0 << 12)
        assert not tlb.lookup(1 << 12)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Tlb(entries=10, ways=4)

    def test_hit_rate_statistic(self):
        tlb = Tlb(entries=8, ways=2)
        tlb.lookup(0x1000)
        tlb.fill(0x1000)
        tlb.lookup(0x1000)
        assert tlb.stats.accesses == 2
        assert tlb.stats.hit_rate == 0.5

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_occupancy_bounded(self, pages):
        tlb = Tlb(entries=16, ways=4)
        for page in pages:
            if not tlb.lookup(page << 12):
                tlb.fill(page << 12)
        assert tlb.occupancy <= 16


class TestMmu:
    def test_latency_tiers(self):
        mmu = Mmu(dtlb_entries=4, dtlb_ways=4, stlb_entries=16,
                  stlb_ways=4, stlb_latency=8, page_walk_latency=100)
        # Cold: full walk.
        assert mmu.translate(0x1000) == 108
        # Warm DTLB: free.
        assert mmu.translate(0x1000) == 0
        # Overflow the 4-entry DTLB but stay within the STLB.
        for page in range(2, 8):
            mmu.translate(page << 12)
        assert mmu.translate(0x1000) == 8
        assert mmu.page_walks >= 6

    def test_page_walk_counter(self):
        mmu = Mmu()
        for page in range(10):
            mmu.translate(page << 12)
        assert mmu.page_walks == 10


class TestTlbIntegration:
    def test_enabled_tlb_slows_large_footprints(self):
        mix = homogeneous_mix("605.mcf_s-1536B", 2)
        base_config = scaled_config(num_cores=2, channels=1,
                                    sim_instructions=2_000)
        baseline = run_system(base_config, mix)
        tlb_config = scaled_config(num_cores=2, channels=1,
                                   sim_instructions=2_000)
        tlb_config.tlb = dataclasses.replace(tlb_config.tlb, enabled=True)
        with_tlb = run_system(tlb_config, mix)
        assert with_tlb.total_cycles > baseline.total_cycles

    def test_disabled_by_default(self):
        config = scaled_config(num_cores=1, channels=1)
        assert not config.tlb.enabled

    def test_hot_set_barely_pays(self):
        """A cache-resident workload fits its pages in the DTLB."""
        mix = homogeneous_mix("cassandra", 2)
        base_config = scaled_config(num_cores=2, channels=1,
                                    sim_instructions=2_000)
        baseline = run_system(base_config, mix)
        tlb_config = scaled_config(num_cores=2, channels=1,
                                   sim_instructions=2_000)
        tlb_config.tlb = dataclasses.replace(tlb_config.tlb, enabled=True)
        with_tlb = run_system(tlb_config, mix)
        assert with_tlb.total_cycles < baseline.total_cycles * 1.6
