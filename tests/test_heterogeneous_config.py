"""Heterogeneous (big/little) configuration: per-core override merging,
validation, DVFS scaling, and result round-trips.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (CoreConfig, SystemConfig, big_little_overrides,
                          little_core, scaled_config)
from repro.experiments.sweep import RunSpec, Scheme
from repro.sim.stats import SimulationResult
from repro.sim.system import run_system

MIX4 = ["605.mcf_s-1536B", "bfs-14", "619.lbm_s-2676B", "cloud9"]


class TestOverrideMerging:
    def test_core_for_prefers_override(self):
        config = SystemConfig(num_cores=4)
        config.core_overrides = {2: little_core()}
        assert config.core_for(2).issue_width == 3
        for core_id in (0, 1, 3):
            assert config.core_for(core_id) is config.core

    def test_big_little_split(self):
        overrides = big_little_overrides(8, big_cores=3)
        assert sorted(overrides) == [3, 4, 5, 6, 7]
        assert all(core.rob_entries == 128
                   for core in overrides.values())

    def test_big_little_bounds(self):
        assert big_little_overrides(4, 4) == {}
        with pytest.raises(ValueError, match="big_cores"):
            big_little_overrides(4, 5)
        with pytest.raises(ValueError, match="big_cores"):
            big_little_overrides(4, -1)

    def test_little_core_preset(self):
        little = little_core()
        big = CoreConfig()
        assert little.issue_width < big.issue_width
        assert little.rob_entries < big.rob_entries
        assert little.retire_width <= little.issue_width


class TestValidation:
    def test_override_id_out_of_range(self):
        config = SystemConfig(num_cores=4)
        config.core_overrides = {4: little_core()}
        with pytest.raises(ValueError, match="outside"):
            config.validate()

    def test_per_core_retire_width(self):
        config = SystemConfig(num_cores=4)
        bad = dataclasses.replace(little_core(), retire_width=5,
                                  issue_width=3)
        config.core_overrides = {1: bad}
        with pytest.raises(ValueError, match="core 1: retire width"):
            config.validate()

    def test_frequency_must_be_uniform(self):
        config = SystemConfig(num_cores=4)
        config.core_overrides = {1: little_core(frequency_ghz=3.0)}
        with pytest.raises(ValueError, match="frequencies must match"):
            config.validate()


class TestAtFrequency:
    def test_scales_uncore_latencies(self):
        config = SystemConfig()
        slow = config.at_frequency(2.0)
        assert slow.core.frequency_ghz == 2.0
        # Fixed-nanosecond DRAM timing costs half the core cycles at
        # half the clock.
        assert slow.dram.cas_cycles == config.dram.cas_cycles // 2
        assert slow.dram.burst_cycles == config.dram.burst_cycles // 2
        # Latencies never drop below one cycle.
        assert slow.noc.link_latency >= 1
        # The original is untouched.
        assert config.core.frequency_ghz == 4.0

    def test_scales_override_frequencies(self):
        config = SystemConfig(num_cores=4)
        config.core_overrides = big_little_overrides(4, 2)
        scaled = config.at_frequency(3.0)
        scaled.validate()
        assert all(core.frequency_ghz == 3.0
                   for core in scaled.core_overrides.values())
        # Microarchitectural shape survives re-clocking.
        assert scaled.core_overrides[3].issue_width == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SystemConfig().at_frequency(0.0)


class TestHeterogeneousSimulation:
    def _hetero_config(self):
        config = scaled_config(num_cores=4, channels=1,
                               sim_instructions=2_000)
        config.core_overrides = big_little_overrides(4, big_cores=2)
        config.validate()
        return config

    def test_little_cores_retire_slower(self):
        """Same workload on a big and a little core: the 3-wide,
        128-entry-ROB little core must not outrun the big one."""
        config = self._hetero_config()
        mix = ["605.mcf_s-1536B"] * 4
        result = run_system(config, mix)
        big_ipc = result.cores[0].ipc
        little_ipc = result.cores[2].ipc
        assert little_ipc <= big_ipc

    def test_per_core_results_roundtrip(self):
        config = self._hetero_config()
        result = run_system(config, MIX4)
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert [core.ipc for core in rebuilt.cores] \
            == [core.ipc for core in result.cores]

    def test_scheme_big_cores_builds_overrides(self):
        scheme = Scheme(l1="berti", big_cores=2)
        config = scheme.build_config(1, 4, 2_000)
        assert sorted(config.core_overrides) == [2, 3]
        baseline = scheme.baseline()
        assert baseline.big_cores == 2 and baseline.l1 == "none"

    def test_scheme_frequency_builds_scaled_config(self):
        scheme = Scheme(l1="berti", frequency_ghz=2.0)
        config = scheme.build_config(1, 4, 2_000)
        assert config.core.frequency_ghz == 2.0
        assert config.dram.cas_cycles == 25
        assert scheme.baseline().frequency_ghz == 2.0

    def test_cache_key_distinguishes_core_mixes(self):
        plain = RunSpec(scheme=Scheme(l1="berti"), mix=tuple(MIX4),
                        channels=1, num_cores=4, sim_instructions=2_000)
        hetero = RunSpec(scheme=Scheme(l1="berti", big_cores=2),
                         mix=tuple(MIX4), channels=1, num_cores=4,
                         sim_instructions=2_000)
        clocked = RunSpec(scheme=Scheme(l1="berti", frequency_ghz=3.0),
                          mix=tuple(MIX4), channels=1, num_cores=4,
                          sim_instructions=2_000)
        keys = {plain.cache_key(), hetero.cache_key(),
                clocked.cache_key()}
        assert len(keys) == 3
