"""Tests for result export (JSON/CSV)."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.export import (export_json, export_per_mix_csv,
                                      export_series_csv, load_json)


class TestJson:
    def test_roundtrip(self, tmp_path):
        data = {"channels": [1, 2], "series": {"berti": [0.8, 0.9]}}
        path = tmp_path / "fig1.json"
        export_json(data, path)
        assert load_json(path) == data

    def test_dataclass_like_objects_serialised(self, tmp_path):
        class Result:
            def __init__(self):
                self.accuracy = 0.9

        path = tmp_path / "obj.json"
        export_json({"clip": Result()}, path)
        assert load_json(path)["clip"]["accuracy"] == 0.9


class TestSeriesCsv:
    def test_layout(self, tmp_path):
        path = tmp_path / "fig1.csv"
        export_series_csv({"berti": [0.8, 1.0], "ipcp": [0.7, 0.9]},
                          axis=[1, 16], path=path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["channels", "berti", "ipcp"]
        assert rows[1] == ["1", "0.8", "0.7"]
        assert rows[2] == ["16", "1.0", "0.9"]

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="points"):
            export_series_csv({"a": [1.0]}, axis=[1, 2],
                              path=tmp_path / "x.csv")


class TestPerMixCsv:
    def test_nested_metrics(self, tmp_path):
        path = tmp_path / "fig10.csv"
        export_per_mix_csv({"mcf": {"berti_ws": 0.8, "clip_ws": 1.0},
                            "lbm": {"berti_ws": 0.9, "clip_ws": 1.1}},
                           path=path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["mix", "berti_ws", "clip_ws"]
        assert ["mcf", "0.8", "1.0"] in rows

    def test_scalar_values_wrapped(self, tmp_path):
        path = tmp_path / "fig14.csv"
        export_per_mix_csv({"mcf": 0.4}, path=path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["mix", "value"]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_per_mix_csv({}, tmp_path / "x.csv")

    def test_integration_with_driver_output(self, tmp_path):
        """figure16-shaped output exports cleanly."""
        result = {"per_mix": {"a": 0.5, "b": 0.7}, "average": 0.6}
        export_per_mix_csv(result["per_mix"], tmp_path / "fig16.csv")
        export_json(result, tmp_path / "fig16.json")
        assert load_json(tmp_path / "fig16.json")["average"] == 0.6
