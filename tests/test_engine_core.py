"""Tests for the event engine, branch predictor, and the OoO core model."""

from __future__ import annotations

import pytest

from repro.config import BranchPredictorConfig, CoreConfig
from repro.cpu import Core, HashedPerceptronPredictor, ServiceLevel
from repro.sim.engine import Engine
from repro.trace.record import Op, TraceRecord


class TestEngine:
    def test_events_run_in_time_order(self, engine):
        seen = []
        engine.schedule(10, lambda: seen.append(10))
        engine.schedule(5, lambda: seen.append(5))
        engine.schedule(7, lambda: seen.append(7))
        engine.now = 0
        engine._drain_events_at(100)
        assert seen == [5, 7, 10]

    def test_same_cycle_fifo(self, engine):
        seen = []
        engine.schedule(3, lambda: seen.append("a"))
        engine.schedule(3, lambda: seen.append("b"))
        engine._drain_events_at(3)
        assert seen == ["a", "b"]

    def test_cannot_schedule_in_past(self, engine):
        engine.now = 10
        with pytest.raises(ValueError):
            engine.schedule(5, lambda: None)

    def test_event_scheduling_event_same_cycle(self, engine):
        seen = []

        def outer():
            seen.append("outer")
            engine.schedule(engine.now, lambda: seen.append("inner"))

        engine.schedule(2, outer)
        engine.now = 2
        engine._drain_events_at(2)
        assert seen == ["outer", "inner"]

    def test_quiescence_drain_keeps_now_monotonic(self, engine):
        """Draining trailing events must never rewind ``now``; the cycle
        the last core retired is reported separately from the drain."""
        observed = []

        class OneShot:
            next_wake = 3
            done = False

            def tick(self, cycle):
                engine.schedule(40, lambda: observed.append(engine.now))
                engine.schedule(15, lambda: observed.append(engine.now))
                self.done = True
                self.next_wake = float("inf")

        finish = engine.run([OneShot()])
        assert finish == 3
        assert observed == [15, 40]  # drain advances in time order
        assert engine.quiesce_cycle == 40
        assert engine.now == 40  # monotonic: not rewound to finish

    def test_quiesce_cycle_equals_finish_when_nothing_in_flight(self,
                                                                engine):
        class Idle:
            next_wake = 7
            done = False

            def tick(self, cycle):
                self.done = True
                self.next_wake = float("inf")

        finish = engine.run([Idle()])
        assert finish == 7
        assert engine.quiesce_cycle == finish
        assert engine.now == finish

    def test_deadlock_detection(self, engine):
        class Stuck:
            next_wake = float("inf")
            done = False

            def tick(self, cycle):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(RuntimeError, match="deadlock"):
            engine.run([Stuck()])


class TestBranchPredictor:
    def test_learns_always_taken(self):
        predictor = HashedPerceptronPredictor()
        for _ in range(100):
            predictor.predict_and_train(0x400, True)
        assert predictor.predict(0x400)
        assert predictor.accuracy > 0.9

    def test_learns_alternating_with_history(self):
        predictor = HashedPerceptronPredictor()
        outcome = False
        correct = 0
        for i in range(600):
            outcome = not outcome
            if predictor.predict_and_train(0x500, outcome):
                correct += 1 if i >= 200 else 0
        assert correct / 400 > 0.8

    def test_random_branch_near_base_rate(self):
        import random
        rng = random.Random(7)
        predictor = HashedPerceptronPredictor()
        correct = sum(
            predictor.predict_and_train(0x600, rng.random() < 0.5)
            for _ in range(500))
        assert correct < 400

    def test_weights_stay_bounded(self):
        config = BranchPredictorConfig(weight_bits=4)
        predictor = HashedPerceptronPredictor(config)
        for _ in range(500):
            predictor.predict_and_train(0x700, True)
        bound = 1 << (config.weight_bits - 1)
        for table in predictor._tables:
            assert all(-bound <= w < bound for w in table)


class _ScriptedMemory:
    """Memory stub with a scripted latency per line address."""

    def __init__(self, engine, latency=20, level=ServiceLevel.L2):
        self.engine = engine
        self.latency = latency
        self.level = level
        self.loads = []
        self.stores = []

    def issue_load(self, core_id, address, ip, cycle, callback):
        self.loads.append((address, cycle))
        done = cycle + self.latency
        self.engine.schedule(done, lambda: callback(done, self.level))

    def issue_store(self, core_id, address, ip, cycle):
        self.stores.append((address, cycle))


def _run_core(trace, latency=20, level=ServiceLevel.L2,
              config: CoreConfig | None = None):
    engine = Engine()
    memory = _ScriptedMemory(engine, latency, level)
    core = Core(0, config or CoreConfig(), trace, memory, engine)
    engine.run([core])
    return core, memory, engine


class TestCoreModel:
    def test_alu_only_trace_retires_fast(self):
        trace = [TraceRecord(0x400 + 4 * i, Op.ALU, dst=i % 8)
                 for i in range(120)]
        core, _, engine = _run_core(trace)
        assert core.stats.instructions == 120
        # 6-wide issue, 4-wide retire: at least 4 IPC asymptotically.
        assert core.stats.finish_cycle < 120

    def test_load_latency_stalls_head(self):
        trace = [TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1)]
        core, _, engine = _run_core(trace, latency=50)
        assert core.stats.instructions == 1
        assert core.stats.head_stall_cycles >= 49
        assert core.stats.critical_load_instances == 1

    def test_l1_hits_are_not_critical(self):
        trace = [TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1)]
        core, _, _ = _run_core(trace, latency=5, level=ServiceLevel.L1)
        assert core.stats.critical_load_instances == 0
        assert core.stats.load_instances_beyond_l1 == 0

    def test_independent_loads_overlap(self):
        trace = [TraceRecord(0x400 + i, Op.LOAD, address=0x1000 + 64 * i,
                             dst=i % 8) for i in range(8)]
        core, memory, _ = _run_core(trace, latency=100)
        # All eight issue within the first few cycles (MLP).
        issue_cycles = [cycle for _, cycle in memory.loads]
        assert max(issue_cycles) - min(issue_cycles) < 10
        assert core.stats.finish_cycle < 150

    def test_dependent_loads_serialise(self):
        trace = [
            TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1),
            TraceRecord(0x404, Op.LOAD, address=0x2000, dst=1, srcs=(1,)),
        ]
        core, memory, _ = _run_core(trace, latency=100)
        issue_cycles = [cycle for _, cycle in memory.loads]
        assert issue_cycles[1] >= issue_cycles[0] + 100

    def test_mlp_recorded_at_issue(self):
        trace = [TraceRecord(0x400 + i, Op.LOAD, address=0x1000 + 64 * i,
                             dst=i % 8) for i in range(4)]
        mlps = []
        core = None

        def hook(c, entry, cycle):
            mlps.append(entry.mlp_at_issue)

        engine = Engine()
        memory = _ScriptedMemory(engine, 100)
        core = Core(0, CoreConfig(), trace, memory, engine)
        core.load_issue_hooks.append(hook)
        engine.run([core])
        assert mlps == [1, 2, 3, 4]

    def test_store_does_not_block_retirement(self):
        trace = [TraceRecord(0x400, Op.STORE, address=0x1000)]
        core, memory, _ = _run_core(trace, latency=500)
        assert core.stats.finish_cycle < 20
        assert memory.stores

    def test_mispredicted_branch_stalls_fetch(self):
        # A branch whose outcome alternates randomly enough to mispredict,
        # followed by ALUs: compare against an always-taken variant.
        import random
        rng = random.Random(3)
        noisy = []
        steady = []
        for i in range(150):
            noisy.append(TraceRecord(0x800, Op.BRANCH,
                                     taken=rng.random() < 0.5))
            steady.append(TraceRecord(0x800, Op.BRANCH, taken=True))
            for j in range(3):
                record = TraceRecord(0x900 + 4 * j, Op.ALU, dst=j)
                noisy.append(record)
                steady.append(record)
        noisy_core, _, _ = _run_core(noisy)
        steady_core, _, _ = _run_core(steady)
        assert noisy_core.stats.mispredicts > steady_core.stats.mispredicts
        assert noisy_core.stats.finish_cycle > steady_core.stats.finish_cycle

    def test_rob_capacity_limits_window(self):
        config = CoreConfig(rob_entries=8)
        trace = [TraceRecord(0x400 + i, Op.LOAD, address=0x1000 + 64 * i,
                             dst=i % 4) for i in range(32)]
        core, memory, _ = _run_core(trace, latency=200, config=config)
        # With an 8-entry ROB, at most 8 loads can be outstanding.
        issue_cycles = sorted(cycle for _, cycle in memory.loads)
        assert issue_cycles[8] >= issue_cycles[0] + 200

    def test_retire_hook_fires_for_every_instruction(self):
        trace = [TraceRecord(0x400, Op.ALU, dst=1) for _ in range(37)]
        engine = Engine()
        memory = _ScriptedMemory(engine)
        core = Core(0, CoreConfig(), trace, memory, engine)
        count = []
        core.retire_hooks.append(lambda *a: count.append(1))
        engine.run([core])
        assert len(count) == 37

    def test_history_snapshot_hook(self):
        trace = [TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1)]
        engine = Engine()
        memory = _ScriptedMemory(engine)
        core = Core(0, CoreConfig(), trace, memory, engine)
        core.dispatch_hooks.append(
            lambda c, entry, cycle: setattr(entry, "history_snapshot",
                                            (1, 2)))
        engine.run([core])

    def test_two_cores_run_to_completion(self):
        engine = Engine()
        memory = _ScriptedMemory(engine, latency=30)
        traces = [
            [TraceRecord(0x400 + i, Op.LOAD, address=0x1000 + 64 * i,
                         dst=i % 8) for i in range(20)],
            [TraceRecord(0x800 + i, Op.ALU, dst=i % 8) for i in range(50)],
        ]
        cores = [Core(i, CoreConfig(), traces[i], memory, engine)
                 for i in range(2)]
        engine.run(cores)
        assert all(core.done for core in cores)
