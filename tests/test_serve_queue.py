"""Unit + seeded-fuzz tests for the distributed job-queue state machine.

The :class:`JobQueue` is pure (explicit ``now`` everywhere), so these
tests drive simulated wall-clock time deterministically.  The fuzz
suite hammers random claim/complete/fail/heartbeat/timeout/steal
sequences and checks the three contract properties the distributed
sweep relies on:

* **no double completion** -- a job's result is accepted at most once,
  however many stale workers race on it;
* **no lost jobs** -- every key is always in exactly one state;
* **convergence** -- with live workers draining it, every campaign
  terminates with all jobs done or quarantined.
"""

from __future__ import annotations

import random

import pytest

from repro.serve.queue import (DONE, LEASED, PENDING, QUARANTINED,
                               JobQueue, QueuePolicy)

POLICY = QueuePolicy(lease_timeout=10.0, max_attempts=3,
                     backoff_base=1.0, backoff_cap=8.0)


def make_queue(n: int = 3, policy: QueuePolicy = POLICY) -> JobQueue:
    queue = JobQueue(policy)
    for index in range(n):
        queue.add(f"job{index}", {"index": index})
    return queue


class TestLifecycle:
    def test_claims_are_fifo_in_sweep_order(self):
        queue = make_queue(3)
        assert queue.claim("w1", now=0.0).key == "job0"
        assert queue.claim("w2", now=0.0).key == "job1"
        assert queue.claim("w1", now=0.0).key == "job2"
        assert queue.claim("w2", now=0.0) is None

    def test_complete_requires_the_lease(self):
        queue = make_queue(1)
        queue.claim("w1", now=0.0)
        assert not queue.complete("w2", "job0")  # not the lease holder
        assert queue.complete("w1", "job0")
        assert queue.get("job0").state == DONE
        assert queue.get("job0").producer == "w1"

    def test_complete_is_idempotent_rejected(self):
        queue = make_queue(1)
        queue.claim("w1", now=0.0)
        assert queue.complete("w1", "job0")
        assert not queue.complete("w1", "job0")  # only one wins

    def test_lease_expiry_requeues_and_counts_attempt(self):
        queue = make_queue(1)
        queue.claim("w1", now=0.0)
        reaped = queue.expire(now=POLICY.lease_timeout + 0.1)
        assert reaped == ["job0"]
        job = queue.get("job0")
        assert job.state == PENDING
        assert job.attempts == 1
        assert "lease expired" in job.error

    def test_expired_job_respects_backoff(self):
        queue = make_queue(1)
        queue.claim("w1", now=0.0)
        queue.expire(now=11.0)
        # Backoff: not claimable until 11.0 + backoff_base.
        assert queue.claim("w2", now=11.0) is None
        assert queue.claim("w2", now=11.0 + POLICY.backoff_base).key \
            == "job0"

    def test_stale_completion_after_reassignment_is_rejected(self):
        queue = make_queue(1)
        queue.claim("w1", now=0.0)
        queue.expire(now=11.0)
        queue.claim("w2", now=12.5)
        assert not queue.complete("w1", "job0")  # zombie worker
        assert queue.get("job0").state == LEASED
        assert queue.complete("w2", "job0")

    def test_heartbeat_renews_and_detects_lost_lease(self):
        queue = make_queue(1)
        queue.claim("w1", now=0.0)
        assert queue.heartbeat("w1", "job0", now=8.0)
        # Renewed at 8.0 -> survives past the original deadline.
        assert queue.expire(now=12.0) == []
        assert queue.get("job0").state == LEASED
        # Let it lapse; the old worker's heartbeat is refused.
        queue.expire(now=30.0)
        assert not queue.heartbeat("w1", "job0", now=30.0)

    def test_failures_quarantine_after_max_attempts(self):
        queue = make_queue(1)
        now = 0.0
        for attempt in range(POLICY.max_attempts):
            job = queue.claim("w1", now=now)
            assert job is not None, f"attempt {attempt} not claimable"
            state = queue.fail("w1", "job0", "boom", now=now)
            now += POLICY.backoff_cap + 1.0
        assert state == QUARANTINED
        assert queue.get("job0").error == "boom"
        assert queue.finished

    def test_backoff_doubles_up_to_cap(self):
        policy = QueuePolicy(backoff_base=1.0, backoff_cap=8.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 5)] == \
            [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_mark_done_counts_as_cache_hit_producer(self):
        queue = make_queue(2)
        queue.mark_done("job0", "cache")
        assert queue.get("job0").producer == "cache"
        assert not queue.finished
        queue.mark_done("job1", "cache")
        assert queue.finished

    def test_next_runnable_at_reports_backoff_horizon(self):
        queue = make_queue(2)
        assert queue.next_runnable_at() == 0.0
        queue.claim("w1", now=0.0)
        queue.fail("w1", "job0", "x", now=0.0)
        queue.claim("w1", now=0.0)  # job1
        assert queue.next_runnable_at() == POLICY.backoff_base


class TestFuzz:
    """Seeded random claim/complete/timeout/steal sequences."""

    WORKERS = ("w0", "w1", "w2", "w3")

    @pytest.mark.parametrize("seed", range(20))
    def test_no_double_completion_and_no_lost_jobs(self, seed):
        rng = random.Random(seed)
        policy = QueuePolicy(lease_timeout=5.0, max_attempts=3,
                             backoff_base=0.5, backoff_cap=4.0)
        n_jobs = rng.randrange(1, 12)
        queue = make_queue(n_jobs, policy)
        keys = [f"job{i}" for i in range(n_jobs)]
        accepted = {key: 0 for key in keys}
        now = 0.0
        for _ in range(400):
            op = rng.randrange(6)
            worker = rng.choice(self.WORKERS)
            key = rng.choice(keys)
            if op == 0:
                job = queue.claim(worker, now)
                if job is not None:
                    assert job.state == LEASED
            elif op == 1:
                if queue.complete(worker, key):
                    accepted[key] += 1
            elif op == 2:
                queue.fail(worker, key, "fuzz failure", now)
            elif op == 3:
                queue.heartbeat(worker, key, now)
            elif op == 4:
                now += rng.uniform(0.0, 4.0)
                queue.expire(now)
            else:
                now += rng.uniform(0.0, 1.0)
            # No lost jobs: every key in exactly one legal state.
            states = {job.key: job.state for job in queue.jobs()}
            assert sorted(states) == sorted(keys)
            assert set(states.values()) <= {PENDING, LEASED, DONE,
                                            QUARANTINED}
            # Done jobs stay done (a completion is never revoked).
            for key_, count in accepted.items():
                assert count <= 1, f"{key_} completed twice"
                if count:
                    assert states[key_] == DONE

    @pytest.mark.parametrize("seed", range(10))
    def test_drain_terminates_all_done_or_quarantined(self, seed):
        """With cooperative workers (claim -> mostly complete,
        sometimes fail/vanish), every campaign reaches the terminal
        state in bounded time."""
        rng = random.Random(1000 + seed)
        policy = QueuePolicy(lease_timeout=2.0, max_attempts=3,
                             backoff_base=0.25, backoff_cap=1.0)
        n_jobs = rng.randrange(1, 10)
        queue = make_queue(n_jobs, policy)
        now = 0.0
        for _ in range(10_000):
            if queue.finished:
                break
            worker = rng.choice(self.WORKERS)
            job = queue.claim(worker, now)
            if job is None:
                # Nothing runnable right now: let backoff/leases lapse.
                now += 0.5
                queue.expire(now)
                continue
            roll = rng.random()
            if roll < 0.70:
                assert queue.complete(worker, job.key)
            elif roll < 0.85:
                queue.fail(worker, job.key, "fuzz failure", now)
            # else: worker vanishes (SIGKILL); lease expiry reclaims.
            now += rng.uniform(0.0, 0.5)
        assert queue.finished, "drain did not terminate"
        counts = queue.counts()
        assert counts.done + counts.quarantined == n_jobs
        for job in queue.jobs():
            if job.state == QUARANTINED:
                assert job.attempts >= policy.max_attempts
            else:
                assert job.producer in self.WORKERS
