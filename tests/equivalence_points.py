"""Fixed-seed scheme x workload-mix points pinning simulator behaviour.

These points define the equivalence contract of the hierarchy refactor:
``SimulationResult.to_dict()`` for every point must be bit-identical to
the golden JSON captured from the pre-refactor ``MulticoreSystem``
(commit 365ec1d and earlier), stored in ``tests/data/equivalence/``.

Regenerate the goldens (only when a behaviour change is *intended* and
reviewed) with ``python scripts/regenerate_equivalence_goldens.py``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.config import SystemConfig, scaled_config

GOLDEN_DIR = Path(__file__).parent / "data" / "equivalence"


def _base(instructions: int = 2_500,
          warmup: int = 0) -> SystemConfig:
    return scaled_config(num_cores=2, channels=1,
                         sim_instructions=instructions,
                         warmup_instructions=warmup)


def _point_none_mcf() -> Tuple[SystemConfig, List[str]]:
    """No prefetching: the bare demand path core->L1->L2->NoC->LLC->DRAM."""
    config = _base()
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="none")
    return config, ["605.mcf_s-1536B", "605.mcf_s-1536B"]


def _point_clip_berti_hetero() -> Tuple[SystemConfig, List[str]]:
    """CLIP + L1 berti + L2 spp_ppf over a heterogeneous mix.

    Exercises the prefetch filter chain (CLIP gate, duplicate/MSHR
    drops), criticality-flagged NoC/DRAM priority, and both prefetcher
    issue levels.
    """
    config = _base()
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="berti")
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                               name="spp_ppf")
    config.clip.enabled = True
    return config, ["623.xalancbmk_s-10B", "tc-14"]


def _point_mechanisms_stride() -> Tuple[SystemConfig, List[str]]:
    """Stride + Hermes + DSPatch + FDP throttle + criticality gate + TLB.

    Pins the related-work hooks (off-chip predictor launches, DSPatch
    candidate modulation), the throttling epoch, the baseline
    criticality gate, MMU translation latency, and warmup accounting.
    """
    config = _base(instructions=2_500, warmup=500)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="stride")
    config.related = dataclasses.replace(config.related, hermes=True,
                                         dspatch=True)
    config.throttle.name = "fdp"
    config.criticality.name = "fvp"
    config.criticality.gate = True
    config.tlb = dataclasses.replace(config.tlb, enabled=True)
    return config, ["619.lbm_s-2676B", "605.mcf_s-1536B"]


def _point_bingo_hpac() -> Tuple[SystemConfig, List[str]]:
    """Bingo L1 spatial prefetcher under the HPAC coordinated throttle.

    Pins the footprint/bitmap learning path and the multi-signal HPAC
    epoch decisions.  Bingo only predicts once generations retire into
    its event history, so this point runs long enough on a
    region-churning mix for replays to actually fire.
    """
    config = _base(instructions=8_000)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="bingo")
    config.throttle.name = "hpac"
    return config, ["605.mcf_s-1536B", "605.mcf_s-472B"]


def _point_ipcp_nst() -> Tuple[SystemConfig, List[str]]:
    """IPCP L1 prefetcher with the NST (negative-slack) throttle.

    Pins the per-class (CS/CPLX/GS) IPCP state machines and the NST
    epoch rescaling over an irregular mix.
    """
    config = _base()
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="ipcp")
    config.throttle.name = "nst"
    return config, ["602.gcc_s-1850B", "605.mcf_s-994B"]


def _point_spp_ppf_l2() -> Tuple[SystemConfig, List[str]]:
    """SPP+PPF alone at L2 (no L1 prefetcher).

    Pins the signature-path lookahead and perceptron filter without any
    L1-side traffic shaping in front of it.
    """
    config = _base()
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="none")
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                               name="spp_ppf")
    return config, ["bfs-14", "649.fotonik3d_s-10881B"]


def _point_streamer_clip() -> Tuple[SystemConfig, List[str]]:
    """Streamer L1 prefetcher gated by CLIP over graph workloads.

    Pins stream-direction training plus the CLIP admission path for a
    prefetcher with very different candidate volume than berti.
    """
    config = _base()
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="streamer")
    config.clip.enabled = True
    return config, ["pr-14", "cc-14"]


def _point_bingo_l2_crisp() -> Tuple[SystemConfig, List[str]]:
    """Berti L1 + Bingo L2 with the CRISP criticality measurer.

    Pins dual-level prefetch interaction (L1 fills seeding L2 training)
    and a non-gating baseline criticality predictor's bookkeeping.
    """
    config = _base()
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                               name="bingo")
    config.criticality.name = "crisp"
    config.criticality.gate = False
    return config, ["620.omnetpp_s-141B", "623.xalancbmk_s-165B"]


def _point_bandit_selector() -> Tuple[SystemConfig, List[str]]:
    """Contextual-bandit per-core prefetcher selection (learned family).

    Pins the policy-epoch cadence, the deterministic arm warm-up and
    the epsilon-greedy xorshift stream, and the SelectedPrefetcher arm
    multiplexer under a bandwidth-hungry mix.  A short epoch makes
    several selection decisions land inside the pinned window.
    """
    config = _base(instructions=4_000)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="none")
    config.learned = dataclasses.replace(config.learned, policy="bandit",
                                         epoch_accesses=64)
    return config, ["605.mcf_s-1536B", "619.lbm_s-2676B"]


def _point_perceptron_filter() -> Tuple[SystemConfig, List[str]]:
    """Hashed-perceptron prefetch filtering over Berti (learned family).

    Pins the perceptron lane hashing, the bandwidth-adaptive admission
    threshold, probe admissions, and delayed fate training -- the
    learned competitor to the CLIP admission path pinned by
    ``clip_berti_hetero``.
    """
    config = _base(instructions=4_000)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="berti")
    config.learned = dataclasses.replace(config.learned,
                                         policy="perceptron",
                                         epoch_accesses=64)
    return config, ["605.mcf_s-1536B", "623.xalancbmk_s-10B"]


#: name -> builder returning (config, workload mix).
POINTS: Dict[str, Callable[[], Tuple[SystemConfig, List[str]]]] = {
    "none_mcf": _point_none_mcf,
    "clip_berti_hetero": _point_clip_berti_hetero,
    "mechanisms_stride": _point_mechanisms_stride,
    "bingo_hpac": _point_bingo_hpac,
    "ipcp_nst": _point_ipcp_nst,
    "spp_ppf_l2": _point_spp_ppf_l2,
    "streamer_clip": _point_streamer_clip,
    "bingo_l2_crisp": _point_bingo_l2_crisp,
    "bandit_selector": _point_bandit_selector,
    "perceptron_filter": _point_perceptron_filter,
}
