"""Fixed-seed scheme x workload-mix points pinning simulator behaviour.

These points define the equivalence contract of the hierarchy refactor:
``SimulationResult.to_dict()`` for every point must be bit-identical to
the golden JSON captured from the pre-refactor ``MulticoreSystem``
(commit 365ec1d and earlier), stored in ``tests/data/equivalence/``.

Regenerate the goldens (only when a behaviour change is *intended* and
reviewed) with ``python scripts/regenerate_equivalence_goldens.py``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.config import SystemConfig, scaled_config

GOLDEN_DIR = Path(__file__).parent / "data" / "equivalence"


def _base(instructions: int = 2_500,
          warmup: int = 0) -> SystemConfig:
    return scaled_config(num_cores=2, channels=1,
                         sim_instructions=instructions,
                         warmup_instructions=warmup)


def _point_none_mcf() -> Tuple[SystemConfig, List[str]]:
    """No prefetching: the bare demand path core->L1->L2->NoC->LLC->DRAM."""
    config = _base()
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="none")
    return config, ["605.mcf_s-1536B", "605.mcf_s-1536B"]


def _point_clip_berti_hetero() -> Tuple[SystemConfig, List[str]]:
    """CLIP + L1 berti + L2 spp_ppf over a heterogeneous mix.

    Exercises the prefetch filter chain (CLIP gate, duplicate/MSHR
    drops), criticality-flagged NoC/DRAM priority, and both prefetcher
    issue levels.
    """
    config = _base()
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="berti")
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                               name="spp_ppf")
    config.clip.enabled = True
    return config, ["623.xalancbmk_s-10B", "tc-14"]


def _point_mechanisms_stride() -> Tuple[SystemConfig, List[str]]:
    """Stride + Hermes + DSPatch + FDP throttle + criticality gate + TLB.

    Pins the related-work hooks (off-chip predictor launches, DSPatch
    candidate modulation), the throttling epoch, the baseline
    criticality gate, MMU translation latency, and warmup accounting.
    """
    config = _base(instructions=2_500, warmup=500)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="stride")
    config.related = dataclasses.replace(config.related, hermes=True,
                                         dspatch=True)
    config.throttle.name = "fdp"
    config.criticality.name = "fvp"
    config.criticality.gate = True
    config.tlb = dataclasses.replace(config.tlb, enabled=True)
    return config, ["619.lbm_s-2676B", "605.mcf_s-1536B"]


#: name -> builder returning (config, workload mix).
POINTS: Dict[str, Callable[[], Tuple[SystemConfig, List[str]]]] = {
    "none_mcf": _point_none_mcf,
    "clip_berti_hetero": _point_clip_berti_hetero,
    "mechanisms_stride": _point_mechanisms_stride,
}
