"""Integration tests: the full multi-core system end to end."""

from __future__ import annotations

import dataclasses

import pytest

from repro import (MulticoreSystem, run_system, scaled_config,
                   weighted_speedup)
from repro.trace import heterogeneous_mixes, homogeneous_mix


def _config(prefetcher="none", clip=False, cores=2, channels=1,
            instructions=1_500, **kw):
    config = scaled_config(num_cores=cores, channels=channels,
                           sim_instructions=instructions)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name=prefetcher)
    config.clip.enabled = clip
    for key, value in kw.items():
        setattr(config, key, value)
    return config


class TestBasicRuns:
    def test_all_cores_retire_all_instructions(self):
        config = _config(cores=4)
        result = run_system(config, homogeneous_mix("605.mcf_s-1536B", 4))
        assert all(core.instructions == config.sim_instructions
                   for core in result.cores)

    def test_deterministic_results(self):
        config = _config(cores=2, prefetcher="berti")
        mix = homogeneous_mix("603.bwaves_s-1740B", 2)
        a = run_system(config, mix)
        b = run_system(_config(cores=2, prefetcher="berti"), mix)
        assert a.total_cycles == b.total_cycles
        assert a.ipc_per_core == b.ipc_per_core
        assert a.prefetch.issued == b.prefetch.issued

    def test_mix_length_validation(self):
        with pytest.raises(ValueError, match="workloads for"):
            MulticoreSystem(_config(cores=4), ["605.mcf_s-1536B"] * 3)

    def test_heterogeneous_mix_runs(self):
        mix = heterogeneous_mixes(1, 2, seed=11)[0]
        result = run_system(_config(cores=2), mix)
        assert result.total_instructions == 2 * 1_500
        assert [c.workload for c in result.cores] == mix

    def test_labels(self):
        config = _config(prefetcher="berti", clip=True)
        system = MulticoreSystem(config,
                                 homogeneous_mix("605.mcf_s-1536B", 2))
        assert system.label == "berti+clip"


class TestMemoryHierarchyBehaviour:
    def test_demand_misses_reach_dram(self):
        result = run_system(_config(cores=2),
                            homogeneous_mix("619.lbm_s-2676B", 2))
        assert result.dram.reads > 0
        assert result.levels["L1D"].demand_misses > 0
        assert result.levels["LLC"].demand_misses > 0

    def test_store_heavy_workload_writes_back(self):
        # lbm streams stores; dirty evictions must reach DRAM as writes.
        # Tiny L2 + LLC force the dirty data through the full writeback
        # path (L1 -> L2 -> LLC -> DRAM) within the short run.
        config = _config(cores=2, instructions=4_000)
        config.l2 = dataclasses.replace(config.l2, size_kib=16)
        config.llc_slice = dataclasses.replace(config.llc_slice,
                                               size_kib=16)
        result = run_system(config, homogeneous_mix("619.lbm_s-2676B", 2))
        assert result.dram.writes > 0

    def test_hierarchy_conservation(self):
        """Demand accesses shrink monotonically down the hierarchy."""
        result = run_system(_config(cores=2),
                            homogeneous_mix("605.mcf_s-1536B", 2))
        l1 = result.levels["L1D"]
        l2 = result.levels["L2"]
        llc = result.levels["LLC"]
        assert l1.demand_accesses >= l1.demand_misses
        assert l2.demand_accesses <= l1.demand_misses
        assert llc.demand_accesses <= l2.demand_misses + 10

    def test_more_channels_never_slower(self):
        mix = homogeneous_mix("603.bwaves_s-1740B", 4)
        slow = run_system(_config(cores=4, channels=1), mix)
        fast = run_system(_config(cores=4, channels=8), mix)
        assert fast.total_cycles <= slow.total_cycles
        assert fast.average_l1_miss_latency() \
            <= slow.average_l1_miss_latency()

    def test_noc_carries_traffic(self):
        result = run_system(_config(cores=4),
                            homogeneous_mix("605.mcf_s-1536B", 4))
        assert result.noc.packets > 0
        assert result.noc.average_latency > 0

    def test_miss_latency_ordering(self):
        """Loads serviced deeper must, on average, have waited longer."""
        result = run_system(_config(cores=2),
                            homogeneous_mix("605.mcf_s-1536B", 2))
        l1 = result.levels["L1D"].average_miss_latency
        assert l1 > 15  # At least the L1+L2 lookup pipeline.


class TestPrefetchingIntegration:
    def test_berti_issues_and_hits(self):
        result = run_system(
            _config(cores=2, prefetcher="berti", instructions=6_000),
            homogeneous_mix("603.bwaves_s-1740B", 2))
        assert result.prefetch.issued > 0
        assert result.prefetch.useful > 0

    def test_prefetches_marked_in_dram_stats(self):
        result = run_system(
            _config(cores=2, prefetcher="berti", instructions=6_000),
            homogeneous_mix("603.bwaves_s-1740B", 2))
        assert result.dram.prefetch_reads > 0

    def test_clip_reduces_prefetch_traffic(self):
        mix = homogeneous_mix("605.mcf_s-1536B", 2)
        berti = run_system(
            _config(cores=2, prefetcher="berti", instructions=6_000), mix)
        clip = run_system(
            _config(cores=2, prefetcher="berti", clip=True,
                    instructions=6_000), mix)
        assert clip.prefetch.issued < berti.prefetch.issued
        assert clip.clip is not None
        assert clip.clip.prefetches_seen >= clip.clip.prefetches_allowed

    def test_l2_prefetcher_path(self):
        config = _config(cores=2, instructions=6_000)
        config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                                   name="spp_ppf")
        result = run_system(config, homogeneous_mix("603.bwaves_s-1740B", 2))
        assert result.prefetch.issued > 0

    def test_weighted_speedup_identity(self):
        config = _config(cores=2)
        mix = homogeneous_mix("605.mcf_s-1536B", 2)
        result = run_system(config, mix)
        again = run_system(_config(cores=2), mix)
        assert weighted_speedup(result, again) == pytest.approx(1.0)


class TestHermesAndDspatchIntegration:
    def test_hermes_runs_and_trains(self):
        config = _config(cores=2, prefetcher="berti", instructions=4_000)
        config.related = dataclasses.replace(config.related, hermes=True)
        system = MulticoreSystem(config,
                                 homogeneous_mix("605.mcf_s-1536B", 2))
        result = system.run()
        hermes = system.nodes[0].hermes
        assert hermes is not None and hermes.predictions > 0
        assert all(core.instructions == 4_000 for core in result.cores)

    def test_dspatch_runs(self):
        config = _config(cores=2, prefetcher="berti", instructions=4_000)
        config.related = dataclasses.replace(config.related, dspatch=True)
        result = run_system(config, homogeneous_mix("605.mcf_s-1536B", 2))
        assert all(core.instructions == 4_000 for core in result.cores)


class TestThrottlerIntegration:
    def test_fdp_attached_and_deciding(self):
        config = _config(cores=2, prefetcher="stride", instructions=6_000)
        config.throttle.name = "fdp"
        system = MulticoreSystem(config,
                                 homogeneous_mix("619.lbm_s-2676B", 2))
        system.run()
        assert system.nodes[0].throttler is not None
        assert system.nodes[0].throttler.decisions > 0


class TestInvariants:
    def test_no_mshr_leak(self):
        config = _config(cores=2, prefetcher="berti", clip=True,
                         instructions=4_000)
        system = MulticoreSystem(config,
                                 homogeneous_mix("605.mcf_s-1536B", 2))
        system.run()
        for node in system.nodes:
            assert not node.l1_mshr.entries, "leaked L1 MSHRs"
            assert not node.l2_mshr.entries, "leaked L2 MSHRs"
            assert not node.l1_mshr.pending
            assert not node.l2_mshr.pending
        for mshr_file in system.llc_mshr:
            assert not mshr_file.entries, "leaked LLC MSHRs"

    def test_outstanding_loads_zero_at_end(self):
        config = _config(cores=2, prefetcher="berti", instructions=3_000)
        system = MulticoreSystem(config,
                                 homogeneous_mix("603.bwaves_s-1740B", 2))
        system.run()
        assert all(core.outstanding_loads == 0 for core in system.cores)

    def test_dram_quiescent_at_end(self):
        config = _config(cores=2, prefetcher="berti", instructions=3_000)
        system = MulticoreSystem(config,
                                 homogeneous_mix("619.lbm_s-2676B", 2))
        system.run()
        for channel in system.dram.channels:
            assert channel.in_flight == 0
            assert not channel.read_queue


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        config = _config(cores=2, instructions=2_000)
        config.warmup_instructions = 1_000
        result = run_system(config, homogeneous_mix("605.mcf_s-1536B", 2))
        # Only post-warmup instructions are counted...
        assert all(core.instructions == 2_000 for core in result.cores)
        # ...over a post-warmup cycle window.
        cold = run_system(_config(cores=2, instructions=2_000),
                          homogeneous_mix("605.mcf_s-1536B", 2))
        assert all(core.cycles > 0 for core in result.cores)
        assert result.cores[0].cycles < cold.cores[0].cycles * 2

    def test_warmed_caches_raise_hit_rate(self):
        mix = homogeneous_mix("605.mcf_s-1536B", 2)
        cold = run_system(_config(cores=2, instructions=2_000), mix)
        config = _config(cores=2, instructions=2_000)
        config.warmup_instructions = 3_000
        warm = run_system(config, mix)
        cold_rate = (cold.levels["L1D"].demand_hits
                     / max(1, cold.levels["L1D"].demand_accesses))
        warm_rate = (warm.levels["L1D"].demand_hits
                     / max(1, warm.levels["L1D"].demand_accesses))
        # Memory-side stats are cumulative, but the warm run's longer
        # history still lifts the overall hit rate.
        assert warm_rate >= cold_rate - 0.05
