"""Statistical quality tests for the critical signature hash."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import critical_signature


class TestDistribution:
    def test_regions_spread_over_sets(self):
        """Concurrent loads must scatter across predictor sets (the paper's
        section 4.3 aliasing argument)."""
        sets = Counter()
        for region in range(512):
            signature = critical_signature(0x400, region << 14, 0xABC, 0x3)
            sets[signature % 128] += 1
        # No set receives a pathological share.
        assert max(sets.values()) < 20
        assert len(sets) > 100

    def test_ips_spread_over_sets(self):
        sets = Counter()
        for ip in range(0x400, 0x400 + 512 * 4, 4):
            signature = critical_signature(ip, 0x100000, 0, 0)
            sets[signature % 128] += 1
        assert len(sets) > 100

    def test_history_bits_change_roughly_half_the_output(self):
        flips = Counter()
        for history in range(256):
            base = critical_signature(0x400, 0x100000, history, 0)
            flipped = critical_signature(0x400, 0x100000, history ^ 1, 0)
            flips[bin(base ^ flipped).count("1")] += 1
        average = sum(k * v for k, v in flips.items()) / 256
        assert 2 < average < 12  # avalanche over the 13-bit output

    @given(st.integers(0, 1 << 48), st.integers(0, 1 << 48),
           st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1))
    @settings(max_examples=100, deadline=None)
    def test_range_invariant(self, ip, address, bhr, chr_):
        signature = critical_signature(ip, address, bhr, chr_)
        assert 0 <= signature < (1 << 13)

    @given(st.integers(0, 1 << 40))
    @settings(max_examples=50, deadline=None)
    def test_lines_within_region_collide_on_purpose(self, base):
        region = (base >> 8) << 8
        signatures = {critical_signature(0x400, region | offset, 0x5, 0x2)
                      for offset in range(0, 256, 17)}
        assert len(signatures) == 1
