"""Tests for the experiment runner and (tiny-scale) figure drivers.

The full-size figure sweeps live in benchmarks/; here the drivers run at a
minimal scale to verify plumbing, caching, and output structure.
"""

from __future__ import annotations

import pytest

from repro.experiments import (BenchScale, ExperimentRunner, Scheme,
                               figure9, figure16, table2, table3)
from repro.experiments.runner import SCHEMES
from repro.experiments.statistics import geometric_mean
from repro.experiments.report import format_table


TINY = BenchScale(num_cores=2, sim_instructions=1_200,
                  channel_sweep=(1, 2), constrained_channels=1,
                  homogeneous_sample=2, heterogeneous_mixes=1)


@pytest.fixture(scope="module")
def tiny_runner() -> ExperimentRunner:
    return ExperimentRunner(TINY)


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xxx", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_reporting_module_removed_with_directions(self):
        # The PR 2 re-export shim finished its deprecation cycle: the
        # import now fails with a message naming both new homes and the
        # repro.api facade.
        import importlib
        import sys
        sys.modules.pop("repro.experiments.reporting", None)
        with pytest.raises(ImportError) as excinfo:
            importlib.import_module("repro.experiments.reporting")
        message = str(excinfo.value)
        assert "repro.experiments.statistics" in message
        assert "repro.experiments.report" in message
        assert "repro.api" in message


class TestRunner:
    def test_all_schemes_build_configs(self, tiny_runner):
        for scheme in SCHEMES:
            config = tiny_runner.config_for(Scheme.parse(scheme),
                                            channels=1)
            config.validate()

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            Scheme.parse("oracle")

    def test_string_scheme_raises_migration_error(self, tiny_runner):
        # The legacy string/**overrides path was removed after its
        # deprecation cycle; the error routes users to both migrations.
        with pytest.raises(TypeError) as excinfo:
            tiny_runner.config_for("berti", channels=1)
        message = str(excinfo.value)
        assert "Scheme.parse('berti')" in message
        assert "repro.api" in message
        assert "docs/api.md" in message

    def test_string_scheme_with_overrides_raises(self, tiny_runner):
        with pytest.raises(TypeError, match="removed"):
            tiny_runner.config_for("berti", channels=1,
                                   criticality="fvp", crit_gate=False)

    def test_caching(self, tiny_runner):
        scheme = Scheme.parse("none")
        before = tiny_runner.runs
        a = tiny_runner.run_homogeneous(scheme, "605.mcf_s-1536B", 1)
        mid = tiny_runner.runs
        b = tiny_runner.run_homogeneous(scheme, "605.mcf_s-1536B", 1)
        assert tiny_runner.runs == mid == before + 1
        assert a is b

    def test_speedup_vs_self_scheme_baseline(self, tiny_runner):
        value = tiny_runner.speedup_homogeneous(
            Scheme.parse("none"), "605.mcf_s-1536B", 1)
        assert value == pytest.approx(1.0)

    def test_clip_override_plumbed(self, tiny_runner):
        config = tiny_runner.config_for(
            Scheme.parse("berti",
                         clip_overrides={"use_accuracy_filter": False}),
            1)
        assert config.clip.enabled
        assert not config.clip.use_accuracy_filter

    def test_typed_scheme_rejects_kwargs(self, tiny_runner):
        with pytest.raises(TypeError, match="typed Scheme"):
            tiny_runner.config_for(Scheme.parse("berti"), 1,
                                   criticality="fvp")

    def test_sample_homogeneous_size(self):
        assert len(TINY.sample_homogeneous()) == 2


class TestDriversAtTinyScale:
    def test_figure9_structure(self, tiny_runner):
        out = figure9(tiny_runner, quiet=True)
        for scheme in ("berti", "berti+clip", "ipcp+clip"):
            assert scheme in out["homogeneous"]
            assert out["homogeneous"][scheme] > 0

    def test_figure16_structure(self, tiny_runner):
        out = figure16(tiny_runner, quiet=True)
        assert 0.0 <= out["average"] <= 1.0

    def test_table2_total(self):
        assert table2(quiet=True)["total_kb"] == pytest.approx(1.564,
                                                               abs=0.01)

    def test_table3_defaults(self):
        out = table3(quiet=True)
        assert out["cores"] == 64 and out["llc_slice_kib"] == 2048
