"""Tests for the NoC and DRAM substrates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramConfig, NocConfig
from repro.dram import AddressMapping, DramSystem
from repro.noc import MeshNoc
from repro.sim.engine import Engine


class TestMeshRouting:
    def test_hops_manhattan(self):
        noc = MeshNoc(4)
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 3) == 3
        assert noc.hops(0, 15) == 6
        assert noc.hops(5, 10) == 2

    def test_route_length_matches_hops(self):
        noc = MeshNoc(4)
        for src in range(16):
            for dst in range(16):
                assert len(noc.route(src, dst)) == noc.hops(src, dst)

    def test_route_links_are_adjacent(self):
        noc = MeshNoc(8)
        for src, dst in [(0, 63), (7, 56), (12, 33)]:
            for a, b in noc.route(src, dst):
                ax, ay = noc.coordinates(a)
                bx, by = noc.coordinates(b)
                assert abs(ax - bx) + abs(ay - by) == 1

    def test_route_out_of_range(self):
        noc = MeshNoc(2)
        with pytest.raises(ValueError):
            noc.route(0, 4)

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=50, deadline=None)
    def test_xy_route_is_deterministic_and_terminates(self, src, dst):
        noc = MeshNoc(8)
        links = noc.route(src, dst)
        if links:
            assert links[0][0] == src
            assert links[-1][1] == dst


class TestMeshTiming:
    def test_local_delivery(self):
        noc = MeshNoc(4)
        arrival = noc.send_request(3, 3, now=100)
        assert arrival == 100 + noc.config.router_latency

    def test_latency_grows_with_distance(self):
        noc = MeshNoc(8)
        near = noc.send_data(0, 1, now=0)
        noc_far = MeshNoc(8)
        far = noc_far.send_data(0, 63, now=0)
        assert far > near

    def test_contention_serialises_a_link(self):
        noc = MeshNoc(4)
        first = noc.send_data(0, 1, now=0)
        second = noc.send_data(0, 1, now=0)
        assert second > first

    def test_high_priority_overtakes_low(self):
        congested = MeshNoc(4)
        for _ in range(10):
            congested.send_data(0, 1, now=0, high_priority=False)
        high = congested.send_data(0, 1, now=0, high_priority=True)
        low = congested.send_data(0, 1, now=0, high_priority=False)
        assert high < low

    def test_stats_accumulate(self):
        noc = MeshNoc(4)
        noc.send_request(0, 3, now=0)
        noc.send_data(3, 0, now=10)
        assert noc.stats.packets == 2
        assert noc.stats.flits == (noc.config.address_packet_flits
                                   + noc.config.data_packet_flits)
        assert noc.stats.average_latency > 0


class TestAddressMapping:
    def test_channel_interleaving_at_line_granularity(self):
        mapping = AddressMapping(DramConfig(channels=4))
        channels = [mapping.locate(line).channel for line in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_locality_within_channel(self):
        mapping = AddressMapping(DramConfig(channels=1))
        first = mapping.locate(0)
        same_row = mapping.locate(10)
        assert (first.bank, first.row) == (same_row.bank, same_row.row)

    def test_bank_hashing_spreads_aligned_bases(self):
        """Streams starting at large power-of-two offsets must not all land
        on the same bank (the XOR hash breaks the alignment)."""
        mapping = AddressMapping(DramConfig(channels=1))
        base_lines = [i * (1 << 22) for i in range(16)]
        banks = {mapping.locate(line).bank for line in base_lines}
        assert len(banks) > 4

    def test_rejects_tiny_row_buffer(self):
        with pytest.raises(ValueError):
            AddressMapping(DramConfig(row_buffer_bytes=32))

    @given(st.integers(min_value=0, max_value=1 << 45))
    @settings(max_examples=100, deadline=None)
    def test_coordinates_in_range(self, line):
        config = DramConfig(channels=8)
        mapping = AddressMapping(config)
        where = mapping.locate(line)
        assert 0 <= where.channel < config.channels
        assert 0 <= where.bank < config.banks_per_channel
        assert where.row >= 0


class TestDramChannel:
    def _system(self, channels: int = 1) -> tuple:
        engine = Engine()
        dram = DramSystem(DramConfig(channels=channels), engine)
        return engine, dram

    def _drain(self, engine: Engine) -> None:
        class _Idle:
            next_wake = float("inf")
            done = False

            def tick(self, cycle):
                self.done = True

        idle = _Idle()
        idle.done = False
        # Run the event loop until no events remain.
        while engine.pending_events:
            engine.now = engine.next_event_cycle
            engine._drain_events_at(engine.now)

    def test_single_read_latency_components(self):
        engine, dram = self._system()
        done = []
        dram.read(0, now=0, callback=done.append)
        self._drain(engine)
        config = dram.config
        # Cold bank: tRCD + CAS + burst.
        expected = config.trcd_cycles + config.cas_cycles + config.burst_cycles
        assert done == [expected]

    def test_row_hit_faster_than_row_conflict(self):
        engine, dram = self._system()
        times = []
        dram.read(0, now=0, callback=times.append)
        self._drain(engine)
        start = times[-1]
        dram.read(1, now=start, callback=times.append)       # same row
        self._drain(engine)
        hit_latency = times[-1] - start
        start = times[-1]
        conflict_line = 64 * dram.config.banks_per_channel * 16
        # Find a line mapping to bank 0 with a different row.
        mapping = dram.mapping
        target = None
        for candidate in range(64, 1 << 20, 64):
            where = mapping.locate(candidate)
            if where.bank == mapping.locate(0).bank and where.row != 0:
                target = candidate
                break
        assert target is not None
        dram.read(target, now=start, callback=times.append)
        self._drain(engine)
        conflict_latency = times[-1] - start
        assert conflict_latency > hit_latency

    def test_bus_serialises_throughput(self):
        """N row-hit reads drain at ~burst_cycles per line."""
        engine, dram = self._system()
        done = []
        for line in range(32):
            dram.read(line, now=0, callback=done.append)
        self._drain(engine)
        span = max(done) - min(done)
        assert span >= 31 * dram.config.burst_cycles * 0.8

    def test_demand_prioritised_over_prefetch(self):
        engine, dram = self._system()
        order = []
        for line in range(8):
            dram.read(line + 100 * 64, now=0,
                      callback=lambda t, l=line: order.append(("pf", l)),
                      is_prefetch=True)
        dram.read(5000 * 64, now=0,
                  callback=lambda t: order.append(("demand", 0)))
        self._drain(engine)
        demand_pos = order.index(("demand", 0))
        assert demand_pos < len(order) - 1

    def test_critical_prefetch_gets_demand_priority(self):
        engine, dram = self._system()
        order = []
        for line in range(8):
            dram.read(line + 100 * 64, now=0,
                      callback=lambda t, l=line: order.append("pf"),
                      is_prefetch=True)
        dram.read(5000 * 64, now=0, callback=lambda t: order.append("crit"),
                  is_prefetch=True, crit=True)
        self._drain(engine)
        assert order.index("crit") < len(order) - 1

    def test_writes_drain_and_count(self):
        engine, dram = self._system()
        for line in range(4):
            dram.write(line, now=0)
        self._drain(engine)
        assert dram.total_writes == 4

    def test_utilization_bounded(self):
        engine, dram = self._system()
        for line in range(16):
            dram.read(line, now=0, callback=lambda t: None)
        self._drain(engine)
        assert 0.0 < dram.utilization(engine.now) <= 1.0

    def test_in_flight_never_negative(self):
        engine, dram = self._system()
        for line in range(64):
            dram.read(line * 7, now=0, callback=lambda t: None)
        self._drain(engine)
        assert all(ch.in_flight == 0 for ch in dram.channels)
