"""Serialisation invariance: results round-trip and cache keys hold.

Two pins that make the hot-path ``__slots__`` / dict-fast-path work
safe to land:

* ``SimulationResult.to_dict()/from_dict()`` stays lossless for every
  committed equivalence golden (the goldens double as a corpus of
  realistic, fully-populated result trees);
* ``RunSpec.cache_key()`` is byte-stable -- the keys below were
  captured before the perf refactor, so any accidental change to config
  materialisation (field order, defaults, repr of nested values) or a
  spurious ``CACHE_SCHEMA_VERSION`` bump fails here instead of silently
  invalidating every on-disk sweep cache.
"""

from __future__ import annotations

import json

import pytest

from equivalence_points import GOLDEN_DIR, POINTS

from repro.experiments.sweep import CACHE_SCHEMA_VERSION, RunSpec, Scheme
from repro.sim.stats import SimulationResult


@pytest.mark.parametrize("point", sorted(POINTS))
def test_result_dict_roundtrip_is_lossless(point):
    golden = json.loads((GOLDEN_DIR / f"{point}.json").read_text())
    tree = golden["result"]
    rebuilt = SimulationResult.from_dict(tree)
    assert rebuilt.to_dict() == tree
    # A second hop catches asymmetries between the two directions.
    assert SimulationResult.from_dict(rebuilt.to_dict()).to_dict() == tree


#: (RunSpec factory kwargs, sha256 hex) captured pre-refactor; see the
#: module docstring before editing.
_PINNED_KEYS = [
    (dict(scheme="berti+clip", mix=("605.mcf_s-1536B",) * 4,
          channels=1, num_cores=4, sim_instructions=8000),
     "be3124b833970d663aeaf20a1036b3801e2fdaf3a4ca3fe375d8f529b730e491"),
    (dict(scheme="none", mix=("623.xalancbmk_s-10B", "tc-14"),
          channels=1, num_cores=2, sim_instructions=2500),
     "a9e984c54c3fb2f8d38037b9498a95e8b6b902c0e6bec892eb0392cd9dbcd1ff"),
    (dict(scheme="spp_ppf+clip+fdp",
          mix=("619.lbm_s-2676B", "605.mcf_s-1536B"),
          channels=2, num_cores=2, sim_instructions=2500),
     "e85ba0225525a2c0250e3bcf6289fc7654029928f0623be5fd951ef8be889547"),
]


def test_cache_schema_version_not_bumped():
    """The perf refactor is behaviour-preserving, so cached results stay
    valid; bumping the schema would throw away every existing cache."""
    assert CACHE_SCHEMA_VERSION == 1


@pytest.mark.parametrize("kwargs,expected",
                         _PINNED_KEYS,
                         ids=[k[0]["scheme"] for k in _PINNED_KEYS])
def test_sweep_cache_keys_unchanged(kwargs, expected):
    spec = RunSpec(scheme=Scheme.parse(kwargs["scheme"]),
                   mix=kwargs["mix"], channels=kwargs["channels"],
                   num_cores=kwargs["num_cores"],
                   sim_instructions=kwargs["sim_instructions"])
    assert spec.cache_key() == expected
