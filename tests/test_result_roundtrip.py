"""Serialisation invariance: results round-trip and cache keys hold.

Two pins that make the hot-path ``__slots__`` / dict-fast-path work
safe to land:

* ``SimulationResult.to_dict()/from_dict()`` stays lossless for every
  committed equivalence golden (the goldens double as a corpus of
  realistic, fully-populated result trees);
* ``RunSpec.cache_key()`` is byte-stable -- the keys below were
  captured before the perf refactor, so any accidental change to config
  materialisation (field order, defaults, repr of nested values) or a
  spurious ``CACHE_SCHEMA_VERSION`` bump fails here instead of silently
  invalidating every on-disk sweep cache.
"""

from __future__ import annotations

import json

import pytest

from equivalence_points import GOLDEN_DIR, POINTS

from repro.experiments.sweep import CACHE_SCHEMA_VERSION, RunSpec, Scheme
from repro.sim.stats import SimulationResult


@pytest.mark.parametrize("point", sorted(POINTS))
def test_result_dict_roundtrip_is_lossless(point):
    golden = json.loads((GOLDEN_DIR / f"{point}.json").read_text())
    tree = golden["result"]
    rebuilt = SimulationResult.from_dict(tree)
    assert rebuilt.to_dict() == tree
    # A second hop catches asymmetries between the two directions.
    assert SimulationResult.from_dict(rebuilt.to_dict()).to_dict() == tree


#: (RunSpec factory kwargs, sha256 hex) captured at schema version 2
#: (the counter-layer release: ``SystemConfig.core_overrides`` joined
#: the hashed config and the schema was bumped deliberately); see the
#: module docstring before editing.
_PINNED_KEYS = [
    (dict(scheme="berti+clip", mix=("605.mcf_s-1536B",) * 4,
          channels=1, num_cores=4, sim_instructions=8000),
     "40675f694746730dadb441c0b2818a2615aa2813bff8a4b3a222b2dc2fa4e993"),
    (dict(scheme="none", mix=("623.xalancbmk_s-10B", "tc-14"),
          channels=1, num_cores=2, sim_instructions=2500),
     "46ff084f6ec948a75993eb259e52a355bf2f932f8e7d5066040956ad4d12d3af"),
    (dict(scheme="spp_ppf+clip+fdp",
          mix=("619.lbm_s-2676B", "605.mcf_s-1536B"),
          channels=2, num_cores=2, sim_instructions=2500),
     "9b6538a31fdcd4f31e31a23de029202793c4c176a75c3c9f69d83e7cb69bf49d"),
]


def test_cache_schema_version_matches_counter_release():
    """Version 2 is the counter-layer release: results gained the
    per-component ``counters`` snapshot and energy/EDP columns, so every
    version-1 cache entry must be re-simulated (stale entries read as
    misses, never as load errors).  Bump this pin only together with a
    deliberate schema change."""
    assert CACHE_SCHEMA_VERSION == 2


@pytest.mark.parametrize("kwargs,expected",
                         _PINNED_KEYS,
                         ids=[k[0]["scheme"] for k in _PINNED_KEYS])
def test_sweep_cache_keys_unchanged(kwargs, expected):
    spec = RunSpec(scheme=Scheme.parse(kwargs["scheme"]),
                   mix=kwargs["mix"], channels=kwargs["channels"],
                   num_cores=kwargs["num_cores"],
                   sim_instructions=kwargs["sim_instructions"])
    assert spec.cache_key() == expected
