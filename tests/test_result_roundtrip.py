"""Serialisation invariance: results round-trip and cache keys hold.

Two pins that make the hot-path ``__slots__`` / dict-fast-path work
safe to land:

* ``SimulationResult.to_dict()/from_dict()`` stays lossless for every
  committed equivalence golden (the goldens double as a corpus of
  realistic, fully-populated result trees);
* ``RunSpec.cache_key()`` is byte-stable -- the keys below were
  captured before the perf refactor, so any accidental change to config
  materialisation (field order, defaults, repr of nested values) or a
  spurious ``CACHE_SCHEMA_VERSION`` bump fails here instead of silently
  invalidating every on-disk sweep cache.
"""

from __future__ import annotations

import json

import pytest

from equivalence_points import GOLDEN_DIR, POINTS

from repro.experiments.sweep import CACHE_SCHEMA_VERSION, RunSpec, Scheme
from repro.sim.stats import SimulationResult


@pytest.mark.parametrize("point", sorted(POINTS))
def test_result_dict_roundtrip_is_lossless(point):
    golden = json.loads((GOLDEN_DIR / f"{point}.json").read_text())
    tree = golden["result"]
    rebuilt = SimulationResult.from_dict(tree)
    assert rebuilt.to_dict() == tree
    # A second hop catches asymmetries between the two directions.
    assert SimulationResult.from_dict(rebuilt.to_dict()).to_dict() == tree


#: (RunSpec factory kwargs, sha256 hex) captured at schema version 3
#: (the learned-policy release: ``SystemConfig.learned`` joined the
#: hashed config and the schema was bumped deliberately); see the
#: module docstring before editing.
_PINNED_KEYS = [
    (dict(scheme="berti+clip", mix=("605.mcf_s-1536B",) * 4,
          channels=1, num_cores=4, sim_instructions=8000),
     "da0c152bff53a73a6847339a93ee7cbf1699121f964ae2814f5296b8cc70fc97"),
    (dict(scheme="none", mix=("623.xalancbmk_s-10B", "tc-14"),
          channels=1, num_cores=2, sim_instructions=2500),
     "9590b714061c0782cf9815ef753f0ee2f4cc354a4b06f9eb7f30045dff8bea25"),
    (dict(scheme="spp_ppf+clip+fdp",
          mix=("619.lbm_s-2676B", "605.mcf_s-1536B"),
          channels=2, num_cores=2, sim_instructions=2500),
     "4916a21504a1bbcf831a87f91a0bc0082261ac4c55708ea7ad5147ecb3adadcd"),
    (dict(scheme="bandit", mix=("605.mcf_s-1536B", "619.lbm_s-2676B"),
          channels=1, num_cores=2, sim_instructions=4000),
     "70eeb42d5280f8976fe1cb334e8175ad89405ea1a38a047dec263f8ce4415cf7"),
    (dict(scheme="berti+perceptron",
          mix=("605.mcf_s-1536B", "623.xalancbmk_s-10B"),
          channels=1, num_cores=2, sim_instructions=4000),
     "54345243856a0742bcdfe9971dda72584c3e8cec75f796d41c30ae2157ea47c1"),
]


def test_cache_schema_version_matches_learned_release():
    """Version 3 is the learned-policy release: ``SystemConfig.learned``
    joined the materialised config (so learned and static runs can never
    share a cache entry), and every version-2 entry must be re-simulated
    (stale entries read as misses, never as load errors).  Bump this pin
    only together with a deliberate schema change."""
    assert CACHE_SCHEMA_VERSION == 3


@pytest.mark.parametrize("kwargs,expected",
                         _PINNED_KEYS,
                         ids=[k[0]["scheme"] for k in _PINNED_KEYS])
def test_sweep_cache_keys_unchanged(kwargs, expected):
    spec = RunSpec(scheme=Scheme.parse(kwargs["scheme"]),
                   mix=kwargs["mix"], channels=kwargs["channels"],
                   num_cores=kwargs["num_cores"],
                   sim_instructions=kwargs["sim_instructions"])
    assert spec.cache_key() == expected
