"""Tests for the typed sweep API: Scheme/RunSpec/Sweep, the parallel
executor, the on-disk result store, and result serialisation."""

from __future__ import annotations

import json

import pytest

from repro.experiments import BenchScale, ExperimentRunner
from repro.experiments.sweep import (CACHE_SCHEMA_VERSION, ResultStore,
                                     RunSpec, Scheme, Sweep, execute_spec,
                                     run_sweep)
from repro.sim.stats import SimulationResult
from repro.trace.mixes import homogeneous_mix

MIX = tuple(homogeneous_mix("605.mcf_s-1536B", 2))
TINY = dict(num_cores=2, sim_instructions=1_000)


def tiny_spec(scheme: Scheme, channels: int = 1,
              mix=MIX) -> RunSpec:
    return RunSpec(scheme=scheme, mix=mix, channels=channels, **TINY)


class TestScheme:
    def test_parse_maps_levels(self):
        assert Scheme.parse("berti").l1 == "berti"
        assert Scheme.parse("bingo").l2 == "bingo"
        assert Scheme.parse("spp_ppf+clip") == Scheme(l2="spp_ppf",
                                                      clip=True)
        assert Scheme.parse("none") == Scheme()

    def test_parse_tokens(self):
        scheme = Scheme.parse("berti+clip")
        assert scheme.l1 == "berti" and scheme.clip
        assert Scheme.parse("berti+hermes").hermes
        assert Scheme.parse("berti+fvp").criticality == "fvp"
        assert Scheme.parse("berti+nst").throttle == "nst"

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            Scheme.parse("oracle")
        with pytest.raises(ValueError, match="unknown scheme token"):
            Scheme.parse("berti+warp")

    def test_label_round_trips(self):
        for name in ("none", "berti", "bingo", "berti+clip",
                     "spp_ppf+clip", "berti+hermes", "berti+dspatch",
                     "bandit", "berti+perceptron", "bandit+fdp"):
            assert Scheme.parse(name).label == name

    def test_parse_learned_tokens(self):
        assert Scheme.parse("bandit").learned == "bandit"
        assert Scheme.parse("bandit").l1 == "none"
        perceptron = Scheme.parse("berti+perceptron")
        assert perceptron.l1 == "berti"
        assert perceptron.learned == "perceptron"
        # The learned token canonicalises after clip in the label.
        assert Scheme.parse("berti+perceptron+clip").label \
            == "berti+clip+perceptron"

    def test_learned_config_materialises_and_validates(self):
        config = Scheme.parse("bandit").build_config(
            channels=1, num_cores=1, sim_instructions=500)
        assert config.learned.policy == "bandit"
        config.validate()
        # A bandit scheme owns the L1 slot: a static L1 prefetcher
        # alongside it must be rejected.
        import dataclasses
        config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                                   name="berti")
        with pytest.raises(ValueError, match="bandit"):
            config.validate()

    def test_clip_overrides_canonical_order(self):
        a = Scheme(l1="berti", clip_overrides={"b": 1, "a": 2})
        b = Scheme(l1="berti", clip_overrides={"a": 2, "b": 1})
        assert a == b and hash(a) == hash(b)

    def test_baseline_keeps_structural_knobs_only(self):
        scheme = Scheme(l1="berti", clip=True, criticality="fvp",
                        llc_kib=64, num_cores=4, sim_instructions=500)
        base = scheme.baseline()
        assert base == Scheme(llc_kib=64, num_cores=4,
                              sim_instructions=500)

    def test_build_config_structural_precedence(self):
        scheme = Scheme(l1="berti", num_cores=4, llc_kib=64)
        config = scheme.build_config(channels=1, num_cores=2,
                                     sim_instructions=1_000)
        assert config.num_cores == 4
        assert config.llc_slice.size_kib == 64
        assert config.l1_prefetcher.name == "berti"


class TestRunSpec:
    def test_mix_length_validated(self):
        with pytest.raises(ValueError, match="mix length"):
            RunSpec(scheme=Scheme(), mix=("a",), channels=1, **TINY)

    def test_cache_key_ignores_override_order(self):
        # Regression: the legacy runner keyed on repr(overrides), so two
        # dicts with different insertion order missed the cache.
        a = tiny_spec(Scheme(l1="berti",
                             clip_overrides={"use_accuracy_filter": False,
                                             "dynamic": True}))
        b = tiny_spec(Scheme(l1="berti",
                             clip_overrides={"dynamic": True,
                                             "use_accuracy_filter": False}))
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_configs(self):
        berti = tiny_spec(Scheme(l1="berti"))
        assert berti.cache_key() != tiny_spec(Scheme()).cache_key()
        assert (berti.cache_key()
                != tiny_spec(Scheme(l1="berti"), channels=2).cache_key())

    def test_cache_key_embeds_schema_version(self, monkeypatch):
        spec = tiny_spec(Scheme())
        before = spec.cache_key()
        monkeypatch.setattr("repro.experiments.sweep.CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert spec.cache_key() != before


class TestSweep:
    def test_product_and_dedup(self):
        schemes = [Scheme(), Scheme(l1="berti")]
        sweep = Sweep.product(schemes, [MIX], [1, 2], **TINY)
        assert len(sweep) == 4
        assert len(sweep + sweep) == 4  # de-duplicated

    def test_zip_requires_aligned_lengths(self):
        with pytest.raises(ValueError, match="zip lengths"):
            Sweep.zip([Scheme()], [MIX, MIX], [1, 2], **TINY)

    def test_with_baselines_adds_reference_points(self):
        sweep = Sweep.product([Scheme(l1="berti")], [MIX], [1], **TINY)
        expanded = sweep.with_baselines()
        assert len(expanded) == 2
        assert any(spec.scheme == Scheme() for spec in expanded)


class TestSerialisation:
    def test_round_trip_through_json(self):
        result = SimulationResult.from_dict(
            execute_spec(tiny_spec(Scheme(l1="berti"))))
        data = json.loads(json.dumps(result.to_dict()))
        rebuilt = SimulationResult.from_dict(data)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.ipc_per_core == result.ipc_per_core
        assert rebuilt.levels["L1D"].demand_accesses == \
            result.levels["L1D"].demand_accesses


class TestExecutor:
    SPECS = [tiny_spec(Scheme()), tiny_spec(Scheme(l1="berti")),
             tiny_spec(Scheme(l1="berti", clip=True)),
             tiny_spec(Scheme(), channels=2)]

    def test_parallel_matches_serial(self):
        serial = run_sweep(self.SPECS, jobs=1)
        parallel = run_sweep(self.SPECS, jobs=4)
        assert serial.simulated == parallel.simulated == len(self.SPECS)
        assert ({s: r.to_dict() for s, r in serial.results.items()}
                == {s: r.to_dict() for s, r in parallel.results.items()})

    def test_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_sweep(self.SPECS[:2], jobs=1, store=store)
        assert cold.simulated == 2 and cold.cache_hits == 0
        warm = run_sweep(self.SPECS[:2], jobs=1, store=store)
        assert warm.simulated == 0 and warm.cache_hits == 2
        assert ({s: r.to_dict() for s, r in cold.results.items()}
                == {s: r.to_dict() for s, r in warm.results.items()})

    def test_store_rejects_other_schema_version(self, tmp_path,
                                                monkeypatch):
        store = ResultStore(tmp_path)
        spec = self.SPECS[0]
        run_sweep([spec], store=store)
        key = spec.cache_key()
        assert store.load(key) is not None
        payload = json.loads(store.path_for(key).read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        store.path_for(key).write_text(json.dumps(payload))
        assert store.load(key) is None

    def test_stale_schema_entry_is_a_miss_not_an_error(self, tmp_path):
        """A cache written before the schema bump (version 1, results
        without the counter/energy fields) must read as a miss and be
        re-simulated -- never raise out of ``load`` or ``run_sweep``."""
        store = ResultStore(tmp_path)
        spec = self.SPECS[0]
        key = spec.cache_key()
        fresh = run_sweep([spec], store=store)
        payload = json.loads(store.path_for(key).read_text())
        # Rewind the entry to the previous release: old version number
        # and a result lacking every field the counter layer added.
        payload["schema"] = CACHE_SCHEMA_VERSION - 1
        for gone in ("counters", "energy_mj", "edp_mj_s",
                     "energy_breakdown_mj"):
            payload["result"].pop(gone)
        store.path_for(key).write_text(json.dumps(payload))
        assert store.load(key) is None
        outcome = run_sweep([spec], store=store)
        assert outcome.simulated == 1 and outcome.cache_hits == 0
        # The re-run repopulated the entry at the current schema.
        assert store.load(key) is not None
        assert (outcome.results[spec].to_dict()
                == fresh.results[spec].to_dict())

    def test_store_ignores_corrupt_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.SPECS[0]
        key = spec.cache_key()
        store.path_for(key).parent.mkdir(parents=True)
        store.path_for(key).write_text("{not json")
        assert store.load(key) is None
        outcome = run_sweep([spec], store=store)
        assert outcome.simulated == 1

    def test_concurrent_writers_never_corrupt_an_entry(self, tmp_path):
        """Regression: ``save`` used to write through one fixed temp
        path per key, so two concurrent writers (distributed-sweep
        workers landing the same point, threads sharing a pid) could
        interleave truncate/rename and leave a torn entry.  With
        unique temp files + atomic rename, every read during the storm
        sees a complete, loadable entry."""
        import threading

        store = ResultStore(tmp_path)
        spec = self.SPECS[0]
        key = spec.cache_key()
        outcome = run_sweep([spec], store=store)
        expected = outcome.results[spec].to_dict()
        failures = []

        def writer():
            try:
                for _ in range(40):
                    store.save(key, spec, outcome.results[spec])
            except BaseException as exc:
                failures.append(exc)

        def reader():
            try:
                for _ in range(200):
                    loaded = store.load(key)
                    assert loaded is not None, "torn cache entry"
                    assert loaded.to_dict() == expected
            except BaseException as exc:
                failures.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(6)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures, failures
        # The storm leaves exactly the entry, no stray temp files.
        assert store.load(key).to_dict() == expected
        leftovers = [p for p in store.path_for(key).parent.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []


class TestRunnerIntegration:
    SCALE = BenchScale(num_cores=2, sim_instructions=1_000,
                       channel_sweep=(1, 2), constrained_channels=1,
                       homogeneous_sample=2, heterogeneous_mixes=1)

    def test_warm_rerun_skips_simulation(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = Sweep.product([Scheme(), Scheme(l1="berti")], [MIX],
                              [1, 2], **TINY)
        cold = ExperimentRunner(self.SCALE, store=store)
        cold.run_sweep(sweep)
        assert cold.runs == len(sweep)
        warm = ExperimentRunner(self.SCALE, store=store)
        results = warm.run_sweep(sweep)
        assert warm.runs == 0
        assert set(results) == set(sweep)

    def test_parallel_runner_matches_serial(self, tmp_path):
        sweep = Sweep.product([Scheme(), Scheme(l1="ipcp")], [MIX], [1],
                              **TINY)
        serial = ExperimentRunner(self.SCALE).run_sweep(sweep)
        parallel = ExperimentRunner(self.SCALE, jobs=2).run_sweep(sweep)
        assert ({s: r.to_dict() for s, r in serial.items()}
                == {s: r.to_dict() for s, r in parallel.items()})

    def test_memo_prevents_duplicate_disk_reads(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(self.SCALE, store=store)
        spec = tiny_spec(Scheme(l1="berti"))
        first = runner.run(spec)
        assert runner.run(spec) is first  # memo, not a fresh from_dict
